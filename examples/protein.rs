//! Protein-database scenario: deep, structurally complex documents.
//!
//! SWISS-PROT is the paper's "far more complex structure" data set:
//! taxonomy chains nest five levels deep and reference blocks repeat with
//! internal author lists. This example shows that the same summary
//! machinery handles deep twigs, wildcard queries (the paper's
//! future-work extension) and ordered matching.
//!
//! ```text
//! cargo run --release --example protein
//! ```

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_sprot, SprotConfig};
use twig_exact::{count_occurrence, count_occurrence_ordered, count_presence};
use twig_tree::{DataTree, Twig};

fn main() {
    let xml = generate_sprot(&SprotConfig { target_bytes: 1 << 20, seed: 424242 });
    let tree = DataTree::from_xml(&xml).expect("generated XML is well-formed");
    let mut max_depth = 0;
    tree.for_each_root_to_leaf_path(|path| max_depth = max_depth.max(path.len()));
    println!(
        "protein corpus: {:.1} MB, {} elements, {} distinct labels, max depth {}",
        xml.len() as f64 / 1048576.0,
        tree.element_count(),
        tree.interner().len(),
        max_depth
    );

    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.10), ..CstConfig::default() },
    )
    .expect("CST config is valid");
    println!(
        "summary: {} nodes at {:.2}% of the data size\n",
        cst.node_count(),
        cst.space_fraction() * 100.0
    );

    // Deep structural twigs over the taxonomy and reference blocks.
    let queries = [
        r#"entry(organism(species("Homo")),keyword("Kinase"))"#,
        r#"reference(authors(person("S")),citation(journal("TODS")))"#,
        r#"entry(organism(lineage(taxon(name("Eukaryota")))),feature(type("DOMAIN")))"#,
        r#"feature(type("TRANSMEM"),from("1"))"#,
    ];
    println!("{:<70} {:>9} {:>8}", "query", "estimate", "exact");
    for text in queries {
        let query = Twig::parse(text).expect("valid query");
        let estimate = cst.estimate(&query, Algorithm::Msh, CountKind::Occurrence);
        let exact = count_occurrence(&tree, &query);
        println!("{text:<70} {estimate:>9.1} {exact:>8}");
    }

    // Wildcard extension: `*` matches an arbitrary downward element chain,
    // so this finds Eukaryota taxa at any lineage depth.
    let wildcard = Twig::parse(r#"entry(*(name("Eukaryota")))"#).expect("valid query");
    println!(
        "\nwildcard {wildcard}: exact presence {}, occurrence {}",
        count_presence(&tree, &wildcard),
        count_occurrence(&tree, &wildcard)
    );
    println!(
        "  summary estimate (parsing around '*'): {:.1}",
        cst.estimate(&wildcard, Algorithm::Msh, CountKind::Occurrence)
    );

    // Ordered matching extension: references list authors in document
    // order, so ordered counts can be strictly smaller.
    let pair = Twig::parse(r#"authors(person("S"),person("J"))"#).expect("valid query");
    println!(
        "\nordered extension {pair}: unordered {} vs ordered {}",
        count_occurrence(&tree, &pair),
        count_occurrence_ordered(&tree, &pair)
    );
}
