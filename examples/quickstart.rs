//! Quickstart: build a summary over an XML document and estimate twig
//! query selectivities.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_exact::count_occurrence;
use twig_tree::{DataTree, Twig};

fn main() {
    // 1. A small bibliography document (Figure 1 of the paper).
    let xml = r#"<dblp>
        <book><author>Abiteboul</author><title>Foundations of Databases</title>
              <publisher>Addison-Wesley</publisher><year>1995</year></book>
        <book><author>Suciu</author><author>Abiteboul</author><author>Buneman</author>
              <title>Data on the Web</title>
              <publisher>Morgan Kaufmann</publisher><year>1999</year></book>
        <book><author>Garcia-Molina</author><author>Ullman</author><author>Widom</author>
              <title>Database System Implementation</title>
              <publisher>Prentice Hall</publisher><year>1999</year></book>
        <article><author>Suciu</author><title>Semistructured Data</title>
              <journal>SIGMOD Record</journal><year>1998</year></article>
    </dblp>"#;

    // 2. Parse it into a node-labeled data tree.
    let tree = DataTree::from_xml(xml).expect("well-formed XML");
    println!("data tree: {} nodes ({} elements)", tree.node_count(), tree.element_count());

    // 3. Build the correlated subpath tree (CST) summary. Space budgets
    //    are normally a small fraction of the data size; for a toy
    //    document keep everything.
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid");
    println!("CST: {} subpath nodes, {} accounted bytes", cst.node_count(), cst.size_bytes());

    // 4. Write a twig query: books by Suciu published in 1999.
    //    Identifiers are element labels, quoted strings are value-prefix
    //    predicates, parentheses enclose children.
    let query = Twig::parse(r#"book(author("Suciu"),year("1999"))"#).expect("valid query");
    println!("\nquery: {query}");

    // 5. Estimate with each algorithm and compare against the exact count.
    let truth = count_occurrence(&tree, &query);
    println!("exact occurrence count: {truth}");
    for (algo, estimate) in cst.estimate_all(&query, CountKind::Occurrence) {
        println!("  {:<7} estimate: {estimate:.2}", algo.name());
    }

    // 6. Multiset semantics: presence counts distinct rooting books,
    //    occurrence counts all 1-1 mappings (QUERY 2 discussion, Sec. 2).
    let multi = Twig::parse("book(author,author)").expect("valid query");
    println!("\nquery: {multi}");
    println!(
        "  exact presence {} (books with >=2 authors), occurrence {} (ordered author pairs)",
        twig_exact::count_presence(&tree, &multi),
        count_occurrence(&tree, &multi),
    );
    println!(
        "  MOSH presence estimate {:.2}, occurrence estimate {:.2}",
        cst.estimate(&multi, Algorithm::Mosh, CountKind::Presence),
        cst.estimate(&multi, Algorithm::Mosh, CountKind::Occurrence),
    );
}
