//! Cost-based optimization scenario: picking a query plan by estimated
//! selectivity.
//!
//! The paper's second motivation: "knowing selectivities of various
//! subqueries can help in identifying cheap query evaluation plans". A
//! twig query can be evaluated by scanning the instances of any one of
//! its legs and verifying the rest of the pattern per instance; the best
//! starting leg is the most selective one. This example enumerates the
//! single-leg plans of a twig, prices them with summary estimates, and
//! compares the chosen plan against the true cheapest.
//!
//! ```text
//! cargo run --release --example optimizer
//! ```

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, DblpConfig};
use twig_exact::count_occurrence;
use twig_tree::{DataTree, Twig, TwigLabel};

/// The single-path sub-twigs of `query`: one per root-to-leaf path.
fn leg_plans(query: &Twig) -> Vec<Twig> {
    query
        .root_to_leaf_paths()
        .into_iter()
        .map(|path| {
            let mut labels: Vec<&str> = Vec::new();
            let mut value: Option<&str> = None;
            for node in path {
                match query.label(node) {
                    TwigLabel::Element(name) => labels.push(name),
                    TwigLabel::Value(v) => value = Some(v),
                    TwigLabel::Star => {}
                }
            }
            Twig::path(&labels, value)
        })
        .collect()
}

fn main() {
    let xml =
        generate_dblp(&DblpConfig { target_bytes: 2 << 20, seed: 77, ..DblpConfig::default() });
    let tree = DataTree::from_xml(&xml).expect("generated XML is well-formed");
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.05), ..CstConfig::default() },
    )
    .expect("CST config is valid");
    println!(
        "corpus {:.1} MB, summary {:.1} KB\n",
        xml.len() as f64 / 1048576.0,
        cst.size_bytes() as f64 / 1024.0
    );

    let queries = [
        r#"article(author("S"),journal("TODS"),year("199"))"#,
        r#"book(publisher("Springer"),author("G"),year("1990"))"#,
        r#"inproceedings(booktitle("VLDB"),title("q"))"#,
    ];

    let mut agree = 0;
    for text in queries {
        let query = Twig::parse(text).expect("valid query");
        println!("query: {query}");
        let legs = leg_plans(&query);
        let mut best_estimated: Option<(usize, f64)> = None;
        let mut best_true: Option<(usize, u64)> = None;
        for (i, leg) in legs.iter().enumerate() {
            let estimate = cst.estimate(leg, Algorithm::Msh, CountKind::Occurrence);
            let truth = count_occurrence(&tree, leg);
            println!("  scan leg {i}: {leg:<45} est {estimate:>9.1}  true {truth:>7}");
            if best_estimated.is_none_or(|(_, e)| estimate < e) {
                best_estimated = Some((i, estimate));
            }
            if best_true.is_none_or(|(_, t)| truth < t) {
                best_true = Some((i, truth));
            }
        }
        let (chosen, _) = best_estimated.expect("twig has legs");
        let (actual, _) = best_true.expect("twig has legs");
        println!(
            "  optimizer picks leg {chosen}; true cheapest is leg {actual} {}\n",
            if chosen == actual { "✓" } else { "(mismatch)" }
        );
        if chosen == actual {
            agree += 1;
        }
    }
    println!("plan choice agreed with ground truth on {agree}/{} queries", queries.len());
}
