//! Bibliography scenario: query feedback over a DBLP-like corpus.
//!
//! The paper motivates twig selectivity estimation with "quick feedback
//! about their query, either before or along with returning query
//! answers". This example generates a realistic bibliography, builds a 1%
//! summary, and plays the role of a query UI that shows an estimated hit
//! count (from the summary, microseconds) next to the real count (from
//! the data, much slower) for a batch of user queries.
//!
//! ```text
//! cargo run --release --example bibliography
//! ```

use std::time::Instant;

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, DblpConfig};
use twig_exact::count_occurrence;
use twig_tree::{DataTree, Twig};

fn main() {
    let xml =
        generate_dblp(&DblpConfig { target_bytes: 2 << 20, seed: 2001, ..DblpConfig::default() });
    let tree = DataTree::from_xml(&xml).expect("generated XML is well-formed");
    println!(
        "bibliography: {:.1} MB, {} elements",
        xml.len() as f64 / 1048576.0,
        tree.element_count()
    );

    let build_start = Instant::now();
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.05), ..CstConfig::default() },
    )
    .expect("CST config is valid");
    println!(
        "summary: {} nodes, {:.1} KB ({:.2}% of data), built in {:.2?}\n",
        cst.node_count(),
        cst.size_bytes() as f64 / 1024.0,
        cst.space_fraction() * 100.0,
        build_start.elapsed()
    );

    // The kinds of queries a bibliography UI issues.
    let queries = [
        r#"article(author("S"),journal("TODS"))"#,
        r#"article(author("Suciu"),year("199"))"#,
        r#"book(publisher("Morgan"),year("19"))"#,
        r#"inproceedings(booktitle("SIGMOD"),year("1995"))"#,
        r#"article(title("selectivity"),journal("V"))"#,
        r#"book(author("U"),author("W"))"#,
        r#"article(author("Nonexistent"),year("1999"))"#,
    ];

    println!("{:<55} {:>10} {:>10} {:>12}", "query", "estimate", "exact", "est. time");
    for text in queries {
        let query = Twig::parse(text).expect("valid query");
        let estimate_start = Instant::now();
        let estimate = cst.estimate(&query, Algorithm::Msh, CountKind::Occurrence);
        let estimate_time = estimate_start.elapsed();
        let exact = count_occurrence(&tree, &query);
        println!("{text:<55} {estimate:>10.1} {exact:>10} {estimate_time:>12.2?}");
    }

    println!(
        "\nThe estimate column is computed from the {:.0} KB summary alone — the\n\
         original {:.1} MB document is only consulted for the exact column.\n\
         An estimate of 0.0 means some query subpath fell below the summary's\n\
         prune threshold: the summary cannot distinguish rare from absent.",
        cst.size_bytes() as f64 / 1024.0,
        xml.len() as f64 / 1048576.0
    );
}
