//! The summary lifecycle: build once, persist, load elsewhere, estimate
//! with XPath queries, and EXPLAIN an estimate.
//!
//! ```text
//! cargo run --release --example summary_workflow
//! ```

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, DblpConfig};
use twig_tree::{parse_xpath, DataTree};

fn main() {
    // An "offline statistics job" builds the summary from the corpus…
    let xml =
        generate_dblp(&DblpConfig { target_bytes: 1 << 20, seed: 1234, ..DblpConfig::default() });
    let tree = DataTree::from_xml(&xml).expect("well-formed");
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.08), ..CstConfig::default() },
    )
    .expect("CST config is valid");
    let mut stored = Vec::new();
    cst.write_to(&mut stored).expect("serialize");
    println!(
        "summary built: {} nodes, {} bytes on disk (corpus was {} bytes)",
        cst.node_count(),
        stored.len(),
        xml.len()
    );

    // …and the optimizer process loads it later, without the corpus.
    drop(cst);
    drop(tree);
    let cst = Cst::read_from(&mut stored.as_slice()).expect("deserialize");

    // Queries arrive as XPath.
    for xpath in [
        r#"/dblp/article[author="S"]"#,
        r#"//article[journal="TODS"][year="199"]"#,
        r#"/dblp/book[publisher="Morgan"]/author"#,
    ] {
        let query = parse_xpath(xpath).expect("valid XPath subset");
        let estimate = cst.estimate(&query, Algorithm::Msh, CountKind::Occurrence);
        println!("\n{xpath}\n  as twig: {query}\n  estimate: {estimate:.1}");
    }

    // EXPLAIN one of them: which subpaths parsed, which twiglets formed,
    // and every conditioning factor.
    let query = parse_xpath(r#"/dblp/article[author="S"][journal="TODS"]"#).unwrap();
    println!("\n{}", cst.explain(&query, Algorithm::Msh, CountKind::Occurrence));
}
