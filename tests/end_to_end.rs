//! Cross-crate integration tests: generate → parse → summarize →
//! estimate, checked against exact counting.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{
    generate_dblp, generate_sprot, positive_queries, trivial_queries, DblpConfig, SprotConfig,
    WorkloadConfig,
};
use twig_exact::{count_occurrence, count_presence};
use twig_tree::{DataTree, Twig};

fn dblp_tree(bytes: usize, seed: u64) -> DataTree {
    let xml = generate_dblp(&DblpConfig { target_bytes: bytes, seed, ..DblpConfig::default() });
    DataTree::from_xml(&xml).expect("generated XML is well-formed")
}

fn unpruned(tree: &DataTree) -> Cst {
    Cst::build(tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
        .expect("CST config is valid")
}

#[test]
fn full_pipeline_runs_on_both_corpora() {
    let dblp = dblp_tree(100 << 10, 5);
    let sprot_xml = generate_sprot(&SprotConfig { target_bytes: 100 << 10, seed: 5 });
    let sprot = DataTree::from_xml(&sprot_xml).expect("well-formed");
    for tree in [&dblp, &sprot] {
        let cst = Cst::build(
            tree,
            &CstConfig { budget: SpaceBudget::Fraction(0.10), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        assert!(cst.node_count() > 1);
        let queries = positive_queries(
            tree,
            &WorkloadConfig { count: 10, seed: 9, ..WorkloadConfig::default() },
        );
        for query in &queries {
            for algo in Algorithm::ALL {
                let est = cst.estimate(query, algo, CountKind::Occurrence);
                assert!(est.is_finite() && est >= 0.0, "{algo} {query}: {est}");
            }
        }
    }
}

#[test]
fn unpruned_cst_is_exact_on_trivial_queries() {
    // With threshold 1 (nothing pruned) a single-path query's count is
    // read directly from the CST: every MO-family estimator must return
    // the exact occurrence count.
    let tree = dblp_tree(60 << 10, 11);
    let cst = unpruned(&tree);
    let queries = trivial_queries(
        &tree,
        &WorkloadConfig { count: 25, seed: 13, ..WorkloadConfig::default() },
    );
    for query in &queries {
        let truth = count_occurrence(&tree, query) as f64;
        for algo in [Algorithm::Greedy, Algorithm::PureMo, Algorithm::Mosh, Algorithm::Msh] {
            let est = cst.estimate(query, algo, CountKind::Occurrence);
            assert!(
                (est - truth).abs() < 1e-6 * truth.max(1.0),
                "{algo} on {query}: est {est} truth {truth}"
            );
        }
    }
}

#[test]
fn unpruned_cst_presence_exact_on_trivial_queries() {
    let tree = dblp_tree(60 << 10, 17);
    let cst = unpruned(&tree);
    let queries = trivial_queries(
        &tree,
        &WorkloadConfig { count: 20, seed: 19, ..WorkloadConfig::default() },
    );
    for query in &queries {
        let truth = count_presence(&tree, query) as f64;
        let est = cst.estimate(query, Algorithm::Mosh, CountKind::Presence);
        assert!((est - truth).abs() < 1e-6 * truth.max(1.0), "{query}: est {est} truth {truth}");
    }
}

#[test]
fn estimates_shrink_with_budget_but_never_break() {
    let tree = dblp_tree(120 << 10, 23);
    let queries = positive_queries(
        &tree,
        &WorkloadConfig { count: 15, seed: 29, ..WorkloadConfig::default() },
    );
    for fraction in [0.01, 0.05, 0.2] {
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Fraction(fraction), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        assert!(
            cst.size_bytes() as f64 <= tree.source_bytes() as f64 * fraction + 1.0,
            "budget overrun at {fraction}"
        );
        for query in &queries {
            for algo in Algorithm::ALL {
                let est = cst.estimate(query, algo, CountKind::Occurrence);
                assert!(est.is_finite() && est >= 0.0);
            }
        }
    }
}

#[test]
fn estimators_agree_with_exact_on_figure1() {
    // The paper's running example, end to end, unpruned.
    let xml = concat!(
        "<dblp>",
        "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
        "<book><author>A1</author><author>A2</author><title>T2</title><year>Y1</year></book>",
        "<book><author>A1</author><author>A2</author><author>A3</author><title>T3</title><year>Y1</year></book>",
        "</dblp>"
    );
    let tree = DataTree::from_xml(xml).unwrap();
    let cst = unpruned(&tree);
    let query1 = Twig::parse(r#"book(author("A1"),year("Y1"))"#).unwrap();
    assert_eq!(count_presence(&tree, &query1), 3);
    let est = cst.estimate(&query1, Algorithm::Mosh, CountKind::Presence);
    assert!((est - 3.0).abs() < 0.6, "est {est}");

    // Section 5's occurrence arithmetic: ≈ presence × (6/3) × (3/3).
    let query2 = Twig::parse(r#"book(author,year("Y1"))"#).unwrap();
    assert_eq!(count_occurrence(&tree, &query2), 6);
    let est_occ = cst.estimate(&query2, Algorithm::Mosh, CountKind::Occurrence);
    assert!((est_occ - 6.0).abs() < 1.2, "est {est_occ}");
}

#[test]
fn negative_queries_estimate_small() {
    let tree = dblp_tree(120 << 10, 31);
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.10), ..CstConfig::default() },
    )
    .expect("CST config is valid");
    let candidates = twig_datagen::negative_query_candidates(
        &tree,
        &WorkloadConfig { count: 30, seed: 37, ..WorkloadConfig::default() },
    );
    let negatives: Vec<Twig> =
        candidates.into_iter().filter(|q| count_presence(&tree, q) == 0).take(10).collect();
    assert!(!negatives.is_empty());
    for query in &negatives {
        // Greedy multiplies small probabilities: near-zero on negatives.
        let greedy = cst.estimate(query, Algorithm::Greedy, CountKind::Occurrence);
        assert!(greedy < 50.0, "greedy on negative {query}: {greedy}");
    }
}

#[test]
fn occurrence_at_least_presence_for_estimates_and_truth() {
    let tree = dblp_tree(100 << 10, 41);
    let cst = unpruned(&tree);
    let queries = positive_queries(
        &tree,
        &WorkloadConfig { count: 15, seed: 43, ..WorkloadConfig::default() },
    );
    for query in &queries {
        assert!(count_occurrence(&tree, query) >= count_presence(&tree, query), "{query}");
        let p = cst.estimate(query, Algorithm::Mosh, CountKind::Presence);
        let o = cst.estimate(query, Algorithm::Mosh, CountKind::Occurrence);
        // The uniformity scaling multiplies by Co/Cp ≥ 1 per chain.
        assert!(o >= p * 0.999, "{query}: presence {p} occurrence {o}");
    }
}

#[test]
fn summary_is_self_contained() {
    // Estimation must not need the data tree: drop it and keep estimating.
    let cst = {
        let tree = dblp_tree(60 << 10, 47);
        unpruned(&tree)
    };
    let query = Twig::parse(r#"article(author("S"),year("19"))"#).unwrap();
    let est = cst.estimate(&query, Algorithm::Msh, CountKind::Occurrence);
    assert!(est.is_finite() && est >= 0.0);
}
