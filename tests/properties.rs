//! Property-based tests over randomly generated trees and queries.
//!
//! The key cross-check: the suffix trie's three counts (`pc`, `Cp`, `Co`)
//! are validated against *independent* implementations — `twig-exact`'s
//! match counters for label-rooted subpaths and a direct substring scan
//! for string fragments.
//!
//! Each property sweeps a deterministic seed set (no external property
//! testing framework — the container builds offline). A failing seed
//! prints in the assertion message and reproduces exactly.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_exact::{count_occurrence, count_occurrence_ordered, count_presence};
use twig_pst::{build_suffix_trie, PathToken, TrieConfig, TrieNodeId};
use twig_tree::{DataTree, TreeBuilder, Twig};
use twig_util::SplitMix64;

const CASES: u64 = 48;

/// The seeds each property sweeps (spread over the old `0..5_000` domain).
fn seeds() -> impl Iterator<Item = u64> {
    (0..CASES).map(|case| case * 104 + 7)
}

/// Builds a random tree from a seed. Labels encode their depth
/// (`l<depth>_<k>`) so no label ever repeats along a vertical chain —
/// the precondition under which the trie counts are exact.
fn random_tree(seed: u64, max_children: u64, depth: usize) -> DataTree {
    let mut rng = SplitMix64::new(seed);
    let mut builder = TreeBuilder::new();
    fn grow(
        builder: &mut TreeBuilder,
        rng: &mut SplitMix64,
        depth: usize,
        max_depth: usize,
        max_children: u64,
    ) {
        if depth == max_depth {
            // Leaf value: short string over a tiny alphabet so fragments
            // repeat across leaves.
            let len = 1 + rng.next_below(4) as usize;
            let mut value = String::new();
            for _ in 0..len {
                value.push((b'a' + rng.next_below(3) as u8) as char);
            }
            builder.text(&value);
            return;
        }
        let children = 1 + rng.next_below(max_children);
        for _ in 0..children {
            let label = format!("l{}_{}", depth, rng.next_below(3));
            builder.open_element(&label);
            if rng.next_below(5) > 0 {
                grow(builder, rng, depth + 1, max_depth, max_children);
            }
            builder.close_element();
        }
    }
    builder.open_element("root");
    grow(&mut builder, &mut rng, 1, depth, max_children);
    builder.close_element();
    let mut tree = builder.finish();
    tree.set_source_bytes(tree.node_count() * 24);
    tree
}

/// True when the workload sampler can operate on `tree` (some non-root
/// element has an element child). Degenerate random trees are skipped.
fn sampleable(tree: &DataTree) -> bool {
    tree.dfs().any(|n| {
        n != tree.root()
            && tree.element_symbol(n).is_some()
            && tree.children(n).any(|c| tree.element_symbol(c).is_some())
    })
}

/// Reconstructs the `(labels, value-prefix)` form of a label-rooted trie
/// node's token sequence.
fn tokens_to_twig(tree: &DataTree, tokens: &[PathToken]) -> Option<Twig> {
    let mut labels: Vec<&str> = Vec::new();
    let mut value = String::new();
    for token in tokens {
        match token {
            PathToken::Element(sym) => {
                if !value.is_empty() {
                    return None; // labels after value chars: not a path twig
                }
                labels.push(tree.label_str(*sym));
            }
            PathToken::Char(byte) => value.push(*byte as char),
        }
    }
    if labels.is_empty() {
        return None;
    }
    Some(Twig::path(&labels, (!value.is_empty()).then_some(value.as_str())))
}

/// Counts occurrences of `fragment` across all `(leaf, offset)` positions.
fn substring_positions(tree: &DataTree, fragment: &[u8]) -> u64 {
    let mut total = 0u64;
    for node in tree.dfs() {
        if let Some(text) = tree.text(node) {
            let bytes = text.as_bytes();
            if fragment.len() <= bytes.len() {
                for offset in 0..=(bytes.len() - fragment.len()) {
                    if &bytes[offset..offset + fragment.len()] == fragment {
                        total += 1;
                    }
                }
            }
        }
    }
    total
}

/// Every label-rooted trie count equals what the exact twig counter
/// computes for the corresponding single-path query.
#[test]
fn trie_counts_match_exact_counter() {
    for seed in seeds() {
        let tree = random_tree(seed, 3, 4);
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(1);
        for node in pruned.node_ids().skip(1) {
            if !pruned.label_rooted(node) {
                continue;
            }
            let tokens = pruned.tokens_of(node);
            let Some(twig) = tokens_to_twig(&tree, &tokens) else {
                continue;
            };
            let presence = count_presence(&tree, &twig);
            let occurrence = count_occurrence(&tree, &twig);
            assert_eq!(
                u64::from(pruned.presence(node)),
                presence,
                "seed {seed}: presence mismatch for {twig}"
            );
            assert_eq!(
                u64::from(pruned.occurrence(node)),
                occurrence,
                "seed {seed}: occurrence mismatch for {twig}"
            );
        }
    }
}

/// String-fragment presence counts equal a direct substring scan.
#[test]
fn trie_string_counts_match_scan() {
    for seed in seeds() {
        let tree = random_tree(seed, 3, 3);
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(1);
        for node in pruned.node_ids().skip(1) {
            if pruned.label_rooted(node) {
                continue;
            }
            let tokens = pruned.tokens_of(node);
            let fragment: Vec<u8> = tokens
                .iter()
                .map(|t| match t {
                    PathToken::Char(byte) => *byte,
                    PathToken::Element(_) => unreachable!("string node"),
                })
                .collect();
            assert_eq!(
                u64::from(pruned.presence(node)),
                substring_positions(&tree, &fragment),
                "seed {seed}: fragment {:?}",
                String::from_utf8_lossy(&fragment)
            );
        }
    }
}

/// pc is monotone: child counts never exceed parents'.
#[test]
fn trie_path_counts_monotone() {
    for seed in seeds() {
        let tree = random_tree(seed, 3, 4);
        let pruned = build_suffix_trie(&tree, &TrieConfig::default()).prune(1);
        for node in pruned.node_ids().skip(1) {
            let parent = pruned.parent(node).expect("non-root");
            if parent != TrieNodeId::ROOT {
                assert!(pruned.path_count(node) <= pruned.path_count(parent), "seed {seed}");
            }
            assert!(pruned.presence(node) <= pruned.occurrence(node), "seed {seed}");
            assert!(pruned.occurrence(node) >= 1, "seed {seed}");
        }
    }
}

/// Exact-counting invariants on random twigs sampled from the tree.
#[test]
fn exact_counting_invariants() {
    for seed in seeds() {
        let tree = random_tree(seed, 4, 4);
        if !sampleable(&tree) {
            continue;
        }
        let queries = twig_datagen::positive_queries(
            &tree,
            &twig_datagen::WorkloadConfig {
                count: 4,
                seed,
                paths: (2, 3),
                internal: (2, 3),
                leaf_chars: (1, 2),
            },
        );
        for query in &queries {
            let presence = count_presence(&tree, query);
            let occurrence = count_occurrence(&tree, query);
            let ordered_presence = twig_exact::count_presence_ordered(&tree, query);
            let ordered_occurrence = count_occurrence_ordered(&tree, query);
            assert!(presence >= 1, "seed {seed}: positive query must match: {query}");
            assert!(occurrence >= presence, "seed {seed}: {query}");
            assert!(ordered_occurrence <= occurrence, "seed {seed}: {query}");
            assert!(ordered_presence <= presence, "seed {seed}: {query}");
        }
    }
}

/// Estimates are finite and non-negative for every algorithm, count kind
/// and budget, on arbitrary queries (matching or not).
#[test]
fn estimates_always_sane() {
    for (case, seed) in seeds().enumerate() {
        let tree = random_tree(seed, 3, 4);
        if !sampleable(&tree) {
            continue;
        }
        // Sweep the budget fraction across the old 0.02..0.9 domain.
        let fraction = 0.02 + (case as f64 / (CASES - 1) as f64) * 0.88;
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Fraction(fraction), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let queries = twig_datagen::positive_queries(
            &tree,
            &twig_datagen::WorkloadConfig {
                count: 3,
                seed: seed ^ 0xF00D,
                paths: (2, 3),
                internal: (2, 3),
                leaf_chars: (1, 2),
            },
        );
        // Plus a certainly-absent query.
        let mut all = queries;
        all.push(Twig::parse(r#"zz_no_such(l9_9("q"))"#).expect("valid"));
        for query in &all {
            for algo in Algorithm::ALL {
                for kind in [CountKind::Presence, CountKind::Occurrence] {
                    let est = cst.estimate(query, algo, kind);
                    assert!(est.is_finite() && est >= 0.0, "seed {seed}: {algo} {kind:?} {query}");
                }
            }
        }
    }
}

/// An unpruned summary answers trivial queries exactly (all MO-family
/// algorithms).
#[test]
fn unpruned_trivial_exactness() {
    for seed in seeds() {
        let tree = random_tree(seed, 3, 4);
        if !sampleable(&tree) {
            continue;
        }
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let queries = twig_datagen::trivial_queries(
            &tree,
            &twig_datagen::WorkloadConfig {
                count: 4,
                seed: seed ^ 0xBEEF,
                internal: (2, 3),
                leaf_chars: (1, 2),
                ..twig_datagen::WorkloadConfig::default()
            },
        );
        for query in &queries {
            let truth = count_occurrence(&tree, query) as f64;
            for algo in [Algorithm::PureMo, Algorithm::Mosh, Algorithm::Msh] {
                let est = cst.estimate(query, algo, CountKind::Occurrence);
                assert!(
                    (est - truth).abs() <= 1e-6 * truth.max(1.0),
                    "seed {seed}: {algo} on {query}: {est} vs {truth}"
                );
            }
        }
    }
}

/// XML roundtrip through the writer and parser preserves the tree.
#[test]
fn xml_roundtrip_via_dom() {
    use twig_xml::{Document, Element};
    fn random_element(rng: &mut SplitMix64, depth: usize) -> Element {
        let mut el = Element::new(format!("e{}", rng.next_below(5)));
        if rng.next_below(2) == 0 {
            el = el.with_attr(format!("a{}", rng.next_below(3)), "v&<>\"'");
        }
        if depth < 3 {
            for _ in 0..rng.next_below(3) {
                el = el.with_child(random_element(rng, depth + 1));
            }
        }
        if rng.next_below(2) == 0 {
            el = el.with_text(format!("text {} <&> {}", rng.next_below(100), depth));
        }
        el
    }
    for seed in seeds() {
        let mut rng = SplitMix64::new(seed);
        let original = random_element(&mut rng, 0);
        let written = twig_xml::writer::element_to_string(&original);
        let reparsed = Document::parse(&written).expect("roundtrip parses");
        assert_eq!(reparsed.root, original, "seed {seed}");
    }
}
