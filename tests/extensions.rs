//! Integration tests for the paper's future-work extensions: wildcard
//! queries, ordered matching, and summary persistence.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_sprot, SprotConfig};
use twig_exact::{
    count_occurrence, count_occurrence_ordered, count_presence, count_presence_ordered,
};
use twig_tree::{DataTree, Twig};

fn sprot() -> DataTree {
    DataTree::from_xml(&generate_sprot(&SprotConfig { target_bytes: 120 << 10, seed: 5150 }))
        .unwrap()
}

#[test]
fn wildcard_queries_estimate_and_count() {
    let tree = sprot();
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid");
    // `*` bridges the taxonomy nesting of unknown depth.
    let query = Twig::parse(r#"organism(*(name("Eukaryota")))"#).unwrap();
    let presence = count_presence(&tree, &query);
    assert!(presence > 0, "taxonomy chains exist");
    for algo in Algorithm::ALL {
        let est = cst.estimate(&query, algo, CountKind::Presence);
        assert!(est.is_finite() && est >= 0.0, "{algo}");
    }
}

#[test]
fn wildcard_chain_length_matters() {
    let tree = DataTree::from_xml("<r><a><m><n><x>v</x></n></m></a><a><x>v</x></a></r>").unwrap();
    // `*` matches element chains of length >= 1 below `a`, and the
    // chain's end must have an `x("v")` child. First record: chains m
    // (no x child) and m.n (x child ✓) -> 1 mapping. Second record: the
    // only chain is x itself, which has no x child -> 0.
    let q = Twig::parse(r#"a(*(x("v")))"#).unwrap();
    assert_eq!(count_occurrence(&tree, &q), 1);
    assert_eq!(count_presence(&tree, &q), 1);
}

#[test]
fn ordered_counting_full_workload_invariants() {
    let tree = sprot();
    let queries = twig_datagen::positive_queries(
        &tree,
        &twig_datagen::WorkloadConfig { count: 20, seed: 6, ..Default::default() },
    );
    for q in &queries {
        assert!(count_presence_ordered(&tree, q) <= count_presence(&tree, q));
        assert!(count_occurrence_ordered(&tree, q) <= count_occurrence(&tree, q));
    }
}

#[test]
fn ordered_estimation_reasonable_on_workload() {
    let tree = sprot();
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid");
    let queries = twig_datagen::positive_queries(
        &tree,
        &twig_datagen::WorkloadConfig { count: 15, seed: 8, ..Default::default() },
    );
    for q in &queries {
        let unordered = cst.estimate(q, Algorithm::Msh, CountKind::Occurrence);
        let ordered = cst.estimate_ordered(q, Algorithm::Msh, CountKind::Occurrence);
        assert!(ordered <= unordered + 1e-9, "{q}");
        assert!(ordered >= 0.0);
    }
}

#[test]
fn summary_file_roundtrip_through_disk() {
    let tree = sprot();
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.2), ..CstConfig::default() },
    )
    .expect("CST config is valid");
    let path = std::env::temp_dir().join(format!("twig-ext-{}.cst", std::process::id()));
    let mut buffer = Vec::new();
    cst.write_to(&mut buffer).unwrap();
    std::fs::write(&path, &buffer).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let restored = Cst::read_from(&mut bytes.as_slice()).unwrap();
    std::fs::remove_file(&path).ok();

    let queries = twig_datagen::positive_queries(
        &tree,
        &twig_datagen::WorkloadConfig { count: 10, seed: 10, ..Default::default() },
    );
    for q in &queries {
        for algo in Algorithm::ALL {
            assert_eq!(
                cst.estimate(q, algo, CountKind::Occurrence),
                restored.estimate(q, algo, CountKind::Occurrence),
                "{algo} {q}"
            );
        }
    }
}

#[test]
fn wildcard_star_as_leaf() {
    let tree = DataTree::from_xml("<r><a><b>x</b></a><a>y</a></r>").unwrap();
    // A bare * leaf matches any element chain below a.
    let q = Twig::parse("a(*)").unwrap();
    // First a: chains b (len 1) → 1 mapping; second a: no element child.
    assert_eq!(count_occurrence(&tree, &q), 1);
    assert_eq!(count_presence(&tree, &q), 1);
}
