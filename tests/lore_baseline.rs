//! Integration: the Lore-style Markov baseline vs the paper's estimators
//! (the Sec. 1.1 claim that CST-based estimation beats subpath-statistics
//! approaches on twig queries).

use twig_core::lore::LoreSummary;
use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, positive_queries, DblpConfig, WorkloadConfig};
use twig_exact::count_occurrence;
use twig_tree::DataTree;

fn fixture() -> DataTree {
    DataTree::from_xml(&generate_dblp(&DblpConfig {
        target_bytes: 400 << 10,
        seed: 1101,
        ..DblpConfig::default()
    }))
    .unwrap()
}

#[test]
fn lore_estimates_are_finite_and_nonnegative() {
    let tree = fixture();
    let lore = LoreSummary::build(&tree, 3);
    let queries = positive_queries(
        &tree,
        &WorkloadConfig { count: 30, seed: 2, ..WorkloadConfig::default() },
    );
    for q in &queries {
        let est = lore.estimate(q);
        assert!(est.is_finite() && est >= 0.0, "{q}: {est}");
    }
}

#[test]
fn lore_single_path_equals_unpruned_cst() {
    // On single paths within the Markov order both summaries are exact,
    // so they must agree.
    let tree = fixture();
    let lore = LoreSummary::build(&tree, 4);
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid");
    let queries = twig_datagen::trivial_queries(
        &tree,
        &WorkloadConfig { count: 20, seed: 3, internal: (2, 3), ..WorkloadConfig::default() },
    );
    for q in &queries {
        let lore_est = lore.estimate(q);
        let cst_est = cst.estimate(q, Algorithm::PureMo, CountKind::Occurrence);
        assert!(
            (lore_est - cst_est).abs() <= 0.02 * cst_est.max(1.0),
            "{q}: lore {lore_est} vs cst {cst_est}"
        );
    }
}

#[test]
fn set_hashing_beats_lore_on_twig_workload() {
    // Aggregate relative error over a positive workload: MSH (with
    // correlations) must beat the Markov baseline (without), per Sec. 1.1.
    let tree = fixture();
    let lore = LoreSummary::build(&tree, 3);
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Threshold(1), signature_len: 64, ..CstConfig::default() },
    )
    .expect("CST config is valid");
    let queries = positive_queries(
        &tree,
        &WorkloadConfig { count: 40, seed: 4, ..WorkloadConfig::default() },
    );
    let mut lore_err = 0.0;
    let mut msh_err = 0.0;
    let mut counted = 0usize;
    for q in &queries {
        let truth = count_occurrence(&tree, q) as f64;
        if truth == 0.0 {
            continue;
        }
        counted += 1;
        lore_err += (truth - lore.estimate(q)).abs() / truth;
        msh_err += (truth - cst.estimate(q, Algorithm::Msh, CountKind::Occurrence)).abs() / truth;
    }
    assert!(counted >= 30, "not enough queries");
    let lore_avg = lore_err / counted as f64;
    let msh_avg = msh_err / counted as f64;
    assert!(msh_avg < lore_avg, "MSH avg rel err {msh_avg:.3} must beat Lore {lore_avg:.3}");
}
