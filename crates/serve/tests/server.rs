//! End-to-end tests for the estimation server: boot on an ephemeral
//! port, drive it over real sockets, and check the full contract —
//! estimate parity with the offline API, error envelopes, backpressure,
//! hot reload, and graceful shutdown.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_serve::http::{
    read_response, read_response_pipelined, write_request, ClientResponse, Limits,
};
use twig_serve::json::Json;
use twig_serve::loadgen;
use twig_serve::{
    LoadOutcome, Server, ServerConfig, ServerHandle, SnapshotStore, SummaryRegistry, SummarySpec,
};
use twig_tree::{DataTree, Twig};

const XML: &str = "<dblp>\
    <book><author>AAA</author><author>BBB</author><title>T1</title><year>1999</year></book>\
    <book><author>AAA</author><title>T2</title><year>2001</year></book>\
    <book><author>CCC</author><title>T3</title></book>\
    <article><author>AAA</author><title>T4</title><year>1999</year></article>\
    <article><author>DDD</author><journal>J1</journal><year>2003</year></article>\
    <inproceedings><author>BBB</author><title>T5</title><year>2001</year></inproceedings>\
</dblp>";

fn build_cst(xml: &str) -> Cst {
    let tree = DataTree::from_xml(xml).unwrap();
    Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twig-serve-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_summary_file(path: &Path, xml: &str) -> Cst {
    let cst = build_cst(xml);
    let mut bytes = Vec::new();
    cst.write_to(&mut bytes).unwrap();
    std::fs::write(path, &bytes).unwrap();
    cst
}

struct TestServer {
    addr: String,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServerConfig, registry: SummaryRegistry) -> TestServer {
        let server = Server::bind("127.0.0.1:0", config, registry).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer { addr, handle, thread: Some(thread) }
    }

    /// Requests shutdown and asserts `run()` returns cleanly.
    fn stop(mut self) {
        self.handle.shutdown();
        let thread = self.thread.take().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !thread.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(thread.is_finished(), "server did not drain within 10s");
        thread.join().unwrap().unwrap();
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn client_limits() -> Limits {
    Limits {
        max_head_bytes: 64 * 1024,
        max_body_bytes: 16 * 1024 * 1024,
        read_deadline: Duration::from_secs(10),
        idle_deadline: Duration::from_secs(10),
    }
}

fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    write_request(&mut stream, method, path, body).unwrap();
    read_response(&mut stream, &client_limits()).unwrap()
}

fn get(addr: &str, path: &str) -> ClientResponse {
    request(addr, "GET", path, b"")
}

fn post_json(addr: &str, path: &str, body: &str) -> ClientResponse {
    request(addr, "POST", path, body.as_bytes())
}

fn default_registry(dir: &Path) -> (SummaryRegistry, Cst) {
    let path = dir.join("default.cst");
    let cst = write_summary_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "default".into(), path }).unwrap();
    (registry, cst)
}

#[test]
fn endpoints_and_estimate_parity() {
    let dir = temp_dir("endpoints");
    let (registry, cst) = default_registry(&dir);
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    // healthz
    let response = get(addr, "/healthz");
    assert_eq!(response.status, 200);
    let body = Json::parse(&response.body_text()).unwrap();
    assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(body.get("summaries").unwrap().as_f64(), Some(1.0));

    // summaries
    let response = get(addr, "/summaries");
    assert_eq!(response.status, 200);
    let body = Json::parse(&response.body_text()).unwrap();
    let list = body.get("summaries").unwrap().as_array().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").unwrap().as_str(), Some("default"));
    assert_eq!(list[0].get("generation").unwrap().as_f64(), Some(1.0));
    let nodes = list[0].get("nodes").unwrap().as_f64().unwrap();
    assert!(nodes > 0.0);

    // Single-query estimate, every algorithm × count kind: the served
    // number must be bit-identical to the in-process estimate.
    let queries = [
        r#"book(author("AAA"))"#,
        r#"book(author("AAA"),year("1999"))"#,
        r#"dblp(book(title("T1")))"#,
        r#"article(year("2003"))"#,
        r#"phdthesis(author("ZZZ"))"#,
    ];
    for algorithm in Algorithm::ALL {
        for (kind, kind_name) in
            [(CountKind::Presence, "presence"), (CountKind::Occurrence, "occurrence")]
        {
            for query_text in queries {
                let body = format!(
                    r#"{{"query":{},"algorithm":"{}","count_kind":"{kind_name}"}}"#,
                    Json::str(query_text).render(),
                    algorithm.name(),
                );
                let response = post_json(addr, "/estimate", &body);
                assert_eq!(response.status, 200, "{}", response.body_text());
                let parsed = Json::parse(&response.body_text()).unwrap();
                assert_eq!(parsed.get("algorithm").unwrap().as_str(), Some(algorithm.name()));
                assert_eq!(parsed.get("count_kind").unwrap().as_str(), Some(kind_name));
                let served =
                    parsed.get("estimates").unwrap().as_array().unwrap()[0].as_f64().unwrap();
                let expected = cst.estimate(&Twig::parse(query_text).unwrap(), algorithm, kind);
                assert_eq!(
                    served.to_bits(),
                    expected.to_bits(),
                    "{} {} {kind_name}: served {served} != offline {expected}",
                    query_text,
                    algorithm.name(),
                );
            }
        }
    }

    // Batch estimate: order-preserving, same parity.
    let batch_body = format!(
        r#"{{"queries":[{},{},{}],"algorithm":"mosh"}}"#,
        Json::str(queries[0]).render(),
        Json::str(queries[1]).render(),
        Json::str(queries[3]).render(),
    );
    let response = post_json(addr, "/estimate", &batch_body);
    assert_eq!(response.status, 200, "{}", response.body_text());
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("count").unwrap().as_f64(), Some(3.0));
    let served: Vec<f64> = parsed
        .get("estimates")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    for (index, query_text) in [queries[0], queries[1], queries[3]].iter().enumerate() {
        let expected =
            cst.estimate(&Twig::parse(query_text).unwrap(), Algorithm::Mosh, CountKind::Occurrence);
        assert_eq!(served[index].to_bits(), expected.to_bits(), "batch[{index}]");
    }

    // Keep-alive: two requests over one connection.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(&mut stream, "GET", "/healthz", b"").unwrap();
        let first = read_response(&mut stream, &client_limits()).unwrap();
        assert_eq!(first.status, 200);
        write_request(&mut stream, "GET", "/healthz", b"").unwrap();
        let second = read_response(&mut stream, &client_limits()).unwrap();
        assert_eq!(second.status, 200);
    }

    // Error envelopes.
    let cases: [(&str, &str, &str, u16, &str); 8] = [
        ("POST", "/estimate", "{not json", 400, "bad_json"),
        ("POST", "/estimate", r#"{"queries":[]}"#, 400, "bad_request"),
        ("POST", "/estimate", r#"{"query":"a(b)","queries":["a(b)"]}"#, 400, "bad_request"),
        ("POST", "/estimate", r#"{"query":"not a twig(("}"#, 400, "bad_query"),
        ("POST", "/estimate", r#"{"query":"a(b)","algorithm":"quantum"}"#, 400, "bad_request"),
        ("POST", "/estimate", r#"{"query":"a(b)","summary":"nope"}"#, 404, "unknown_summary"),
        ("GET", "/estimate", "", 405, "method_not_allowed"),
        ("GET", "/no/such/path", "", 404, "not_found"),
    ];
    for (method, path, body, status, kind) in cases {
        let response = request(addr, method, path, body.as_bytes());
        assert_eq!(response.status, status, "{method} {path} {body}: {}", response.body_text());
        let parsed = Json::parse(&response.body_text()).unwrap();
        assert_eq!(
            parsed.get("error").unwrap().get("kind").unwrap().as_str(),
            Some(kind),
            "{method} {path}"
        );
    }

    // Metrics reflect the traffic.
    let response = get(addr, "/metrics");
    assert_eq!(response.status, 200);
    let text = response.body_text();
    assert!(text.contains("twig_serve_requests_total"), "{text}");
    assert!(text.contains("twig_serve_estimates_total"), "{text}");
    assert!(text.contains("twig_serve_request_latency_us_bucket"), "{text}");
    assert!(text.contains("twig_serve_request_latency_us_count"), "{text}");
    let estimates_line =
        text.lines().find(|line| line.starts_with("twig_serve_estimates_total ")).unwrap();
    let count: f64 = estimates_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(count >= 63.0, "expected >= 63 estimates recorded, got {count}");

    // Shutdown over HTTP: acknowledged, connection closed, clean drain.
    let response = post_json(addr, "/admin/shutdown", "");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipelined_burst_is_served_in_order_over_one_connection() {
    let dir = temp_dir("pipeline");
    let (registry, cst) = default_registry(&dir);
    let server = TestServer::start(ServerConfig::default(), registry);

    // Write the whole burst — one request per algorithm — before
    // reading a single byte back. HTTP/1.1 pipelining guarantees FIFO
    // responses, and each must be bit-identical to the offline API.
    let query = r#"book(author("AAA"),year("1999"))"#;
    let twig = Twig::parse(query).unwrap();
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream.set_nodelay(true).unwrap();
    for algorithm in Algorithm::ALL {
        let body = format!(
            r#"{{"query":{},"algorithm":"{}"}}"#,
            Json::str(query).render(),
            algorithm.name(),
        );
        write_request(&mut stream, "POST", "/estimate", body.as_bytes()).unwrap();
    }
    // A single read may deliver several back-to-back responses, so the
    // reads share one connection buffer.
    let mut inbound = Vec::new();
    for algorithm in Algorithm::ALL {
        let response = read_response_pipelined(&mut stream, &mut inbound, &client_limits())
            .unwrap_or_else(|e| panic!("{}: {e:?}", algorithm.name()));
        assert_eq!(response.status, 200, "{}: {}", algorithm.name(), response.body_text());
        let parsed = Json::parse(&response.body_text()).unwrap();
        assert_eq!(parsed.get("algorithm").unwrap().as_str(), Some(algorithm.name()));
        let served = parsed.get("estimates").unwrap().as_array().unwrap()[0].as_f64().unwrap();
        let expected = cst.estimate(&twig, algorithm, CountKind::Occurrence);
        assert_eq!(served.to_bits(), expected.to_bits(), "{}", algorithm.name());
    }

    // The server counted the burst's follow-on requests as pipelined
    // only if they were genuinely batched in one buffer pass; the
    // counter existing (and the connection surviving) is the contract.
    let text = get(&server.addr, "/metrics").body_text();
    assert!(text.contains("twig_serve_pipelined_requests_total"), "{text}");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_body_is_rejected() {
    let dir = temp_dir("oversize");
    let (registry, _cst) = default_registry(&dir);
    let config = ServerConfig { max_body_bytes: 1024, ..ServerConfig::default() };
    let server = TestServer::start(config, registry);

    let huge = format!(r#"{{"query":"{}"}}"#, "x".repeat(4096));
    let response = post_json(&server.addr, "/estimate", &huge);
    assert_eq!(response.status, 413, "{}", response.body_text());
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("error").unwrap().get("kind").unwrap().as_str(), Some("body_too_large"));

    // A small request still works: the limit is per-request, not fatal.
    let response = post_json(&server.addr, "/estimate", r#"{"query":"book(author(\"AAA\"))"}"#);
    assert_eq!(response.status, 200, "{}", response.body_text());

    // Batch cap separately from byte cap.
    let many: Vec<String> = (0..9).map(|_| r#""a(b)""#.to_owned()).collect();
    let config_small_batch = ServerConfig { max_batch: 8, ..ServerConfig::default() };
    let (registry2, _) = default_registry(&dir);
    let server2 = TestServer::start(config_small_batch, registry2);
    let body = format!(r#"{{"queries":[{}]}}"#, many.join(","));
    let response = post_json(&server2.addr, "/estimate", &body);
    assert_eq!(response.status, 413, "{}", response.body_text());
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("error").unwrap().get("kind").unwrap().as_str(), Some("batch_too_large"));

    server.stop();
    server2.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturation_yields_503_with_retry_after() {
    let dir = temp_dir("saturation");
    let (registry, _cst) = default_registry(&dir);
    // One worker, one queue slot: the third connection must be bounced.
    let config = ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() };
    let server = TestServer::start(config, registry);
    let addr = &server.addr;

    // Connection A: prove the single worker owns it by completing a
    // request; the worker then sits in A's keep-alive read loop.
    let mut conn_a = TcpStream::connect(addr).unwrap();
    write_request(&mut conn_a, "GET", "/healthz", b"").unwrap();
    assert_eq!(read_response(&mut conn_a, &client_limits()).unwrap().status, 200);

    // Connection B: admitted into the queue (never served while A holds
    // the worker).
    let conn_b = TcpStream::connect(addr).unwrap();
    // Give the accept loop time to move B into the queue.
    std::thread::sleep(Duration::from_millis(500));

    // Connection C: queue full -> inline 503 from the accept thread.
    let mut conn_c = TcpStream::connect(addr).unwrap();
    let response = read_response(&mut conn_c, &client_limits()).unwrap();
    assert_eq!(response.status, 503, "{}", response.body_text());
    assert_eq!(response.header("retry-after"), Some("1"));
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("error").unwrap().get("kind").unwrap().as_str(), Some("saturated"));

    // The rejection is visible in metrics (read through the handle to
    // avoid needing a free worker).
    assert_eq!(server.handle.state().metrics().rejected_saturated.get(), 1);

    drop(conn_a);
    drop(conn_b);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_swaps_and_is_failsafe() {
    let dir = temp_dir("reload");
    let path = dir.join("main.cst");
    write_summary_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    let estimate = |addr: &str| -> f64 {
        let response = post_json(
            addr,
            "/estimate",
            r#"{"summary":"main","query":"book(author(\"AAA\"))","algorithm":"leaf"}"#,
        );
        assert_eq!(response.status, 200, "{}", response.body_text());
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap()
    };

    let before = estimate(addr);

    // Swap the backing file for a doc with more matching books.
    let bigger = XML.replace(
        "</dblp>",
        "<book><author>AAA</author><title>T9</title></book>\
         <book><author>AAA</author><title>T10</title></book></dblp>",
    );
    let replacement = write_summary_file(&path, &bigger);
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(true));

    let after = estimate(addr);
    assert_ne!(before.to_bits(), after.to_bits(), "reload must change the estimate");
    let expected = replacement.estimate(
        &Twig::parse(r#"book(author("AAA"))"#).unwrap(),
        Algorithm::Leaf,
        CountKind::Occurrence,
    );
    assert_eq!(after.to_bits(), expected.to_bits());

    // Corrupt the file: reload reports the failure, old summary serves.
    std::fs::write(&path, [0x67u8; 64]).unwrap();
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(false));
    let entry = &parsed.get("reloaded").unwrap().as_array().unwrap()[0];
    assert_eq!(entry.get("ok").unwrap(), &Json::Bool(false));
    let error_text = entry.get("error").unwrap().as_str().unwrap();
    assert!(error_text.contains("cannot load summary 'main'"), "{error_text}");

    let still = estimate(addr);
    assert_eq!(still.to_bits(), after.to_bits(), "failed reload must keep serving");

    // Generation only bumped by the successful reload.
    let response = get(addr, "/summaries");
    let parsed = Json::parse(&response.body_text()).unwrap();
    let list = parsed.get("summaries").unwrap().as_array().unwrap();
    assert_eq!(list[0].get("generation").unwrap().as_f64(), Some(2.0));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadgen_smoke_hits_the_server() {
    let dir = temp_dir("loadgen");
    let (registry, _cst) = default_registry(&dir);
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = server.addr.clone();

    // smoke() drives 2 connections for ~1.5s, asserts zero failures, and
    // shuts the server down itself.
    let report = loadgen::smoke(&addr, "default").unwrap();
    assert!(report.requests > 0);
    assert_eq!(report.estimates, report.requests * 8);
    assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
    assert!(report.requests_per_sec > 0.0);

    // The server was shut down by the smoke run.
    let thread_done = Instant::now() + Duration::from_secs(10);
    let state = server.handle.clone();
    while !state.is_shutting_down() && Instant::now() < thread_done {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(state.is_shutting_down());
    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_estimates_during_reloads_never_mix_summaries() {
    let dir = temp_dir("concurrent");
    let path = dir.join("main.cst");
    write_summary_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let config = ServerConfig { workers: 4, queue_capacity: 64, ..ServerConfig::default() };
    let server = TestServer::start(config, registry);
    let addr = server.addr.clone();

    const BATCH: &str = r#"{"summary":"main","queries":["book(author(\"AAA\"))","book(author(\"AAA\"),year(\"1999\"))","article(year(\"2003\"))"],"algorithm":"msh"}"#;
    let estimates_token = |addr: &str| -> String {
        let response = post_json(addr, "/estimate", BATCH);
        assert_eq!(response.status, 200, "{}", response.body_text());
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().render()
    };

    // Two summary variants whose estimates for the batch differ; the
    // rendered estimates array is a shortest-round-trip encoding, so
    // comparing tokens is bit-exact value comparison.
    let token_a = estimates_token(&addr);
    let variant_b = XML.replace(
        "</dblp>",
        "<book><author>AAA</author><year>1999</year><title>T9</title></book></dblp>",
    );
    write_summary_file(&path, &variant_b);
    let response = post_json(&addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let token_b = estimates_token(&addr);
    assert_ne!(token_a, token_b, "variants must be distinguishable");

    // Hammer /estimate from four client threads while the main thread
    // flips the backing file and reloads. Every successful response must
    // be exactly variant A or exactly variant B — never a mix of the
    // two — and the generation seen by one client never goes backwards.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = std::sync::Arc::clone(&stop);
            let (token_a, token_b) = (token_a.clone(), token_b.clone());
            std::thread::spawn(move || {
                let mut checked = 0u64;
                let mut last_generation = 0.0f64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let response = post_json(&addr, "/estimate", BATCH);
                    if response.status == 503 {
                        continue; // transient saturation is acceptable here
                    }
                    assert_eq!(response.status, 200, "{}", response.body_text());
                    let body = Json::parse(&response.body_text()).unwrap();
                    let token = body.get("estimates").unwrap().render();
                    assert!(
                        token == token_a || token == token_b,
                        "mixed-summary response: {token}"
                    );
                    let generation = body.get("generation").unwrap().as_f64().unwrap();
                    assert!(generation >= last_generation, "generation went backwards");
                    last_generation = generation;
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    for round in 0..10 {
        if round % 2 == 0 {
            write_summary_file(&path, XML);
        } else {
            write_summary_file(&path, &variant_b);
        }
        let response = post_json(&addr, "/admin/reload", "");
        assert_eq!(response.status, 200);
        let parsed = Json::parse(&response.body_text()).unwrap();
        assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(true));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total = 0;
    for client in clients {
        total += client.join().unwrap();
    }
    assert!(total > 0, "clients must have exercised the server");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_reload_enters_degraded_mode_and_recovers() {
    let dir = temp_dir("degraded");
    let path = dir.join("main.cst");
    write_summary_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;
    const BODY: &str = r#"{"summary":"main","query":"book(author(\"AAA\"))","algorithm":"leaf"}"#;

    // Healthy: no stale header, gauge at zero.
    let response = post_json(addr, "/estimate", BODY);
    assert_eq!(response.status, 200, "{}", response.body_text());
    assert_eq!(response.header("x-twig-stale-generation"), None);
    let baseline = Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().render();
    let text = get(addr, "/metrics").body_text();
    assert!(text.contains("twig_serve_degraded 0\n"), "{text}");

    // Corrupt the backing file: the failed reload keeps serving the old
    // generation but flips the entry into degraded mode.
    std::fs::write(&path, b"not a summary").unwrap();
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(false));

    let response = post_json(addr, "/estimate", BODY);
    assert_eq!(response.status, 200, "{}", response.body_text());
    assert_eq!(response.header("x-twig-stale-generation"), Some("1"));
    let served = Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().render();
    assert_eq!(served, baseline, "degraded mode must keep the last good estimates");

    let health = Json::parse(&get(addr, "/healthz").body_text()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));
    assert_eq!(health.get("degraded").unwrap().as_f64(), Some(1.0));
    let entries = health.get("summary_health").unwrap().as_array().unwrap();
    assert_eq!(entries[0].get("name").unwrap().as_str(), Some("main"));
    assert_eq!(entries[0].get("stale").unwrap(), &Json::Bool(true));
    let last_error = entries[0].get("last_error").unwrap().as_str().unwrap();
    assert!(last_error.contains("cannot load summary 'main'"), "{last_error}");
    let text = get(addr, "/metrics").body_text();
    assert!(text.contains("twig_serve_degraded 1\n"), "{text}");

    // Repairing the file and reloading clears degraded mode.
    write_summary_file(&path, XML);
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(true));
    let response = post_json(addr, "/estimate", BODY);
    assert_eq!(response.header("x-twig-stale-generation"), None);
    assert_eq!(
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().render(),
        baseline,
        "the repaired file holds the same summary"
    );
    let health = Json::parse(&get(addr, "/healthz").body_text()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_store_recovers_after_source_corruption() {
    let dir = temp_dir("snapshot-recover");
    let path = dir.join("main.cst");
    let state = dir.join("state");
    let original = write_summary_file(&path, XML);

    // First boot: loading with an attached store commits generation 1.
    {
        let registry = SummaryRegistry::new();
        assert!(registry.attach_store(SnapshotStore::open(&state).unwrap()));
        registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
        assert_eq!(registry.snapshot_store().unwrap().committed_generation("main"), Some(1));
    }

    // Simulated crash: the source file is torn; only the snapshot
    // survives. Startup recovery serves it, marked stale.
    std::fs::write(&path, [0u8; 16]).unwrap();
    let registry = SummaryRegistry::new();
    assert!(registry.attach_store(SnapshotStore::open(&state).unwrap()));
    let outcome =
        registry.load_or_recover(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let LoadOutcome::Recovered { generation, error } = outcome else {
        panic!("expected recovery, got {outcome:?}");
    };
    assert_eq!(generation, 1);
    assert!(error.contains("cannot load summary 'main'"), "{error}");
    assert_eq!(registry.degraded(), 1);

    // The recovered snapshot serves bit-identical estimates under the
    // stale header.
    let server = TestServer::start(ServerConfig::default(), registry);
    let response = post_json(
        &server.addr,
        "/estimate",
        r#"{"summary":"main","query":"book(author(\"AAA\"))","algorithm":"leaf"}"#,
    );
    assert_eq!(response.status, 200, "{}", response.body_text());
    assert_eq!(response.header("x-twig-stale-generation"), Some("1"));
    let served =
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().as_array().unwrap()
            [0]
        .as_f64()
        .unwrap();
    let expected = original.estimate(
        &Twig::parse(r#"book(author("AAA"))"#).unwrap(),
        Algorithm::Leaf,
        CountKind::Occurrence,
    );
    assert_eq!(served.to_bits(), expected.to_bits());

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plan_cache_hits_repeated_twigs_and_reload_invalidates() {
    let dir = temp_dir("plancache");
    let path = dir.join("main.cst");
    let original = write_summary_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    let counter = |name: &str| -> u64 {
        let text = get(addr, "/metrics").body_text();
        text.lines()
            .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
            .and_then(|value| value.trim().parse().ok())
            .unwrap_or_else(|| panic!("missing metric {name} in:\n{text}"))
    };
    let estimate = || -> f64 {
        let response = post_json(
            addr,
            "/estimate",
            r#"{"summary":"main","query":"book(author(\"AAA\"),year(\"1999\"))","algorithm":"msh"}"#,
        );
        assert_eq!(response.status, 200, "{}", response.body_text());
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap()
    };
    let twig = Twig::parse(r#"book(author("AAA"),year("1999"))"#).unwrap();

    // Cold twig: one miss; repeat: one hit, bit-identical, and still in
    // parity with the offline plan-free API.
    let cold = estimate();
    assert_eq!(counter("twig_serve_plan_cache_misses_total"), 1);
    assert_eq!(counter("twig_serve_plan_cache_hits_total"), 0);
    let warm = estimate();
    assert_eq!(counter("twig_serve_plan_cache_hits_total"), 1);
    assert_eq!(counter("twig_serve_plan_cache_misses_total"), 1);
    assert_eq!(cold.to_bits(), warm.to_bits());
    let expected = original.estimate(&twig, Algorithm::Msh, CountKind::Occurrence);
    assert_eq!(cold.to_bits(), expected.to_bits(), "cached plan must not change the estimate");

    // Reload a changed file: the generation bump keys the twig to a
    // fresh plan (a miss), and the estimate tracks the new summary.
    let bigger = XML.replace(
        "</dblp>",
        "<book><author>AAA</author><year>1999</year><title>T9</title></book></dblp>",
    );
    let replacement = write_summary_file(&path, &bigger);
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let after = estimate();
    assert_eq!(counter("twig_serve_plan_cache_misses_total"), 2, "reload must invalidate");
    assert_eq!(counter("twig_serve_plan_cache_hits_total"), 1);
    let expected = replacement.estimate(&twig, Algorithm::Msh, CountKind::Occurrence);
    assert_eq!(after.to_bits(), expected.to_bits());
    assert_ne!(after.to_bits(), cold.to_bits(), "the swapped summary changes the estimate");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
