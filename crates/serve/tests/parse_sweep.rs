//! Split-boundary sweep for the incremental HTTP parser.
//!
//! The reactor feeds `parse_request_bytes` whatever the socket
//! delivered, so request heads, bodies, and pipelined batches arrive
//! split at arbitrary byte boundaries. These tests prove the parser is
//! split-invariant: for every cut point (exhaustively) and for seeded
//! random chunkings, the outcome is identical to parsing the complete
//! buffer in one shot — `NeedMore` until enough bytes exist, then the
//! same request (or the same typed error) regardless of arrival shape.
//! The malformed-input corpus reuses the PR 3 regression set (bad
//! request lines, bad/overflowing content-length, transfer-encoding,
//! oversized declarations).

use std::time::Duration;

use twig_serve::http::{parse_request_bytes, Limits, Parsed, ReadOutcome};
use twig_util::SplitMix64;

fn limits() -> Limits {
    Limits {
        max_head_bytes: 256,
        max_body_bytes: 64,
        read_deadline: Duration::from_secs(1),
        idle_deadline: Duration::from_secs(1),
    }
}

/// A canned wire-format request and the fields it must parse to.
struct Canned {
    raw: &'static [u8],
    method: &'static str,
    target: &'static str,
    body: &'static [u8],
}

const CANNED: &[Canned] = &[
    Canned { raw: b"GET /healthz HTTP/1.1\r\n\r\n", method: "GET", target: "/healthz", body: b"" },
    Canned {
        raw: b"POST /estimate HTTP/1.1\r\nhost: t\r\ncontent-length: 9\r\n\r\n{\"q\":\"a\"}",
        method: "POST",
        target: "/estimate",
        body: b"{\"q\":\"a\"}",
    },
    Canned {
        raw: b"POST /admin/reload HTTP/1.0\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n",
        method: "POST",
        target: "/admin/reload",
        body: b"",
    },
];

fn assert_is(canned: &Canned, parsed: &Parsed) {
    match parsed {
        Parsed::Request { request, consumed } => {
            assert_eq!(*consumed, canned.raw.len());
            assert_eq!(request.method, canned.method);
            assert_eq!(request.target, canned.target);
            assert_eq!(request.body, canned.body);
        }
        Parsed::NeedMore => panic!("complete request parsed as NeedMore"),
    }
}

#[test]
fn every_cut_point_yields_need_more_then_the_same_request() {
    let limits = limits();
    for canned in CANNED {
        for cut in 0..canned.raw.len() {
            match parse_request_bytes(&canned.raw[..cut], &limits) {
                Ok(Parsed::NeedMore) => {}
                other => panic!("cut {cut} of {:?}: unexpected {other:?}", canned.target),
            }
        }
        let full = parse_request_bytes(canned.raw, &limits).expect("full request parses");
        assert_is(canned, &full);
    }
}

#[test]
fn headers_split_across_reads_parse_identically() {
    // The same request with trailing pipelined garbage must consume
    // exactly its own bytes and leave the rest untouched.
    let limits = limits();
    for canned in CANNED {
        let mut wire = canned.raw.to_vec();
        wire.extend_from_slice(b"GET /next HTTP/1.1\r\n");
        let parsed = parse_request_bytes(&wire, &limits).expect("framed request parses");
        assert_is(canned, &parsed);
    }
}

#[test]
fn pipelined_back_to_back_requests_frame_one_at_a_time() {
    let limits = limits();
    // Concatenate every canned request into one wire buffer, then feed
    // it through the parse-drain loop the reactor runs.
    let mut wire: Vec<u8> = Vec::new();
    for canned in CANNED {
        wire.extend_from_slice(canned.raw);
    }
    for split in 0..=wire.len() {
        // Deliver in two reads split at every boundary.
        let mut buffer: Vec<u8> = Vec::new();
        let mut seen = 0;
        for chunk in [&wire[..split], &wire[split..]] {
            buffer.extend_from_slice(chunk);
            loop {
                match parse_request_bytes(&buffer, &limits).expect("valid pipeline") {
                    Parsed::NeedMore => break,
                    Parsed::Request { request, consumed } => {
                        let canned = &CANNED[seen];
                        assert_eq!(request.method, canned.method, "split {split}");
                        assert_eq!(request.target, canned.target, "split {split}");
                        assert_eq!(request.body, canned.body, "split {split}");
                        buffer.drain(..consumed);
                        seen += 1;
                    }
                }
            }
        }
        assert_eq!(seen, CANNED.len(), "split {split} lost a request");
        assert!(buffer.is_empty(), "split {split} left residue");
    }
}

#[test]
fn seeded_chunk_sweep_reassembles_long_pipelines() {
    let limits = limits();
    let mut wire: Vec<u8> = Vec::new();
    let mut expected = Vec::new();
    // A longer pipeline: 12 requests cycling through the canned set.
    for index in 0..12 {
        let canned = &CANNED[index % CANNED.len()];
        wire.extend_from_slice(canned.raw);
        expected.push((canned.method, canned.target, canned.body));
    }
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let mut buffer: Vec<u8> = Vec::new();
        let mut seen = Vec::new();
        let mut cursor = 0;
        while cursor < wire.len() {
            // Chunk sizes from 1 byte to ~40: most cuts land mid-head
            // or mid-body.
            let take = (1 + rng.next_below(40) as usize).min(wire.len() - cursor);
            buffer.extend_from_slice(&wire[cursor..cursor + take]);
            cursor += take;
            loop {
                match parse_request_bytes(&buffer, &limits).expect("valid pipeline") {
                    Parsed::NeedMore => break,
                    Parsed::Request { request, consumed } => {
                        seen.push((request.method.clone(), request.target.clone(), request.body));
                        buffer.drain(..consumed);
                    }
                }
            }
        }
        assert_eq!(seen.len(), expected.len(), "seed {seed}");
        for (got, want) in seen.iter().zip(&expected) {
            assert_eq!((got.0.as_str(), got.1.as_str(), got.2.as_slice()), *want, "seed {seed}");
        }
    }
}

/// The malformed corpus: each entry must produce its error class once
/// enough bytes have arrived, and `NeedMore` (never a wrong success, a
/// wrong error, or a panic) at every earlier cut.
#[test]
fn malformed_corpus_errors_are_split_stable() {
    type CorpusEntry<'a> = (&'a [u8], fn(&ReadOutcome) -> bool);
    let limits = limits();
    let overflow = format!("POST / HTTP/1.1\r\ncontent-length: {}99\r\n\r\n", u64::MAX);
    let corpus: &[CorpusEntry<'_>] = &[
        (b"NOT HTTP\r\n\r\n", |e| matches!(e, ReadOutcome::Malformed(_))),
        (b"GET /x HTTP/2\r\n\r\n", |e| matches!(e, ReadOutcome::Malformed(_))),
        (b"GET / HTTP/1.1\r\nbroken header line\r\n\r\n", |e| {
            matches!(e, ReadOutcome::Malformed(_))
        }),
        (b"POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n", |e| {
            matches!(e, ReadOutcome::Malformed(_))
        }),
        (overflow.as_bytes(), |e| matches!(e, ReadOutcome::Malformed(_))),
        (b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", |e| {
            matches!(e, ReadOutcome::Malformed(_))
        }),
        // Declared body over the 64-byte limit: rejected from the head
        // alone, before any body byte.
        (b"POST / HTTP/1.1\r\ncontent-length: 999\r\n\r\n", |e| {
            matches!(e, ReadOutcome::BodyTooLarge { declared: 999 })
        }),
    ];
    for (index, (raw, is_expected)) in corpus.iter().enumerate() {
        for cut in 0..raw.len() {
            match parse_request_bytes(&raw[..cut], &limits) {
                Ok(Parsed::NeedMore) => {}
                Ok(other) => panic!("corpus {index} cut {cut}: parsed {other:?}"),
                // An error surfacing early is fine only if it is the
                // expected class (e.g. an oversized declaration is known
                // the instant the head completes).
                Err(outcome) => {
                    assert!(is_expected(&outcome), "corpus {index} cut {cut}: {outcome:?}");
                }
            }
        }
        match parse_request_bytes(raw, &limits) {
            Err(outcome) => assert!(is_expected(&outcome), "corpus {index}: {outcome:?}"),
            Ok(other) => panic!("corpus {index}: accepted as {other:?}"),
        }
    }
}

/// A head that never terminates must flip to `HeadTooLarge` exactly
/// when it exceeds the limit, at any arrival granularity.
#[test]
fn unterminated_head_grows_into_head_too_large() {
    let limits = limits();
    let mut raw = b"GET /".to_vec();
    raw.resize(raw.len() + 512, b'a');
    for cut in 0..raw.len() {
        match parse_request_bytes(&raw[..cut], &limits) {
            Ok(Parsed::NeedMore) => assert!(cut <= limits.max_head_bytes, "cut {cut}"),
            Err(ReadOutcome::HeadTooLarge) => assert!(cut > limits.max_head_bytes, "cut {cut}"),
            other => panic!("cut {cut}: {other:?}"),
        }
    }
}
