//! End-to-end tests for serving flat (`TWIGFLT1`) summaries: the
//! registry mmaps them zero-copy, reload is a map-swap, snapshots
//! persist the raw flat container, and quarantined torn snapshots are
//! surfaced in `/healthz` and `/metrics`.

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_flat::writer as flat_writer;
use twig_serve::http::{read_response, write_request, ClientResponse, Limits};
use twig_serve::json::Json;
use twig_serve::{
    LoadOutcome, Server, ServerConfig, ServerHandle, SnapshotStore, SummaryRegistry, SummarySpec,
};
use twig_tree::{DataTree, Twig};

const XML: &str = "<dblp>\
    <book><author>AAA</author><author>BBB</author><title>T1</title><year>1999</year></book>\
    <book><author>AAA</author><title>T2</title><year>2001</year></book>\
    <book><author>CCC</author><title>T3</title></book>\
    <article><author>AAA</author><title>T4</title><year>1999</year></article>\
    <article><author>DDD</author><journal>J1</journal><year>2003</year></article>\
    <inproceedings><author>BBB</author><title>T5</title><year>2001</year></inproceedings>\
</dblp>";

fn build_cst(xml: &str) -> Cst {
    let tree = DataTree::from_xml(xml).unwrap();
    Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twig-flat-host-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a CST from `xml` and writes it to `path` as a flat container.
fn write_flat_file(path: &Path, xml: &str) -> Cst {
    let cst = build_cst(xml);
    flat_writer::write_file(&cst, path).unwrap();
    cst
}

struct TestServer {
    addr: String,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    fn start(config: ServerConfig, registry: SummaryRegistry) -> TestServer {
        let server = Server::bind("127.0.0.1:0", config, registry).unwrap();
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer { addr, handle, thread: Some(thread) }
    }

    fn stop(mut self) {
        self.handle.shutdown();
        let thread = self.thread.take().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !thread.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(thread.is_finished(), "server did not drain within 10s");
        thread.join().unwrap().unwrap();
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn client_limits() -> Limits {
    Limits {
        max_head_bytes: 64 * 1024,
        max_body_bytes: 16 * 1024 * 1024,
        read_deadline: Duration::from_secs(10),
        idle_deadline: Duration::from_secs(10),
    }
}

fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    write_request(&mut stream, method, path, body).unwrap();
    read_response(&mut stream, &client_limits()).unwrap()
}

fn get(addr: &str, path: &str) -> ClientResponse {
    request(addr, "GET", path, b"")
}

fn post_json(addr: &str, path: &str, body: &str) -> ClientResponse {
    request(addr, "POST", path, body.as_bytes())
}

#[test]
fn flat_summary_serves_with_owned_parity() {
    let dir = temp_dir("parity");
    let path = dir.join("main.flt");
    let cst = write_flat_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "default".into(), path }).unwrap();
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    // The registry reports the zero-copy backing in /summaries and
    // /healthz.
    let body = Json::parse(&get(addr, "/summaries").body_text()).unwrap();
    let list = body.get("summaries").unwrap().as_array().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].get("name").unwrap().as_str(), Some("default"));
    assert_eq!(list[0].get("format").unwrap().as_str(), Some("flat+mmap"));
    let nodes = list[0].get("nodes").unwrap().as_f64().unwrap();
    assert!(nodes > 0.0);

    let health = Json::parse(&get(addr, "/healthz").body_text()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    let entries = health.get("summary_health").unwrap().as_array().unwrap();
    assert_eq!(entries[0].get("format").unwrap().as_str(), Some("flat+mmap"));

    // Every algorithm x count kind: estimates served off the mapped flat
    // summary are bit-identical to the owned in-process estimator.
    let queries = [
        r#"book(author("AAA"))"#,
        r#"book(author("AAA"),year("1999"))"#,
        r#"dblp(book(title("T1")))"#,
        r#"article(year("2003"))"#,
        r#"phdthesis(author("ZZZ"))"#,
    ];
    for algorithm in Algorithm::ALL {
        for (kind, kind_name) in
            [(CountKind::Presence, "presence"), (CountKind::Occurrence, "occurrence")]
        {
            for query_text in queries {
                let body = format!(
                    r#"{{"query":{},"algorithm":"{}","count_kind":"{kind_name}"}}"#,
                    Json::str(query_text).render(),
                    algorithm.name(),
                );
                let response = post_json(addr, "/estimate", &body);
                assert_eq!(response.status, 200, "{}", response.body_text());
                let parsed = Json::parse(&response.body_text()).unwrap();
                let served =
                    parsed.get("estimates").unwrap().as_array().unwrap()[0].as_f64().unwrap();
                let expected = cst.estimate(&Twig::parse(query_text).unwrap(), algorithm, kind);
                assert_eq!(
                    served.to_bits(),
                    expected.to_bits(),
                    "{} {} {kind_name}: flat-served {served} != owned {expected}",
                    query_text,
                    algorithm.name(),
                );
            }
        }
    }

    // Repeating a query exercises the plan cache against the flat trie.
    let body = r#"{"query":"book(author(\"AAA\"),year(\"1999\"))","algorithm":"msh"}"#;
    let cold = post_json(addr, "/estimate", body);
    let warm = post_json(addr, "/estimate", body);
    assert_eq!(cold.body_text(), warm.body_text(), "plan cache must not change flat estimates");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flat_reload_is_a_map_swap_and_failsafe() {
    let dir = temp_dir("map-swap");
    let path = dir.join("main.flt");
    write_flat_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    let estimate = |addr: &str| -> f64 {
        let response = post_json(
            addr,
            "/estimate",
            r#"{"summary":"main","query":"book(author(\"AAA\"))","algorithm":"leaf"}"#,
        );
        assert_eq!(response.status, 200, "{}", response.body_text());
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap()
    };
    let before = estimate(addr);

    // Swap in a new flat container: reload mmaps the new file and
    // exchanges the Arc — the old mapping drains with in-flight requests.
    let bigger = XML.replace(
        "</dblp>",
        "<book><author>AAA</author><title>T9</title></book>\
         <book><author>AAA</author><title>T10</title></book></dblp>",
    );
    let replacement = write_flat_file(&path, &bigger);
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(true));

    let after = estimate(addr);
    assert_ne!(before.to_bits(), after.to_bits(), "reload must swap the mapping");
    let expected = replacement.estimate(
        &Twig::parse(r#"book(author("AAA"))"#).unwrap(),
        Algorithm::Leaf,
        CountKind::Occurrence,
    );
    assert_eq!(after.to_bits(), expected.to_bits());

    let body = Json::parse(&get(addr, "/summaries").body_text()).unwrap();
    let list = body.get("summaries").unwrap().as_array().unwrap();
    assert_eq!(list[0].get("generation").unwrap().as_f64(), Some(2.0));
    assert_eq!(list[0].get("format").unwrap().as_str(), Some("flat+mmap"));

    // A corrupt flat file fails the reload; the old mapping keeps
    // serving (degraded mode, stale header) exactly like the owned path.
    // Corrupt via rename — the mmap contract is that live files are
    // replaced atomically, never truncated in place (truncating a
    // mapped inode would SIGBUS readers of the old generation).
    let corrupt = dir.join("corrupt.tmp");
    std::fs::write(&corrupt, [0x41u8; 128]).unwrap();
    std::fs::rename(&corrupt, &path).unwrap();
    let response = post_json(addr, "/admin/reload", "");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(false));
    let still = estimate(addr);
    assert_eq!(still.to_bits(), after.to_bits(), "failed reload must keep the old mapping");
    let health = Json::parse(&get(addr, "/healthz").body_text()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_formats_serve_side_by_side() {
    let dir = temp_dir("mixed");
    let owned_path = dir.join("owned.cst");
    let flat_path = dir.join("flat.flt");
    let cst = build_cst(XML);
    let mut bytes = Vec::new();
    cst.write_to(&mut bytes).unwrap();
    std::fs::write(&owned_path, &bytes).unwrap();
    flat_writer::write_file(&cst, &flat_path).unwrap();

    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "owned".into(), path: owned_path }).unwrap();
    registry.load(SummarySpec { name: "flat".into(), path: flat_path }).unwrap();
    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    let body = Json::parse(&get(addr, "/summaries").body_text()).unwrap();
    let list = body.get("summaries").unwrap().as_array().unwrap();
    assert_eq!(list.len(), 2);
    for info in list {
        let expected = match info.get("name").unwrap().as_str().unwrap() {
            "owned" => "owned",
            _ => "flat+mmap",
        };
        assert_eq!(info.get("format").unwrap().as_str(), Some(expected));
    }

    // The same twig served from either summary yields the same bits:
    // both registries host the same underlying statistics.
    let estimate = |summary: &str| -> f64 {
        let body = format!(
            r#"{{"summary":"{summary}","query":"book(author(\"AAA\"),year(\"1999\"))","algorithm":"mosh"}}"#
        );
        let response = post_json(addr, "/estimate", &body);
        assert_eq!(response.status, 200, "{}", response.body_text());
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().as_array().unwrap()[0]
            .as_f64()
            .unwrap()
    };
    assert_eq!(estimate("owned").to_bits(), estimate("flat").to_bits());

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flat_snapshot_persists_and_recovers() {
    let dir = temp_dir("flat-snapshot");
    let path = dir.join("main.flt");
    let state = dir.join("state");
    let original = write_flat_file(&path, XML);

    // First boot with a store: the raw flat container is persisted as
    // generation 1 without re-packing.
    {
        let registry = SummaryRegistry::new();
        assert!(registry.attach_store(SnapshotStore::open(&state).unwrap()));
        registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
        assert_eq!(registry.snapshot_store().unwrap().committed_generation("main"), Some(1));
        // The snapshot payload is the flat container byte-for-byte.
        let framed = std::fs::read(state.join("main.gen-1.cst")).unwrap();
        let payload = twig_serve::snapshot::unframe(framed).expect("complete snapshot");
        assert_eq!(payload, std::fs::read(&path).unwrap());
    }

    // Crash: the source file is torn; recovery serves the snapshot from
    // heap bytes (no file left to map), marked stale.
    std::fs::write(&path, [0u8; 16]).unwrap();
    let registry = SummaryRegistry::new();
    assert!(registry.attach_store(SnapshotStore::open(&state).unwrap()));
    let outcome =
        registry.load_or_recover(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let LoadOutcome::Recovered { generation, error } = outcome else {
        panic!("expected recovery, got {outcome:?}");
    };
    assert_eq!(generation, 1);
    assert!(error.contains("cannot load summary 'main'"), "{error}");

    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;
    let body = Json::parse(&get(addr, "/summaries").body_text()).unwrap();
    let list = body.get("summaries").unwrap().as_array().unwrap();
    assert_eq!(list[0].get("format").unwrap().as_str(), Some("flat+heap"));

    let response = post_json(
        addr,
        "/estimate",
        r#"{"summary":"main","query":"book(author(\"AAA\"))","algorithm":"leaf"}"#,
    );
    assert_eq!(response.status, 200, "{}", response.body_text());
    assert_eq!(response.header("x-twig-stale-generation"), Some("1"));
    let served =
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().as_array().unwrap()
            [0]
        .as_f64()
        .unwrap();
    let expected = original.estimate(
        &Twig::parse(r#"book(author("AAA"))"#).unwrap(),
        Algorithm::Leaf,
        CountKind::Occurrence,
    );
    assert_eq!(served.to_bits(), expected.to_bits());

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_snapshots_surface_in_healthz_and_metrics() {
    let dir = temp_dir("quarantine");
    let path = dir.join("main.flt");
    let state = dir.join("state");
    write_flat_file(&path, XML);

    // Commit generation 1, then tear the committed snapshot file AND the
    // source: the next boot quarantines the torn snapshot and has
    // nothing left to serve for this summary — but the torn evidence
    // must be visible to operators.
    {
        let registry = SummaryRegistry::new();
        assert!(registry.attach_store(SnapshotStore::open(&state).unwrap()));
        registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    }
    let snapshot_file = state.join("main.gen-1.cst");
    let framed = std::fs::read(&snapshot_file).unwrap();
    std::fs::write(&snapshot_file, &framed[..framed.len() / 2]).unwrap();
    std::fs::write(&path, [0u8; 16]).unwrap();

    let registry = SummaryRegistry::new();
    assert!(registry.attach_store(SnapshotStore::open(&state).unwrap()));
    let outcome = registry.load_or_recover(SummarySpec { name: "main".into(), path });
    assert!(outcome.is_err(), "no good generation left: {outcome:?}");
    assert_eq!(registry.quarantined_snapshots().0, 1);

    let server = TestServer::start(ServerConfig::default(), registry);
    let addr = &server.addr;

    let health = Json::parse(&get(addr, "/healthz").body_text()).unwrap();
    assert_eq!(health.get("snapshot_quarantined").unwrap().as_f64(), Some(1.0));
    let newest = health.get("snapshot_quarantined_newest").unwrap().as_str().unwrap();
    assert!(newest.starts_with("main.gen-1.cst"), "{newest}");
    assert!(newest.ends_with(".quarantined"), "{newest}");

    let text = get(addr, "/metrics").body_text();
    assert!(text.contains("twig_serve_snapshot_quarantined_total 1\n"), "{text}");

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
}
