//! Fault-injection tests for the registry: deterministic failpoint
//! schedules force reload failures while concurrent clients hammer
//! `/estimate`, proving the server keeps serving the last good
//! generation (satellite of the chaos harness, runnable under plain
//! `cargo test -p twig-serve --features failpoints`).
//!
//! This lives in its own test binary — and so its own process — because
//! the failpoint table is process-global: a schedule configured here
//! must never bleed into the main `server.rs` suite.

#![cfg(feature = "failpoints")]

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use twig_core::{Cst, CstConfig, SpaceBudget};
use twig_serve::http::{read_response, write_request, ClientResponse, Limits};
use twig_serve::json::Json;
use twig_serve::{Server, ServerConfig, ServerHandle, SummaryRegistry, SummarySpec};
use twig_tree::DataTree;
use twig_util::failpoint;

const XML: &str = "<dblp>\
    <book><author>AAA</author><author>BBB</author><title>T1</title><year>1999</year></book>\
    <book><author>AAA</author><title>T2</title><year>2001</year></book>\
    <article><author>DDD</author><journal>J1</journal><year>2003</year></article>\
</dblp>";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "twig-serve-failpoint-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_summary_file(path: &Path, xml: &str) {
    let tree = DataTree::from_xml(xml).unwrap();
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .unwrap();
    let mut bytes = Vec::new();
    cst.write_to(&mut bytes).unwrap();
    std::fs::write(path, &bytes).unwrap();
}

fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> ClientResponse {
    let limits = Limits {
        max_head_bytes: 64 * 1024,
        max_body_bytes: 16 * 1024 * 1024,
        read_deadline: Duration::from_secs(10),
        idle_deadline: Duration::from_secs(10),
    };
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    write_request(&mut stream, method, path, body).unwrap();
    read_response(&mut stream, &limits).unwrap()
}

fn stop(handle: &ServerHandle, thread: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    thread.join().unwrap().unwrap();
}

#[test]
fn forced_reload_failures_never_disturb_serving() {
    let dir = temp_dir("reload");
    let path = dir.join("main.cst");
    write_summary_file(&path, XML);
    let registry = SummaryRegistry::new();
    registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
    let config = ServerConfig { workers: 4, queue_capacity: 64, ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", config, registry).unwrap();
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    const BODY: &str = r#"{"summary":"main","query":"book(author(\"AAA\"))","algorithm":"msh"}"#;
    let baseline = {
        let response = request(&addr, "POST", "/estimate", BODY.as_bytes());
        assert_eq!(response.status, 200, "{}", response.body_text());
        Json::parse(&response.body_text()).unwrap().get("estimates").unwrap().render()
    };

    // Clients hammer /estimate throughout the failure window; every
    // answer must match the last good summary bit for bit (the backing
    // file never changes, only reloads of it are made to fail).
    let halt = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let halt = Arc::clone(&halt);
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                while !halt.load(Ordering::Relaxed) {
                    let response = request(&addr, "POST", "/estimate", BODY.as_bytes());
                    if response.status == 503 {
                        continue;
                    }
                    assert_eq!(response.status, 200, "{}", response.body_text());
                    let token = Json::parse(&response.body_text())
                        .unwrap()
                        .get("estimates")
                        .unwrap()
                        .render();
                    assert_eq!(token, baseline, "estimate changed during forced failures");
                }
            })
        })
        .collect();

    // Every reload fails while the schedule is live; each failure flips
    // degraded mode without touching the serving generation, so the
    // stale header always names generation 1.
    failpoint::configure("registry.load=error", 0xF00D).unwrap();
    for _ in 0..8 {
        let response = request(&addr, "POST", "/admin/reload", b"");
        assert_eq!(response.status, 200);
        let parsed = Json::parse(&response.body_text()).unwrap();
        assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(false));
        let response = request(&addr, "POST", "/estimate", BODY.as_bytes());
        assert_eq!(response.status, 200, "{}", response.body_text());
        assert_eq!(response.header("x-twig-stale-generation"), Some("1"));
    }
    assert_eq!(failpoint::trigger_count("registry.load"), 8);

    // Clearing the schedule heals on the next reload.
    failpoint::clear_all();
    let response = request(&addr, "POST", "/admin/reload", b"");
    assert_eq!(response.status, 200);
    let parsed = Json::parse(&response.body_text()).unwrap();
    assert_eq!(parsed.get("all_ok").unwrap(), &Json::Bool(true));

    halt.store(true, Ordering::Relaxed);
    for client in clients {
        client.join().unwrap();
    }

    let response = request(&addr, "POST", "/estimate", BODY.as_bytes());
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-twig-stale-generation"), None);
    let health = Json::parse(&request(&addr, "GET", "/healthz", b"").body_text()).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    stop(&handle, thread);
    std::fs::remove_dir_all(&dir).ok();
}
