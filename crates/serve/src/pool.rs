//! A bounded worker thread pool with an explicit queue, admission
//! control, and graceful drain.
//!
//! The pool is generic over the job payload `T` (the server uses
//! accepted TCP connections). The two properties the serve subsystem
//! needs, and which a bare `thread::spawn`-per-connection cannot give:
//!
//! - **Backpressure, not collapse.** [`ThreadPool::try_submit`] never
//!   blocks: when the queue is full the job is handed *back* to the
//!   caller, which turns it into a cheap `503 Retry-After` instead of an
//!   unbounded latency pile-up. Saturation is a first-class, observable
//!   outcome.
//! - **Graceful drain.** [`ThreadPool::shutdown`] stops admission,
//!   wakes every worker, lets each finish its current job, runs the jobs
//!   already queued (the handler observes the shutdown flag and responds
//!   accordingly), and joins all threads before returning.
//!
//! A worker that panics mid-job is caught, counted, and replaced by the
//! same thread continuing its loop — one poisoned request cannot
//! permanently shrink the pool.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use twig_util::metrics::Counter;

/// Callback invoked (in the panicking worker's thread, after the catch)
/// each time the pool contains a panic.
type PanicObserver = Box<dyn Fn() + Send + Sync>;

struct PoolShared<T> {
    queue: Mutex<VecDeque<T>>,
    wake: Condvar,
    shutdown: AtomicBool,
    queue_capacity: usize,
    panics: Counter,
    on_panic: Mutex<Option<PanicObserver>>,
}

impl<T> PoolShared<T> {
    /// Locks the queue, recovering from poisoning: the queue holds plain
    /// data (no invariants a panicking worker could have broken
    /// mid-update), so continuing with the inner value is sound.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A fixed-size worker pool processing jobs of type `T`.
pub struct ThreadPool<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

/// Why a job was not admitted.
#[derive(Debug, PartialEq, Eq)]
pub enum Rejected<T> {
    /// The queue is at capacity; the job is returned to the caller.
    Saturated(T),
    /// The pool is shutting down; the job is returned to the caller.
    ShuttingDown(T),
}

impl<T: Send + 'static> ThreadPool<T> {
    /// Spawns `workers` threads that each run `handler` on submitted
    /// jobs. `queue_capacity` bounds jobs *waiting* for a worker (jobs
    /// being executed do not count against it). `workers` is clamped to
    /// at least 1.
    pub fn new<F>(workers: usize, queue_capacity: usize, handler: F) -> ThreadPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_capacity,
            panics: Counter::new(),
            on_panic: Mutex::new(None),
        });
        let handler = Arc::new(handler);
        let mut handles = Vec::with_capacity(workers.max(1));
        for index in 0..workers.max(1) {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            let spawned = std::thread::Builder::new()
                .name(format!("twig-serve-worker-{index}"))
                .spawn(move || worker_loop(&shared, handler.as_ref()));
            if let Ok(handle) = spawned {
                handles.push(handle);
            }
        }
        ThreadPool { shared, workers: handles }
    }

    /// Admits `job` if a queue slot is free. Never blocks.
    pub fn try_submit(&self, job: T) -> Result<(), Rejected<T>> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(Rejected::ShuttingDown(job));
        }
        let mut queue = self.shared.lock_queue();
        if queue.len() >= self.shared.queue_capacity {
            return Err(Rejected::Saturated(job));
        }
        queue.push_back(job);
        drop(queue);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Registers a callback invoked every time a worker catches a
    /// panic, in addition to the internal counter. The server uses this
    /// to keep `twig_serve_worker_panics_total` live instead of only
    /// reconciling it at shutdown.
    pub fn observe_panics(&self, callback: impl Fn() + Send + Sync + 'static) {
        let mut slot =
            Mutex::lock(&self.shared.on_panic).unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Some(Box::new(callback));
    }

    /// Jobs currently waiting for a worker.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.shared.lock_queue().len()
    }

    /// Worker panics caught so far.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.shared.panics.get()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stops admission, drains the queue (workers run every job already
    /// admitted), and joins all workers. Returns the number of caught
    /// worker panics over the pool's lifetime.
    pub fn shutdown(self) -> u64 {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for handle in self.workers {
            // A worker that panicked outside the catch (impossible today)
            // surfaces here as Err; there is nothing left to clean up.
            let _ = handle.join();
        }
        self.shared.panics.get()
    }
}

fn worker_loop<T, F>(shared: &PoolShared<T>, handler: &F)
where
    F: Fn(T),
{
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .wake
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        match job {
            None => return,
            Some(job) => {
                let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    // Injected dispatch fault: abandon the job before
                    // the handler sees it (the peer observes a closed
                    // socket). An injected `panic` action fires inside
                    // this catch, so containment below is exercised
                    // and the worker survives.
                    if twig_util::failpoint!("pool.dispatch").is_some() {
                        drop(job);
                        return;
                    }
                    handler(job);
                }));
                if caught.is_err() {
                    shared.panics.inc();
                    let observer = Mutex::lock(&shared.on_panic)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if let Some(notify) = observer.as_ref() {
                        notify();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_concurrently_and_drains_on_shutdown() {
        let done = Arc::new(AtomicU64::new(0));
        let pool = {
            let done = Arc::clone(&done);
            ThreadPool::new(4, 64, move |sleep_ms: u64| {
                std::thread::sleep(Duration::from_millis(sleep_ms));
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        for _ in 0..16 {
            pool.try_submit(5).unwrap();
        }
        // Shutdown drains everything already admitted.
        assert_eq!(pool.shutdown(), 0);
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn saturation_returns_the_job_to_the_caller() {
        // One worker blocked on a channel; capacity-1 queue.
        let (release, gate) = mpsc::channel::<()>();
        let gate = Mutex::new(gate);
        let pool = ThreadPool::new(1, 1, move |_job: u32| {
            let _ = gate.lock().unwrap().recv();
        });
        pool.try_submit(1).unwrap(); // picked up by the worker
                                     // Wait for the worker to take job 1 off the queue.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while pool.queue_len() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.try_submit(2).unwrap(); // sits in the queue
        match pool.try_submit(3) {
            Err(Rejected::Saturated(job)) => assert_eq!(job, 3),
            other => panic!("expected saturation, got {other:?}"),
        }
        release.send(()).unwrap();
        release.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn worker_panic_is_caught_and_pool_survives() {
        let done = Arc::new(AtomicU64::new(0));
        let pool = {
            let done = Arc::clone(&done);
            ThreadPool::new(1, 8, move |job: u32| {
                if job == 13 {
                    panic!("unlucky");
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.try_submit(13).unwrap();
        pool.try_submit(1).unwrap();
        pool.try_submit(2).unwrap();
        assert_eq!(pool.shutdown(), 1);
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn submit_after_shutdown_flag_is_rejected() {
        let pool: ThreadPool<u32> = ThreadPool::new(1, 4, |_| {});
        pool.shared.shutdown.store(true, Ordering::SeqCst);
        assert!(matches!(pool.try_submit(1), Err(Rejected::ShuttingDown(1))));
        pool.shutdown();
    }
}
