//! The summary registry: named, hot-swappable CST summaries.
//!
//! The registry owns every summary the server can answer queries from,
//! keyed by name. Readers (`/estimate` handlers) clone an `Arc<Cst>` out
//! under a read lock and then estimate entirely lock-free; the write
//! lock is only taken for the brief pointer swap during a reload.
//! Reloads are **fail-safe**: a summary whose file became unreadable or
//! corrupt keeps serving its previous in-memory version, and the error
//! is reported to the caller — an operator fat-fingering a file must
//! never take a serving summary down.
//!
//! With a [`SnapshotStore`] attached the registry also becomes
//! **crash-safe**: every successful (re)load is persisted as a
//! checksummed snapshot generation, and [`load_or_recover`] can bring a
//! summary back from the last good committed generation when its spec
//! file is gone or corrupt at startup. An entry serving anything other
//! than its freshly loaded spec file is *stale* (degraded mode): the
//! flag is surfaced per summary in `/healthz`, as the
//! `twig_serve_degraded` gauge, and as the `X-Twig-Stale-Generation`
//! response header on estimates.
//!
//! Summaries come in two formats, decided per file by magic sniff:
//! owned `TWIGCST` files are deserialized onto the heap, flat
//! `TWIGFLT1` files are memory-mapped and served zero-copy. A reload of
//! a flat summary is therefore a *map-swap*: the write lock covers only
//! the `Arc` pointer exchange, and the old generation's mapping is
//! unmapped when the last in-flight request drops its `Arc` clone.
//! Snapshot payloads are the raw container bytes of either format;
//! recovery re-sniffs, so a store can hold generations of both.
//!
//! [`load_or_recover`]: SummaryRegistry::load_or_recover

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, RwLock};

use twig_core::ReadError;
use twig_flat::{AnySummary, FlatCst, LoadError as SummaryLoadError};
use twig_util::metrics::Counter;

use crate::snapshot::SnapshotStore;

/// Where a summary comes from: a registry name plus the file backing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarySpec {
    /// Registry key, e.g. `default`.
    pub name: String,
    /// Path to the `Cst::write_to` file.
    pub path: PathBuf,
}

impl SummarySpec {
    /// Parses a CLI-style spec: `name=path`, or a bare path whose file
    /// stem becomes the name.
    pub fn parse(text: &str) -> Result<SummarySpec, String> {
        let (name, path) = match text.split_once('=') {
            Some((name, path)) => {
                if name.is_empty() || path.is_empty() {
                    return Err(format!("invalid summary spec '{text}' (want name=path)"));
                }
                (name.to_owned(), PathBuf::from(path))
            }
            None => {
                let path = PathBuf::from(text);
                let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned()) else {
                    return Err(format!("cannot derive a summary name from '{text}'"));
                };
                (stem, path)
            }
        };
        Ok(SummarySpec { name, path })
    }
}

/// A failure to load one summary. Chains to the underlying
/// format-specific failure (and through it to `io::Error` / `CstError`
/// / `FlatError`) via [`source`](std::error::Error::source), so callers
/// can render the full cause chain in one error envelope.
#[derive(Debug)]
pub struct LoadError {
    /// The registry name being (re)loaded.
    pub name: String,
    /// The file that failed.
    pub path: PathBuf,
    /// The underlying read failure (owned or flat format).
    pub source: SummaryLoadError,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot load summary '{}' from {}", self.name, self.path.display())
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Renders `err` and its full `source()` chain as one line, outermost
/// first: `cannot load summary 'x' from p: I/O error: …`. This is the
/// uniform error envelope text for load failures.
#[must_use]
pub fn error_chain(err: &dyn std::error::Error) -> String {
    let mut text = err.to_string();
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        let rendered = cause.to_string();
        // Skip a cause whose Display the parent already inlined.
        if !text.ends_with(&rendered) {
            text.push_str(": ");
            text.push_str(&rendered);
        }
        cursor = cause.source();
    }
    text
}

struct Entry {
    spec: SummarySpec,
    cst: Arc<AnySummary>,
    /// Bumped on every successful (re)load; lets clients observe swaps.
    generation: u64,
    /// Size of the file the current summary was loaded from.
    file_bytes: usize,
    /// Degraded mode: the served summary is *not* a fresh read of the
    /// spec file — the last reload failed, or the entry was recovered
    /// from a snapshot. Cleared by the next successful (re)load.
    stale: bool,
    /// Rendered cause chain of the failure that made the entry stale.
    last_error: Option<String>,
}

/// Descriptive snapshot of one registry entry (for `/summaries`).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryInfo {
    /// Registry key.
    pub name: String,
    /// Backing file.
    pub path: PathBuf,
    /// Reload generation (1 = initial load).
    pub generation: u64,
    /// Size of the backing file at load time.
    pub file_bytes: usize,
    /// Trie nodes in the summary.
    pub nodes: usize,
    /// Data elements summarized (`n`).
    pub n: u64,
    /// Prune threshold.
    pub threshold: u32,
    /// Min-hash signature length.
    pub signature_len: usize,
    /// Storage format serving this entry: `owned`, `flat+mmap`, or
    /// `flat+heap`.
    pub format: &'static str,
    /// Degraded mode: serving a stale generation (failed reload or
    /// snapshot recovery).
    pub stale: bool,
    /// The failure that made the entry stale, as a rendered cause chain.
    pub last_error: Option<String>,
}

/// How [`SummaryRegistry::load_or_recover`] satisfied a load request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The spec file loaded cleanly; the entry serves it at this
    /// generation.
    Fresh(u64),
    /// The spec file failed but a committed snapshot stood in; the
    /// entry serves the snapshot, marked stale.
    Recovered {
        /// Generation of the recovered snapshot (the entry adopts it).
        generation: u64,
        /// Rendered cause chain of the spec-file failure.
        error: String,
    },
}

/// Named summaries behind a reader-writer lock.
#[derive(Default)]
pub struct SummaryRegistry {
    entries: RwLock<Vec<Entry>>,
    /// Optional crash-safe snapshot store (set once at startup).
    store: OnceLock<SnapshotStore>,
    /// Failed snapshot persists (serving was unaffected).
    snapshot_failures: Counter,
}

impl SummaryRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> SummaryRegistry {
        SummaryRegistry::default()
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, Vec<Entry>> {
        // Entries are swapped whole under the write lock; a panicking
        // writer cannot leave them half-updated, so poison recovery is
        // sound.
        self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Entry>> {
        self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attaches the crash-safe snapshot store. Returns `false` (and
    /// leaves the original) if a store was already attached.
    pub fn attach_store(&self, store: SnapshotStore) -> bool {
        self.store.set(store).is_ok()
    }

    /// The attached snapshot store, if any.
    #[must_use]
    pub fn snapshot_store(&self) -> Option<&SnapshotStore> {
        OnceLock::get(&self.store)
    }

    /// Failed snapshot persists since startup (serving was unaffected;
    /// exported as `twig_serve_snapshot_failures_total`).
    #[must_use]
    pub fn snapshot_failure_count(&self) -> u64 {
        Counter::get(&self.snapshot_failures)
    }

    /// Installs a loaded summary, returning its new generation. The
    /// write lock covers only this pointer swap — for a mapped flat
    /// summary a reload is a *map-swap*, and the displaced generation's
    /// mapping is released when the last reader drops its `Arc`.
    /// `generation` pins an explicit generation (snapshot recovery);
    /// otherwise the entry's previous generation + 1 is used.
    fn install(
        &self,
        spec: SummarySpec,
        cst: Arc<AnySummary>,
        file_bytes: usize,
        generation: Option<u64>,
        stale: bool,
        last_error: Option<String>,
    ) -> u64 {
        let mut entries = self.write_entries();
        match entries.iter().position(|e| e.spec.name == spec.name) {
            Some(at) => {
                let generation =
                    generation.unwrap_or_else(|| entries[at].generation.saturating_add(1));
                entries[at] = Entry { spec, cst, generation, file_bytes, stale, last_error };
                generation
            }
            None => {
                let generation = generation.unwrap_or(1);
                entries.push(Entry { spec, cst, generation, file_bytes, stale, last_error });
                generation
            }
        }
    }

    /// Persists `bytes` as a snapshot generation, best-effort: a store
    /// failure must never fail the (re)load that produced the summary,
    /// so it only bumps [`snapshot_failure_count`] here.
    ///
    /// [`snapshot_failure_count`]: SummaryRegistry::snapshot_failure_count
    fn persist_snapshot(&self, name: &str, generation: u64, bytes: &[u8]) {
        let Some(store) = self.store.get() else {
            return;
        };
        if store.persist(name, generation, bytes).is_err() {
            self.snapshot_failures.inc();
        }
    }

    /// Loads `spec` from disk and inserts it (replacing any entry with
    /// the same name). The registry is untouched on failure.
    pub fn load(&self, spec: SummarySpec) -> Result<(), LoadError> {
        let loaded = load_any(&spec)?;
        let name = spec.name.clone();
        let file_bytes = loaded.file_bytes();
        let (summary, owned_bytes) = loaded.into_parts();
        let generation = self.install(spec, Arc::clone(&summary), file_bytes, None, false, None);
        if let Some(payload) = snapshot_payload(&summary, owned_bytes.as_deref()) {
            self.persist_snapshot(&name, generation, payload);
        }
        Ok(())
    }

    /// Like [`load`](SummaryRegistry::load), but when the spec file
    /// fails and the attached snapshot store holds a committed
    /// generation, serves that snapshot instead — marked stale, with
    /// the spec-file failure recorded. This is the startup-recovery
    /// path: a torn summary file degrades service instead of refusing
    /// to boot.
    pub fn load_or_recover(&self, spec: SummarySpec) -> Result<LoadOutcome, LoadError> {
        let spec_failure = match load_any(&spec) {
            Ok(loaded) => {
                let name = spec.name.clone();
                let file_bytes = loaded.file_bytes();
                let (summary, owned_bytes) = loaded.into_parts();
                let generation =
                    self.install(spec, Arc::clone(&summary), file_bytes, None, false, None);
                if let Some(payload) = snapshot_payload(&summary, owned_bytes.as_deref()) {
                    self.persist_snapshot(&name, generation, payload);
                }
                return Ok(LoadOutcome::Fresh(generation));
            }
            Err(err) => err,
        };
        let Some(store) = self.store.get() else {
            return Err(spec_failure);
        };
        let Ok(Some(recovered)) = store.recover(&spec.name) else {
            return Err(spec_failure);
        };
        let file_bytes = recovered.payload.len();
        // The payload is a container of either format; re-sniff it.
        let Ok(summary) = AnySummary::from_bytes(recovered.payload) else {
            // The snapshot verified its checksum but does not parse —
            // should be impossible; fall back to the spec failure.
            return Err(spec_failure);
        };
        let error = error_chain(&spec_failure);
        let generation = self.install(
            spec,
            Arc::new(summary),
            file_bytes,
            Some(recovered.generation),
            true,
            Some(error.clone()),
        );
        Ok(LoadOutcome::Recovered { generation, error })
    }

    /// The summary registered under `name`, if any. The returned `Arc`
    /// keeps serving the version current at lookup time even if a reload
    /// swaps the entry mid-request — estimates within one request are
    /// always computed against one consistent summary.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<AnySummary>> {
        self.read_entries().iter().find(|e| e.spec.name == name).map(|e| Arc::clone(&e.cst))
    }

    /// Like [`get`](SummaryRegistry::get), but also returns the entry's
    /// reload generation — the component of the plan-cache key that
    /// makes cached plans self-invalidating across reloads — and its
    /// staleness (degraded mode) for the response header.
    pub(crate) fn get_for_serving(&self, name: &str) -> Option<(Arc<AnySummary>, u64, bool)> {
        self.read_entries()
            .iter()
            .find(|e| e.spec.name == name)
            .map(|e| (Arc::clone(&e.cst), e.generation, e.stale))
    }

    /// Number of entries currently serving a stale generation (the
    /// `twig_serve_degraded` gauge).
    #[must_use]
    pub fn degraded(&self) -> u64 {
        let mut count = 0u64;
        for entry in &*self.read_entries() {
            if entry.stale {
                count += 1;
            }
        }
        count
    }

    /// Registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.read_entries().iter().map(|e| e.spec.name.clone()).collect()
    }

    /// Descriptive snapshots of every entry.
    #[must_use]
    pub fn infos(&self) -> Vec<SummaryInfo> {
        self.read_entries()
            .iter()
            .map(|e| SummaryInfo {
                name: e.spec.name.clone(),
                path: e.spec.path.clone(),
                generation: e.generation,
                file_bytes: e.file_bytes,
                nodes: e.cst.node_count(),
                n: e.cst.n(),
                threshold: e.cst.threshold(),
                signature_len: e.cst.signature_len(),
                format: e.cst.format_name(),
                stale: e.stale,
                last_error: e.last_error.clone(),
            })
            .collect()
    }

    /// Number of registered summaries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read_entries().is_empty()
    }

    /// Re-reads every entry's backing file. Files are read and parsed
    /// *outside* the lock (a slow disk cannot stall readers); each entry
    /// is then swapped in under the write lock only on success. Failed
    /// entries keep serving their previous summary. Returns per-name
    /// results with the new generation on success.
    pub fn reload_all(&self) -> Vec<(String, Result<u64, LoadError>)> {
        let specs: Vec<SummarySpec> = self.read_entries().iter().map(|e| e.spec.clone()).collect();
        let mut results = Vec::with_capacity(specs.len());
        for spec in specs {
            let name = spec.name.clone();
            match load_any(&spec) {
                Err(err) => {
                    // Degraded mode: keep serving the old generation and
                    // record why it is now stale.
                    let chain = error_chain(&err);
                    let mut entries = self.write_entries();
                    for entry in &mut *entries {
                        if entry.spec.name == name {
                            entry.stale = true;
                            entry.last_error = Some(chain.clone());
                        }
                    }
                    drop(entries);
                    results.push((name, Err(err)));
                }
                Ok(loaded) => {
                    let file_bytes = loaded.file_bytes();
                    let (summary, owned_bytes) = loaded.into_parts();
                    let generation =
                        self.install(spec, Arc::clone(&summary), file_bytes, None, false, None);
                    if let Some(payload) = snapshot_payload(&summary, owned_bytes.as_deref()) {
                        self.persist_snapshot(&name, generation, payload);
                    }
                    results.push((name, Ok(generation)));
                }
            }
        }
        results
    }

    /// Quarantined snapshot files currently sitting in the attached
    /// store: `(count, newest file name)`. `(0, None)` without a store.
    /// Surfaced in `/healthz` and as
    /// `twig_serve_snapshot_quarantined_total`.
    #[must_use]
    pub fn quarantined_snapshots(&self) -> (u64, Option<String>) {
        self.store.get().map_or((0, None), SnapshotStore::quarantined)
    }
}

/// One freshly loaded summary plus (for the owned format) the raw file
/// bytes that double as the snapshot payload. A mapped flat summary
/// carries no heap copy — its mapping *is* the payload.
struct LoadedSummary {
    summary: Arc<AnySummary>,
    owned_bytes: Option<Vec<u8>>,
}

impl LoadedSummary {
    fn file_bytes(&self) -> usize {
        match (&*self.summary, &self.owned_bytes) {
            (_, Some(bytes)) => bytes.len(),
            (AnySummary::Flat(flat), None) => flat.file_len(),
            (AnySummary::Owned(cst), None) => cst.size_bytes(),
        }
    }

    fn into_parts(self) -> (Arc<AnySummary>, Option<Vec<u8>>) {
        (self.summary, self.owned_bytes)
    }
}

/// The snapshot payload for a loaded summary: the owned file bytes when
/// the loader kept them, otherwise the flat container's own byte range.
fn snapshot_payload<'a>(
    summary: &'a AnySummary,
    owned_bytes: Option<&'a [u8]>,
) -> Option<&'a [u8]> {
    owned_bytes.or_else(|| summary.flat_bytes())
}

/// Reads and parses a spec file of either format, decided by magic
/// sniff: flat `TWIGFLT1` files are memory-mapped (zero-copy), owned
/// `TWIGCST` files are read whole and deserialized.
///
/// Failpoint `registry.load`: `error` injects an I/O failure; `partial(p)`
/// hands the parser only the first `p` percent of the file — a torn read.
fn load_any(spec: &SummarySpec) -> Result<LoadedSummary, LoadError> {
    let wrap = |source: SummaryLoadError| LoadError {
        name: spec.name.clone(),
        path: spec.path.clone(),
        source,
    };
    let wrap_io = |e: std::io::Error| SummaryLoadError::Owned(ReadError::Io(e));
    if let Some(fault) = twig_util::failpoint!("registry.load") {
        let mut bytes = std::fs::read(&spec.path).map_err(|e| wrap(wrap_io(e)))?;
        match fault {
            twig_util::failpoint::Fault::Error => {
                return Err(wrap(wrap_io(std::io::Error::other(
                    "injected fault at registry.load",
                ))));
            }
            twig_util::failpoint::Fault::Errno(code) => {
                return Err(wrap(wrap_io(std::io::Error::from_raw_os_error(code))));
            }
            twig_util::failpoint::Fault::Partial(keep_percent) => {
                // Env-sourced percentage: checked scale, same as the
                // `serialize.read` failpoint.
                let keep = bytes
                    .len()
                    .checked_mul(usize::try_from(keep_percent.min(100)).unwrap_or(100))
                    .map_or(bytes.len(), |scaled| scaled / 100);
                bytes.truncate(keep);
            }
        }
        let owned_bytes = Some(bytes.clone());
        let summary = AnySummary::from_bytes(bytes).map_err(wrap)?;
        return Ok(LoadedSummary { summary: Arc::new(summary), owned_bytes });
    }
    if sniff_flat(&spec.path) {
        let flat = FlatCst::open(&spec.path).map_err(|e| wrap(SummaryLoadError::Flat(e)))?;
        return Ok(LoadedSummary { summary: Arc::new(AnySummary::Flat(flat)), owned_bytes: None });
    }
    let bytes = std::fs::read(&spec.path).map_err(|e| wrap(wrap_io(e)))?;
    let summary = AnySummary::from_bytes(bytes.clone()).map_err(wrap)?;
    Ok(LoadedSummary { summary: Arc::new(summary), owned_bytes: Some(bytes) })
}

/// True when `path` starts with the flat-summary magic. Read failures
/// answer `false` so the owned loader reports them with full context.
fn sniff_flat(path: &Path) -> bool {
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut file| file.read_exact(&mut magic))
        .is_ok_and(|()| &magic == twig_flat::format::MAGIC)
}

/// Loads a summary directly from `path` (CLI convenience, bypassing the
/// registry). Sniffs the format like the registry does.
pub fn load_summary_file(path: &Path) -> Result<AnySummary, SummaryLoadError> {
    AnySummary::load_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_core::{Cst, CstConfig, SpaceBudget};
    use twig_tree::DataTree;

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "twig-registry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_summary(path: &Path, xml: &str) -> Cst {
        let tree = DataTree::from_xml(xml).unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .unwrap();
        let mut bytes = Vec::new();
        cst.write_to(&mut bytes).unwrap();
        std::fs::write(path, &bytes).unwrap();
        cst
    }

    #[test]
    fn spec_parsing() {
        let spec = SummarySpec::parse("main=/tmp/a.cst").unwrap();
        assert_eq!(spec.name, "main");
        assert_eq!(spec.path, PathBuf::from("/tmp/a.cst"));
        let spec = SummarySpec::parse("/tmp/dblp.cst").unwrap();
        assert_eq!(spec.name, "dblp");
        assert!(SummarySpec::parse("=x").is_err());
        assert!(SummarySpec::parse("x=").is_err());
    }

    #[test]
    fn load_get_reload_and_failsafe() {
        let dir = temp_dir();
        let path = dir.join("main.cst");
        let original = write_summary(&path, "<r><a><b>x</b></a></r>");
        let registry = SummaryRegistry::new();
        registry.load(SummarySpec { name: "main".into(), path: path.clone() }).unwrap();
        assert_eq!(registry.names(), ["main"]);
        let served = registry.get("main").unwrap();
        assert_eq!(served.node_count(), original.node_count());
        assert!(registry.get("other").is_none());
        assert_eq!(registry.infos()[0].generation, 1);

        // Swap the file for a different tree; reload picks it up.
        let replacement = write_summary(&path, "<r><a><b>x</b></a><c><d>y</d><d>z</d></c></r>");
        let results = registry.reload_all();
        assert!(matches!(results[0], (_, Ok(2))));
        assert_eq!(registry.get("main").unwrap().node_count(), replacement.node_count());

        // Corrupt the file: reload fails, old summary keeps serving.
        std::fs::write(&path, [0x67u8; 64]).unwrap();
        let results = registry.reload_all();
        let (_, Err(err)) = &results[0] else { panic!("expected failure") };
        let chain = error_chain(err);
        assert!(chain.contains("cannot load summary 'main'"), "{chain}");
        assert!(chain.contains("bad magic"), "{chain}");
        assert_eq!(registry.get("main").unwrap().node_count(), replacement.node_count());
        assert_eq!(registry.infos()[0].generation, 2, "failed reload must not bump");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_chain_includes_io_cause() {
        let registry = SummaryRegistry::new();
        let err = registry
            .load(SummarySpec { name: "x".into(), path: "/nonexistent/x.cst".into() })
            .unwrap_err();
        let chain = error_chain(&err);
        assert!(chain.contains("cannot load summary 'x'"), "{chain}");
        assert!(chain.contains("I/O error"), "{chain}");
        // The io::Error itself is the chain root.
        use std::error::Error as _;
        assert!(err.source().unwrap().source().is_some(), "ReadError::Io chains to io::Error");
    }
}
