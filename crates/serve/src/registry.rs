//! The summary registry: named, hot-swappable CST summaries.
//!
//! The registry owns every summary the server can answer queries from,
//! keyed by name. Readers (`/estimate` handlers) clone an `Arc<Cst>` out
//! under a read lock and then estimate entirely lock-free; the write
//! lock is only taken for the brief pointer swap during a reload.
//! Reloads are **fail-safe**: a summary whose file became unreadable or
//! corrupt keeps serving its previous in-memory version, and the error
//! is reported to the caller — an operator fat-fingering a file must
//! never take a serving summary down.

use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use twig_core::{Cst, ReadError};

/// Where a summary comes from: a registry name plus the file backing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarySpec {
    /// Registry key, e.g. `default`.
    pub name: String,
    /// Path to the `Cst::write_to` file.
    pub path: PathBuf,
}

impl SummarySpec {
    /// Parses a CLI-style spec: `name=path`, or a bare path whose file
    /// stem becomes the name.
    pub fn parse(text: &str) -> Result<SummarySpec, String> {
        let (name, path) = match text.split_once('=') {
            Some((name, path)) => {
                if name.is_empty() || path.is_empty() {
                    return Err(format!("invalid summary spec '{text}' (want name=path)"));
                }
                (name.to_owned(), PathBuf::from(path))
            }
            None => {
                let path = PathBuf::from(text);
                let Some(stem) = path.file_stem().map(|s| s.to_string_lossy().into_owned())
                else {
                    return Err(format!("cannot derive a summary name from '{text}'"));
                };
                (stem, path)
            }
        };
        Ok(SummarySpec { name, path })
    }
}

/// A failure to load one summary. Chains to the underlying
/// [`ReadError`] (and through it to `io::Error` / `CstError`) via
/// [`source`](std::error::Error::source), so callers can render the full
/// cause chain in one error envelope.
#[derive(Debug)]
pub struct LoadError {
    /// The registry name being (re)loaded.
    pub name: String,
    /// The file that failed.
    pub path: PathBuf,
    /// The underlying read failure.
    pub source: ReadError,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot load summary '{}' from {}", self.name, self.path.display())
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Renders `err` and its full `source()` chain as one line, outermost
/// first: `cannot load summary 'x' from p: I/O error: …`. This is the
/// uniform error envelope text for load failures.
#[must_use]
pub fn error_chain(err: &dyn std::error::Error) -> String {
    let mut text = err.to_string();
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        let rendered = cause.to_string();
        // Skip a cause whose Display the parent already inlined.
        if !text.ends_with(&rendered) {
            text.push_str(": ");
            text.push_str(&rendered);
        }
        cursor = cause.source();
    }
    text
}

struct Entry {
    spec: SummarySpec,
    cst: Arc<Cst>,
    /// Bumped on every successful (re)load; lets clients observe swaps.
    generation: u64,
    /// Size of the file the current summary was loaded from.
    file_bytes: usize,
}

/// Descriptive snapshot of one registry entry (for `/summaries`).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryInfo {
    /// Registry key.
    pub name: String,
    /// Backing file.
    pub path: PathBuf,
    /// Reload generation (1 = initial load).
    pub generation: u64,
    /// Size of the backing file at load time.
    pub file_bytes: usize,
    /// Trie nodes in the summary.
    pub nodes: usize,
    /// Data elements summarized (`n`).
    pub n: u64,
    /// Prune threshold.
    pub threshold: u32,
    /// Min-hash signature length.
    pub signature_len: usize,
}

/// Named summaries behind a reader-writer lock.
#[derive(Default)]
pub struct SummaryRegistry {
    entries: RwLock<Vec<Entry>>,
}

impl SummaryRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> SummaryRegistry {
        SummaryRegistry::default()
    }

    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, Vec<Entry>> {
        // Entries are swapped whole under the write lock; a panicking
        // writer cannot leave them half-updated, so poison recovery is
        // sound.
        self.entries.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_entries(&self) -> std::sync::RwLockWriteGuard<'_, Vec<Entry>> {
        self.entries.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Loads `spec` from disk and inserts it (replacing any entry with
    /// the same name). The registry is untouched on failure.
    pub fn load(&self, spec: SummarySpec) -> Result<(), LoadError> {
        let (cst, file_bytes) = load_cst(&spec)?;
        let mut entries = self.write_entries();
        match entries.iter().position(|e| e.spec.name == spec.name) {
            Some(at) => {
                let generation = entries[at].generation + 1;
                entries[at] = Entry { spec, cst: Arc::new(cst), generation, file_bytes };
            }
            None => {
                entries.push(Entry { spec, cst: Arc::new(cst), generation: 1, file_bytes });
            }
        }
        Ok(())
    }

    /// The summary registered under `name`, if any. The returned `Arc`
    /// keeps serving the version current at lookup time even if a reload
    /// swaps the entry mid-request — estimates within one request are
    /// always computed against one consistent summary.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Cst>> {
        self.read_entries()
            .iter()
            .find(|e| e.spec.name == name)
            .map(|e| Arc::clone(&e.cst))
    }

    /// Like [`get`](SummaryRegistry::get), but also returns the entry's
    /// reload generation — the component of the plan-cache key that
    /// makes cached plans self-invalidating across reloads.
    pub(crate) fn get_with_generation(&self, name: &str) -> Option<(Arc<Cst>, u64)> {
        self.read_entries()
            .iter()
            .find(|e| e.spec.name == name)
            .map(|e| (Arc::clone(&e.cst), e.generation))
    }

    /// Registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.read_entries().iter().map(|e| e.spec.name.clone()).collect()
    }

    /// Descriptive snapshots of every entry.
    #[must_use]
    pub fn infos(&self) -> Vec<SummaryInfo> {
        self.read_entries()
            .iter()
            .map(|e| SummaryInfo {
                name: e.spec.name.clone(),
                path: e.spec.path.clone(),
                generation: e.generation,
                file_bytes: e.file_bytes,
                nodes: e.cst.node_count(),
                n: e.cst.n(),
                threshold: e.cst.threshold(),
                signature_len: e.cst.signature_len(),
            })
            .collect()
    }

    /// Number of registered summaries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.read_entries().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read_entries().is_empty()
    }

    /// Re-reads every entry's backing file. Files are read and parsed
    /// *outside* the lock (a slow disk cannot stall readers); each entry
    /// is then swapped in under the write lock only on success. Failed
    /// entries keep serving their previous summary. Returns per-name
    /// results with the new generation on success.
    pub fn reload_all(&self) -> Vec<(String, Result<u64, LoadError>)> {
        let specs: Vec<SummarySpec> =
            self.read_entries().iter().map(|e| e.spec.clone()).collect();
        let mut results = Vec::with_capacity(specs.len());
        for spec in specs {
            let name = spec.name.clone();
            match load_cst(&spec) {
                Err(err) => results.push((name, Err(err))),
                Ok((cst, file_bytes)) => {
                    let mut entries = self.write_entries();
                    match entries.iter().position(|e| e.spec.name == spec.name) {
                        Some(at) => {
                            let generation = entries[at].generation + 1;
                            entries[at] =
                                Entry { spec, cst: Arc::new(cst), generation, file_bytes };
                            results.push((name, Ok(generation)));
                        }
                        // Entry vanished mid-reload (concurrent admin
                        // action); treat as a fresh insert.
                        None => {
                            entries.push(Entry {
                                spec,
                                cst: Arc::new(cst),
                                generation: 1,
                                file_bytes,
                            });
                            results.push((name, Ok(1)));
                        }
                    }
                }
            }
        }
        results
    }
}

fn load_cst(spec: &SummarySpec) -> Result<(Cst, usize), LoadError> {
    let wrap = |source: ReadError| LoadError {
        name: spec.name.clone(),
        path: spec.path.clone(),
        source,
    };
    let bytes = std::fs::read(&spec.path).map_err(|e| wrap(ReadError::Io(e)))?;
    let cst = Cst::from_bytes(&bytes).map_err(wrap)?;
    Ok((cst, bytes.len()))
}

/// Loads a summary directly from `path` (CLI convenience, bypassing the
/// registry).
pub fn load_summary_file(path: &Path) -> Result<Cst, ReadError> {
    Cst::load_file(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_core::{CstConfig, SpaceBudget};
    use twig_tree::DataTree;

    fn temp_dir() -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("twig-registry-test-{}-{:?}", std::process::id(), std::thread::current().id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_summary(path: &Path, xml: &str) -> Cst {
        let tree = DataTree::from_xml(xml).unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .unwrap();
        let mut bytes = Vec::new();
        cst.write_to(&mut bytes).unwrap();
        std::fs::write(path, &bytes).unwrap();
        cst
    }

    #[test]
    fn spec_parsing() {
        let spec = SummarySpec::parse("main=/tmp/a.cst").unwrap();
        assert_eq!(spec.name, "main");
        assert_eq!(spec.path, PathBuf::from("/tmp/a.cst"));
        let spec = SummarySpec::parse("/tmp/dblp.cst").unwrap();
        assert_eq!(spec.name, "dblp");
        assert!(SummarySpec::parse("=x").is_err());
        assert!(SummarySpec::parse("x=").is_err());
    }

    #[test]
    fn load_get_reload_and_failsafe() {
        let dir = temp_dir();
        let path = dir.join("main.cst");
        let original = write_summary(&path, "<r><a><b>x</b></a></r>");
        let registry = SummaryRegistry::new();
        registry
            .load(SummarySpec { name: "main".into(), path: path.clone() })
            .unwrap();
        assert_eq!(registry.names(), ["main"]);
        let served = registry.get("main").unwrap();
        assert_eq!(served.node_count(), original.node_count());
        assert!(registry.get("other").is_none());
        assert_eq!(registry.infos()[0].generation, 1);

        // Swap the file for a different tree; reload picks it up.
        let replacement =
            write_summary(&path, "<r><a><b>x</b></a><c><d>y</d><d>z</d></c></r>");
        let results = registry.reload_all();
        assert!(matches!(results[0], (_, Ok(2))));
        assert_eq!(registry.get("main").unwrap().node_count(), replacement.node_count());

        // Corrupt the file: reload fails, old summary keeps serving.
        std::fs::write(&path, [0x67u8; 64]).unwrap();
        let results = registry.reload_all();
        let (_, Err(err)) = &results[0] else { panic!("expected failure") };
        let chain = error_chain(err);
        assert!(chain.contains("cannot load summary 'main'"), "{chain}");
        assert!(chain.contains("bad magic"), "{chain}");
        assert_eq!(registry.get("main").unwrap().node_count(), replacement.node_count());
        assert_eq!(registry.infos()[0].generation, 2, "failed reload must not bump");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_chain_includes_io_cause() {
        let registry = SummaryRegistry::new();
        let err = registry
            .load(SummarySpec { name: "x".into(), path: "/nonexistent/x.cst".into() })
            .unwrap_err();
        let chain = error_chain(&err);
        assert!(chain.contains("cannot load summary 'x'"), "{chain}");
        assert!(chain.contains("I/O error"), "{chain}");
        // The io::Error itself is the chain root.
        use std::error::Error as _;
        assert!(err.source().unwrap().source().is_some(), "ReadError::Io chains to io::Error");
    }
}
