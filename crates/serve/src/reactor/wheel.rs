//! A hashed timer wheel with lazy deletion, replacing per-socket read
//! timeouts in the reactor.
//!
//! The blocking server paid for deadlines with one 50 ms poll tick per
//! worker per wait; the reactor instead keeps every connection's next
//! deadline in a coarse wheel and sleeps in `epoll_wait` until the
//! earliest occupied slot. Entries are *hints*, not truth: a connection
//! reschedules its deadline every time it makes progress, but stale
//! wheel entries are never removed — when a slot comes due the reactor
//! re-validates each candidate against the connection's authoritative
//! deadline (and generation) and simply reschedules survivors. That
//! makes `schedule` O(1) with no cancel bookkeeping, at the cost of the
//! occasional spurious wakeup — the right trade for deadlines that are
//! seconds coarse and connections that are mostly short-lived.
//!
//! Deadlines beyond the wheel horizon are clamped to the last slot:
//! such an entry is visited early, fails validation, and is rescheduled
//! closer to its due time — correctness never depends on the horizon.

use std::time::{Duration, Instant};

/// Wheel slot width. Deadlines are seconds coarse (5–30 s in every
/// shipped config), so 128 ms slots keep expiry within ~3% of exact.
const SLOT_MILLIS: u64 = 128;
/// Slot count; horizon = `SLOT_MILLIS * SLOTS` ≈ 32 s, matching the
/// default idle deadline (longer deadlines just revisit once).
const SLOTS: usize = 256;

/// A scheduled key: connection slab slot plus its generation, so a
/// recycled slot never honors a predecessor's deadline.
pub(crate) type WheelKey = (usize, u64);

pub(crate) struct Wheel {
    slots: Vec<Vec<WheelKey>>,
    /// Wheel epoch; tick numbers are offsets from here.
    base: Instant,
    /// The next tick `expire` has yet to visit.
    cursor: u64,
    /// Live (possibly stale) entries across all slots.
    occupancy: usize,
}

impl Wheel {
    pub(crate) fn new(now: Instant) -> Wheel {
        Wheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            base: now,
            cursor: 0,
            occupancy: 0,
        }
    }

    pub(crate) fn tick_of(&self, at: Instant) -> u64 {
        let millis = at.saturating_duration_since(self.base).as_millis();
        u64::try_from(millis / u128::from(SLOT_MILLIS)).unwrap_or(u64::MAX)
    }

    /// Schedules `key` to be offered for expiry around `deadline`.
    pub(crate) fn schedule(&mut self, deadline: Instant, key: WheelKey) {
        let horizon = u64::try_from(SLOTS).unwrap_or(u64::MAX) - 1;
        // Never schedule behind the cursor (it would wait a full lap);
        // never past the horizon (clamp → early revisit → reschedule).
        let tick = self.tick_of(deadline).clamp(self.cursor, self.cursor + horizon);
        let index = usize::try_from(tick % u64::try_from(SLOTS).unwrap_or(u64::MAX)).unwrap_or(0);
        if let Some(slot) = self.slots.get_mut(index) {
            slot.push(key);
            self.occupancy += 1;
        }
    }

    /// How long `epoll_wait` may sleep before the next occupied slot
    /// comes due. `None` when the wheel is empty.
    pub(crate) fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.occupancy == 0 {
            return None;
        }
        let now_tick = self.tick_of(now);
        let slots = u64::try_from(SLOTS).unwrap_or(u64::MAX);
        for offset in 0..slots {
            let tick = self.cursor + offset;
            let index = usize::try_from(tick % slots).unwrap_or(0);
            if self.slots.get(index).is_some_and(|slot| !slot.is_empty()) {
                if tick <= now_tick {
                    return Some(Duration::ZERO);
                }
                let due = self.base + Duration::from_millis(tick.saturating_mul(SLOT_MILLIS));
                return Some(due.saturating_duration_since(now));
            }
        }
        None
    }

    /// Visits every live entry in due order (one lap from the cursor),
    /// calling `visit(tick, key)` until it returns `false`. Entries may
    /// be stale hints — the caller validates generation and deadline,
    /// typically via `tick_of(conn's authoritative deadline) == tick`.
    /// Used to find the least-recently-active idle connection when the
    /// slab is full: earliest surviving deadline == longest idle.
    pub(crate) fn scan(&self, mut visit: impl FnMut(u64, WheelKey) -> bool) {
        let slots = u64::try_from(SLOTS).unwrap_or(u64::MAX);
        for offset in 0..slots {
            let tick = self.cursor + offset;
            let index = usize::try_from(tick % slots).unwrap_or(0);
            let Some(slot) = self.slots.get(index) else {
                continue;
            };
            for &key in slot {
                if !visit(tick, key) {
                    return;
                }
            }
        }
    }

    /// Drains every entry whose slot is due at `now` into `out`. The
    /// caller re-validates each key against the connection's actual
    /// deadline and reschedules the ones that are merely early.
    pub(crate) fn expire(&mut self, now: Instant, out: &mut Vec<WheelKey>) {
        let now_tick = self.tick_of(now);
        let slots = u64::try_from(SLOTS).unwrap_or(u64::MAX);
        // Visit at most one full lap per call: past that, slots repeat.
        let last = now_tick.min(self.cursor.saturating_add(slots - 1));
        while self.cursor <= last {
            let index = usize::try_from(self.cursor % slots).unwrap_or(0);
            if let Some(slot) = self.slots.get_mut(index) {
                self.occupancy = self.occupancy.saturating_sub(slot.len());
                out.append(slot);
            }
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_at_the_scheduled_slot_not_before() {
        let t0 = Instant::now();
        let mut wheel = Wheel::new(t0);
        wheel.schedule(t0 + Duration::from_millis(500), (7, 1));
        let mut due = Vec::new();

        wheel.expire(t0 + Duration::from_millis(100), &mut due);
        assert!(due.is_empty(), "not due yet");
        let wakeup = wheel.next_wakeup(t0 + Duration::from_millis(100)).unwrap();
        assert!(wakeup <= Duration::from_millis(500));

        wheel.expire(t0 + Duration::from_millis(700), &mut due);
        assert_eq!(due, vec![(7, 1)]);
        assert!(wheel.next_wakeup(t0 + Duration::from_millis(700)).is_none());
    }

    #[test]
    fn stale_entries_coexist_and_all_come_back() {
        // Lazy deletion: rescheduling does not remove the old entry;
        // both surface and the caller's validation sorts them out.
        let t0 = Instant::now();
        let mut wheel = Wheel::new(t0);
        wheel.schedule(t0 + Duration::from_millis(200), (3, 1));
        wheel.schedule(t0 + Duration::from_millis(900), (3, 1));
        let mut due = Vec::new();
        wheel.expire(t0 + Duration::from_secs(2), &mut due);
        assert_eq!(due, vec![(3, 1), (3, 1)]);
    }

    #[test]
    fn far_deadline_clamps_to_horizon_and_revisits() {
        let t0 = Instant::now();
        let mut wheel = Wheel::new(t0);
        // Far beyond the ~32 s horizon.
        wheel.schedule(t0 + Duration::from_secs(300), (9, 4));
        let mut due = Vec::new();
        // It surfaces within one lap (early), ready for rescheduling.
        wheel.expire(t0 + Duration::from_secs(40), &mut due);
        assert_eq!(due, vec![(9, 4)]);
    }

    #[test]
    fn scan_visits_in_due_order_and_stops_on_false() {
        let t0 = Instant::now();
        let mut wheel = Wheel::new(t0);
        wheel.schedule(t0 + Duration::from_secs(9), (5, 1));
        wheel.schedule(t0 + Duration::from_secs(1), (2, 1));
        wheel.schedule(t0 + Duration::from_secs(4), (8, 1));
        let mut seen = Vec::new();
        wheel.scan(|tick, key| {
            seen.push((tick, key));
            true
        });
        let keys: Vec<WheelKey> = seen.iter().map(|&(_, key)| key).collect();
        assert_eq!(keys, vec![(2, 1), (8, 1), (5, 1)], "earliest deadline first");
        // Ticks are what `tick_of` would report for the deadlines.
        assert_eq!(seen[0].0, wheel.tick_of(t0 + Duration::from_secs(1)));
        // Early exit: a visitor returning false stops the walk.
        let mut count = 0;
        wheel.scan(|_, _| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_expire() {
        let t0 = Instant::now();
        let mut wheel = Wheel::new(t0);
        let mut due = Vec::new();
        wheel.expire(t0 + Duration::from_secs(5), &mut due); // advance the cursor
        assert!(due.is_empty());
        // A deadline already in the past lands on the cursor slot and
        // fires within one slot width.
        wheel.schedule(t0 + Duration::from_secs(1), (2, 8));
        let wakeup = wheel.next_wakeup(t0 + Duration::from_secs(5)).unwrap();
        assert!(wakeup <= Duration::from_millis(SLOT_MILLIS));
        wheel.expire(t0 + Duration::from_secs(6), &mut due);
        assert_eq!(due, vec![(2, 8)]);
    }
}
