//! The nonblocking serve core: per-core reactor threads, each owning an
//! epoll instance, a `SO_REUSEPORT` listener shard, and a slab of
//! connection state machines (DESIGN.md §15).
//!
//! One reactor is strictly single-threaded: every connection it accepts
//! lives and dies on its thread, so connection state needs no locks and
//! the saturation streak driving `Retry-After` escalation is a plain
//! integer. Cross-thread coordination is exactly what the blocking
//! server already had — the shared [`ServerState`] (registry, metrics,
//! plan cache, shutdown flag) — plus the kernel's own accept
//! distribution across the port shards.
//!
//! Readiness is edge-triggered (`EPOLLIN | EPOLLOUT | EPOLLRDHUP |
//! EPOLLET`, registered once per connection): every event drains its
//! condition to `WouldBlock`, requests are framed by the incremental
//! parser in `http.rs` (pipelined requests queue naturally in the
//! receive buffer), and responses flush as vectored writes from the
//! connection's reusable write queue. Deadlines live in a lazy-deletion
//! timer wheel; `epoll_wait` sleeps until the next occupied slot
//! (capped, so the shutdown flag is always observed promptly).

pub(crate) mod conn;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub(crate) mod wheel;

#[cfg(target_os = "linux")]
pub(crate) use linux::{bind_shard, run};

#[cfg(target_os = "linux")]
mod linux {
    use std::io::{self, IoSlice, Write as _};
    use std::net::{TcpListener, ToSocketAddrs as _};
    use std::os::fd::{AsRawFd as _, OwnedFd};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use super::conn::{Conn, Phase, MAX_IOVECS};
    use super::sys;
    use super::wheel::{Wheel, WheelKey};
    use crate::http::{parse_request_bytes, Limits, Parsed, ReadOutcome};
    use crate::server::{
        limits_for, process_request, read_error_response, reject_connection, retry_after_secs,
        Dispatched, ServerState,
    };

    /// Epoll token for the listener shard (connection tokens encode a
    /// slab slot, which is always far below this).
    const LISTENER_TOKEN: u64 = u64::MAX;
    /// Events fetched per `epoll_wait`.
    const EVENT_CAPACITY: usize = 256;
    /// Read syscall granularity.
    const READ_CHUNK: usize = 16 * 1024;
    /// Stop dispatching parsed requests while at least this many
    /// response bytes await the socket (the client is not reading;
    /// parsing further pipelined requests would buffer unboundedly).
    const WRITE_HIGH_WATER: usize = 256 * 1024;
    /// Upper bound on one `epoll_wait` sleep, so the shutdown flag set
    /// by another thread is observed within this window even when no
    /// deadline is near (and the fallback when the wakeup eventfd could
    /// not be created).
    const POLL_CAP: Duration = Duration::from_millis(100);
    /// Epoll token for the reactor's wakeup eventfd (below
    /// `LISTENER_TOKEN`, above any connection token).
    const WAKE_TOKEN: u64 = u64::MAX - 1;
    /// A connection must have been idle at least this long before slab
    /// pressure may evict it: eviction targets parked keep-alive
    /// connections, never ones that just went quiet between requests.
    const MIN_EVICT_IDLE_AGE: Duration = Duration::from_secs(2);
    /// First accept-retry pause after a resource-exhaustion errno
    /// (EMFILE/ENFILE/ENOMEM); doubles per consecutive failure.
    const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(5);
    /// Accept-retry pause ceiling.
    const ACCEPT_BACKOFF_CAP: Duration = Duration::from_millis(250);

    /// Binds one `SO_REUSEPORT` listener shard for `addr` (a host:port
    /// string, as `TcpListener::bind` takes).
    pub(crate) fn bind_shard(addr: &str) -> io::Result<TcpListener> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match sys::reuseport_listener(candidate) {
                Ok(listener) => return Ok(listener),
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to bind")))
    }

    /// Runs `workers` reactor threads sharing `first`'s port, returning
    /// once every reactor has drained after shutdown. The error of the
    /// first reactor to fail fatally (if any) is propagated, matching
    /// the blocking server's fatal-listener-error contract.
    pub(crate) fn run(first: TcpListener, state: Arc<ServerState>) -> io::Result<()> {
        let reactors = state.config.workers.max(1);
        let addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..reactors {
            listeners.push(sys::reuseport_listener(addr)?);
        }
        state.metrics.init_reactors(reactors);
        // Each reactor admits the full `workers + queue_capacity` the
        // blocking server allowed globally: the kernel's reuseport hash
        // is not a balancer, so splitting the cap across shards would
        // 503 workloads the old server accepted whenever a few
        // connections happened to collide on one shard.
        let per_reactor = state.config.workers.max(1) + state.config.queue_capacity;

        let mut handles = Vec::with_capacity(reactors);
        for (index, listener) in listeners.into_iter().enumerate() {
            let thread_state = Arc::clone(&state);
            let spawned = std::thread::Builder::new()
                .name(format!("twig-serve-reactor-{index}"))
                .spawn(move || Reactor::new(index, listener, thread_state, per_reactor)?.serve());
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(err) => {
                    // Could not spawn the full complement: stop the
                    // reactors already running and surface the error.
                    state.request_shutdown();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(err);
                }
            }
        }
        let mut first_err = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(err)) => {
                    if first_err.is_none() {
                        first_err = Some(err);
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(io::Error::other("reactor thread panicked"));
                    }
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Whether connection processing may continue.
    #[derive(PartialEq, Eq)]
    enum Flow {
        Live,
        Closed,
    }

    /// Connection slab: slot reuse with generations, so a stale epoll
    /// event or wheel entry for a recycled slot is provably stale.
    struct Slab {
        slots: Vec<Option<Conn>>,
        free: Vec<usize>,
        live: usize,
        next_generation: u64,
    }

    impl Slab {
        fn new() -> Slab {
            Slab { slots: Vec::new(), free: Vec::new(), live: 0, next_generation: 1 }
        }

        fn insert(&mut self, make: impl FnOnce(u64) -> Conn) -> usize {
            let generation = self.next_generation;
            self.next_generation += 1;
            self.live += 1;
            let conn = Some(make(generation));
            match self.free.pop() {
                Some(slot) => {
                    if let Some(cell) = self.slots.get_mut(slot) {
                        *cell = conn;
                    }
                    slot
                }
                None => {
                    self.slots.push(conn);
                    self.slots.len() - 1
                }
            }
        }

        fn get(&self, slot: usize) -> Option<&Conn> {
            self.slots.get(slot).and_then(Option::as_ref)
        }

        fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
            self.slots.get_mut(slot).and_then(Option::as_mut)
        }

        fn remove(&mut self, slot: usize) -> Option<Conn> {
            let conn = self.slots.get_mut(slot).and_then(Option::take);
            if conn.is_some() {
                self.live -= 1;
                self.free.push(slot);
            }
            conn
        }
    }

    /// Token layout: low 32 bits slot, high 32 bits generation (mod
    /// 2^32 — ample to disambiguate a slot recycled within one event
    /// batch, which is the only window a stale token can survive).
    fn token_for(slot: usize, generation: u64) -> u64 {
        (generation << 32) | (u64::try_from(slot).unwrap_or(0) & 0xFFFF_FFFF)
    }

    fn token_slot(token: u64) -> usize {
        usize::try_from(token & 0xFFFF_FFFF).unwrap_or(usize::MAX)
    }

    fn token_matches(token: u64, generation: u64) -> bool {
        (token >> 32) == (generation & 0xFFFF_FFFF)
    }

    pub(super) struct Reactor {
        index: usize,
        epoll: sys::Epoll,
        listener: Option<TcpListener>,
        state: Arc<ServerState>,
        limits: Limits,
        slab: Slab,
        wheel: Wheel,
        events: Vec<sys::EpollEvent>,
        due: Vec<WheelKey>,
        scratch: Vec<u8>,
        max_conns: usize,
        /// Consecutive saturation rejections on this reactor with no
        /// admission in between; reset on admission and on drain.
        streak: u64,
        draining: bool,
        fatal: Option<io::Error>,
        /// Wakeup eventfd: shutdown from another thread interrupts
        /// `epoll_wait` instead of waiting out the poll cap. `None`
        /// (creation failed) degrades to cap-bounded polling.
        wake: Option<OwnedFd>,
        /// One fd held in reserve so an EMFILE'd accept can be retried
        /// after releasing it — the pending connection gets a `503`
        /// instead of rotting in the backlog.
        reserve: Option<std::fs::File>,
        /// When to retry accepting after a resource-exhaustion errno
        /// paused the accept loop.
        accept_retry: Option<Instant>,
        /// Current accept-retry pause (escalates, resets on success).
        accept_backoff: Duration,
    }

    impl Reactor {
        pub(super) fn new(
            index: usize,
            listener: TcpListener,
            state: Arc<ServerState>,
            max_conns: usize,
        ) -> io::Result<Reactor> {
            let limits = limits_for(&state.config);
            Ok(Reactor {
                index,
                epoll: sys::Epoll::new()?,
                listener: Some(listener),
                limits,
                slab: Slab::new(),
                wheel: Wheel::new(Instant::now()),
                events: Vec::with_capacity(EVENT_CAPACITY),
                due: Vec::new(),
                scratch: vec![0u8; READ_CHUNK],
                max_conns: max_conns.max(1),
                streak: 0,
                draining: false,
                fatal: None,
                wake: sys::eventfd().ok(),
                reserve: std::fs::File::open("/dev/null").ok(),
                accept_retry: None,
                accept_backoff: ACCEPT_BACKOFF_START,
                state,
            })
        }

        pub(super) fn serve(mut self) -> io::Result<()> {
            if let Some(listener) = &self.listener {
                listener.set_nonblocking(true)?;
                self.epoll.add(
                    listener.as_raw_fd(),
                    LISTENER_TOKEN,
                    sys::EPOLLIN | sys::EPOLLET,
                )?;
            }
            // Register the wakeup eventfd (level-triggered: it stays
            // readable until drained) and hand a clone to the shared
            // state so `request_shutdown` can interrupt `epoll_wait`.
            // Every failure here degrades to cap-bounded polling.
            if let Some(wake) = &self.wake {
                if self.epoll.add(wake.as_raw_fd(), WAKE_TOKEN, sys::EPOLLIN).is_err() {
                    self.wake = None;
                } else if let Ok(clone) = wake.try_clone() {
                    self.state.register_waker(clone);
                }
            }
            loop {
                // Liveness heartbeat: the watchdog in `/healthz` and the
                // `twig_serve_reactor_stalled` gauge compare this stamp
                // against the stall threshold.
                if let Some(stats) = self.state.metrics.reactor(self.index) {
                    stats.beat(self.state.metrics.now_ms());
                }
                if self.state.shutting_down() {
                    self.begin_drain();
                    if self.slab.live == 0 {
                        return match self.fatal.take() {
                            Some(err) => Err(err),
                            None => Ok(()),
                        };
                    }
                }
                let timeout = self.poll_timeout();
                match self.epoll.wait(&mut self.events, timeout) {
                    Ok(_) => {}
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(err) => {
                        // Fatal poller error: begin a global drain so
                        // sibling reactors finish in-flight work, then
                        // surface the error from this one.
                        self.state.request_shutdown();
                        return Err(err);
                    }
                }
                for at in 0..self.events.len() {
                    let Some(event) = self.events.get(at).copied() else {
                        break;
                    };
                    if event.token() == LISTENER_TOKEN {
                        self.accept_burst();
                    } else if event.token() == WAKE_TOKEN {
                        if let Some(wake) = &self.wake {
                            sys::eventfd_drain(wake);
                        }
                    } else {
                        self.on_conn_event(event);
                    }
                }
                if self.accept_retry.is_some_and(|at| at <= Instant::now()) {
                    // A paused accept loop resumes on schedule even if
                    // no new edge arrives (edge-triggered listeners
                    // never re-announce an already-queued backlog).
                    self.accept_retry = None;
                    self.accept_burst();
                }
                self.expire_due();
            }
        }

        /// How long this `epoll_wait` may sleep.
        fn poll_timeout(&self) -> i32 {
            let now = Instant::now();
            let cap = if self.draining { Duration::from_millis(10) } else { POLL_CAP };
            let mut sleep = match self.wheel.next_wakeup(now) {
                Some(until_deadline) => until_deadline.min(cap),
                None => cap,
            };
            if let Some(retry) = self.accept_retry {
                sleep = sleep.min(retry.saturating_duration_since(now));
            }
            i32::try_from(sleep.as_millis()).unwrap_or(i32::MAX).max(1)
        }

        /// Accepts until the listener would block (edge-triggered), with
        /// an errno taxonomy for everything else: transient handshake
        /// failures keep the loop going, resource exhaustion
        /// (EMFILE/ENFILE/ENOMEM) sheds and pauses with escalating
        /// backoff, and only truly unexpected errors are fatal.
        fn accept_burst(&mut self) {
            loop {
                let Some(listener) = &self.listener else { return };
                match sys::accept(listener) {
                    Ok((stream, _peer)) => {
                        self.state.metrics.connections_total.inc();
                        if let Some(stats) = self.state.metrics.reactor(self.index) {
                            stats.accept();
                        }
                        if self.state.shutting_down() {
                            self.state.metrics.count_status(503);
                            reject_connection(stream, "server shutting down", 1);
                            continue;
                        }
                        if self.slab.live >= self.max_conns && !self.evict_lru_idle() {
                            self.streak += 1;
                            self.state.metrics.rejected_saturated.inc();
                            self.state.metrics.count_status(503);
                            reject_connection(
                                stream,
                                "server saturated, retry shortly",
                                retry_after_secs(self.streak),
                            );
                            continue;
                        }
                        self.streak = 0;
                        self.admit(stream);
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                        // Backlog drained: the normal end of a burst
                        // resets the exhaustion backoff.
                        self.accept_backoff = ACCEPT_BACKOFF_START;
                        self.accept_retry = None;
                        return;
                    }
                    Err(err)
                        if matches!(
                            err.kind(),
                            io::ErrorKind::ConnectionAborted
                                | io::ErrorKind::ConnectionReset
                                | io::ErrorKind::Interrupted
                        ) =>
                    {
                        self.state.metrics.accept_errors.count(err.raw_os_error());
                    }
                    Err(err) if matches!(err.raw_os_error(), Some(sys::EMFILE | sys::ENFILE)) => {
                        // The process (or system) fd table is full: the
                        // pending connection stays queued in the kernel,
                        // where it would rot. Spend the reserve fd to
                        // shed it with a 503, then pause accepting.
                        self.state.metrics.accept_errors.count(err.raw_os_error());
                        self.shed_via_reserve();
                        self.pause_accepts();
                        return;
                    }
                    Err(err) if err.raw_os_error() == Some(sys::ENOMEM) => {
                        // Kernel memory pressure: nothing to shed; back
                        // off and retry.
                        self.state.metrics.accept_errors.count(err.raw_os_error());
                        self.pause_accepts();
                        return;
                    }
                    Err(err) => {
                        // Fatal listener error: same contract as the
                        // blocking accept loop — drain, then report.
                        self.state.metrics.accept_errors.count(err.raw_os_error());
                        self.state.request_shutdown();
                        if self.fatal.is_none() {
                            self.fatal = Some(err);
                        }
                        return;
                    }
                }
            }
        }

        /// Schedules the next accept attempt after resource exhaustion,
        /// doubling the pause up to the cap.
        fn pause_accepts(&mut self) {
            self.accept_retry = Some(Instant::now() + self.accept_backoff);
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
        }

        /// Releases the reserve fd to accept exactly one connection from
        /// the backlog, answers it `503`, closes it, and re-arms the
        /// reserve. Under fd exhaustion this converts a silently hung
        /// client into a typed, retryable rejection.
        fn shed_via_reserve(&mut self) {
            if self.reserve.take().is_none() {
                return; // reserve already spent; nothing to release
            }
            if let Some(listener) = &self.listener {
                if let Ok((stream, _peer)) = sys::accept(listener) {
                    self.state.metrics.connections_total.inc();
                    self.state.metrics.count_status(503);
                    reject_connection(
                        stream,
                        "server out of file descriptors, retry shortly",
                        retry_after_secs(self.streak.max(9)),
                    );
                }
            }
            self.reserve = std::fs::File::open("/dev/null").ok();
        }

        /// Evicts the least-recently-active idle connection to make room
        /// for a new one, if any has been idle at least
        /// `MIN_EVICT_IDLE_AGE`. The wheel's due-order scan finds the
        /// earliest surviving idle deadline, which (deadlines being
        /// `last activity + idle_deadline`) is exactly the connection
        /// idle the longest. Returns whether a slot was freed.
        fn evict_lru_idle(&mut self) -> bool {
            let now = Instant::now();
            // idle_age >= MIN_EVICT_IDLE_AGE  <=>
            // deadline <= now + idle_deadline - MIN_EVICT_IDLE_AGE
            let Some(threshold) = (now + self.limits.idle_deadline).checked_sub(MIN_EVICT_IDLE_AGE)
            else {
                return false;
            };
            let wheel = &self.wheel;
            let slab = &self.slab;
            let mut victim = None;
            wheel.scan(|tick, (slot, generation)| {
                let Some(conn) = slab.get(slot) else { return true };
                if conn.generation != generation {
                    return true; // recycled slot: a past life's hint
                }
                if conn.phase != Phase::Idle {
                    return true;
                }
                if wheel.tick_of(conn.deadline) != tick {
                    return true; // stale hint; the live one comes later
                }
                if conn.deadline > threshold {
                    // Earliest validated deadline is still too fresh —
                    // and every later entry is fresher. Give up.
                    return false;
                }
                victim = Some(slot);
                false
            });
            let Some(slot) = victim else { return false };
            self.state.metrics.conns_evicted_total.inc();
            self.close(slot);
            true
        }

        fn admit(&mut self, stream: std::net::TcpStream) {
            if stream.set_nonblocking(true).is_err() {
                return; // drop: the socket is unusable for the reactor
            }
            let _ = stream.set_nodelay(true);
            let idle_until = Instant::now() + self.limits.idle_deadline;
            let slot = self.slab.insert(|generation| Conn::new(stream, generation, idle_until));
            let Some(conn) = self.slab.get(slot) else { return };
            let token = token_for(slot, conn.generation);
            let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
            if self.epoll.add(conn.stream.as_raw_fd(), token, interest).is_err() {
                self.slab.remove(slot);
                return;
            }
            self.wheel.schedule(idle_until, (slot, conn.generation));
            if let Some(stats) = self.state.metrics.reactor(self.index) {
                stats.conn_opened();
            }
        }

        fn close(&mut self, slot: usize) {
            if self.slab.remove(slot).is_some() {
                // Dropping the Conn closes the fd, which deregisters it
                // from epoll (the reactor holds no dup).
                if let Some(stats) = self.state.metrics.reactor(self.index) {
                    stats.conn_closed();
                }
            }
        }

        fn on_conn_event(&mut self, event: sys::EpollEvent) {
            let slot = token_slot(event.token());
            let Some(conn) = self.slab.get(slot) else { return };
            if !token_matches(event.token(), conn.generation) {
                return; // recycled slot; the event belongs to a past life
            }
            if event.readable() {
                if self.fill_rbuf(slot) == Flow::Closed {
                    return;
                }
            } else if !event.writable() {
                return;
            }
            self.pump(slot);
        }

        /// Reads until `WouldBlock`/EOF, appending to the receive
        /// buffer. The `http.read` failpoint injects transport faults at
        /// this boundary, exactly where the blocking reader had it.
        fn fill_rbuf(&mut self, slot: usize) -> Flow {
            if let Some(fault) = twig_util::failpoint!("http.read") {
                return match fault {
                    // An injected transport error (or errno) behaves
                    // like any other socket I/O failure: silent close.
                    twig_util::failpoint::Fault::Error | twig_util::failpoint::Fault::Errno(_) => {
                        self.close(slot);
                        Flow::Closed
                    }
                    // A torn read surfaces as a malformed request.
                    twig_util::failpoint::Fault::Partial(_) => {
                        self.fail_read(slot, &ReadOutcome::Malformed("injected torn read"))
                    }
                };
            }
            // Bound buffered-but-unparsed input: one full head + body
            // plus a read chunk of pipelined follow-on bytes.
            let rbuf_cap = self.limits.max_head_bytes + self.limits.max_body_bytes + READ_CHUNK;
            let progress_window = self.state.config.progress_window;
            let scratch = &mut self.scratch;
            let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
            loop {
                if conn.rbuf.len() >= rbuf_cap {
                    // Backpressure: resume from `pump` once responses
                    // drain. The consumed edge is re-polled directly.
                    break;
                }
                match sys::read(&mut conn.stream, scratch) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.phase == Phase::Idle {
                            // A fresh request also opens a fresh
                            // progress window.
                            let now = Instant::now();
                            conn.phase = Phase::Busy { since: now };
                            conn.progress = 0;
                            conn.window_deadline = now + progress_window;
                        }
                        conn.progress += u64::try_from(n).unwrap_or(0);
                        match scratch.get(..n) {
                            Some(filled) => conn.rbuf.extend_from_slice(filled),
                            None => break, // broken Read impl; treat as drained
                        }
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(slot);
                        return Flow::Closed;
                    }
                }
            }
            Flow::Live
        }

        /// Parses and dispatches every complete request buffered on the
        /// connection, then flushes; repeats while forward progress is
        /// possible without waiting on the socket.
        fn pump(&mut self, slot: usize) {
            loop {
                if self.process_rbuf(slot) == Flow::Closed {
                    return;
                }
                if self.flush(slot) == Flow::Closed {
                    return;
                }
                let Some(conn) = self.slab.get(slot) else { return };
                // Another round only pays off when the write queue fully
                // drained and buffered input may still hold requests
                // (the high-water pause above, or a paused read).
                let rbuf_cap = self.limits.max_head_bytes + self.limits.max_body_bytes;
                let read_was_paused = conn.rbuf.len() >= rbuf_cap;
                if !(conn.wq.is_empty() && !conn.rbuf.is_empty() && !conn.close_after_flush) {
                    break;
                }
                if read_was_paused && self.fill_rbuf(slot) == Flow::Closed {
                    return;
                }
                let Some(conn) = self.slab.get(slot) else { return };
                // Anything but NeedMore means at least one more request
                // (or an error) is ready to process this round.
                if let Ok(Parsed::NeedMore) = parse_request_bytes(&conn.rbuf, &self.limits) {
                    break;
                }
            }
            self.settle(slot);
        }

        /// Frames and dispatches requests out of the receive buffer.
        fn process_rbuf(&mut self, slot: usize) -> Flow {
            let mut dispatched = 0u64;
            loop {
                let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
                if conn.close_after_flush || conn.wq.pending() >= WRITE_HIGH_WATER {
                    break;
                }
                match parse_request_bytes(&conn.rbuf, &self.limits) {
                    Ok(Parsed::NeedMore) => {
                        if conn.peer_closed && !conn.rbuf.is_empty() {
                            // EOF mid-request: same taxonomy as the
                            // blocking reader.
                            let what = if crate::http::head_complete(&conn.rbuf) {
                                "connection closed mid-body"
                            } else {
                                "connection closed mid-head"
                            };
                            return self.fail_read(slot, &ReadOutcome::Malformed(what));
                        }
                        break;
                    }
                    Ok(Parsed::Request { request, consumed }) => {
                        conn.rbuf.drain(..consumed);
                        if dispatched > 0 {
                            self.state.metrics.pipelined_requests_total.inc();
                        }
                        dispatched += 1;
                        match process_request(&self.state, &request) {
                            Dispatched::Drop => {
                                // Injected dispatch fault: abandon the
                                // connection, response unsent — the peer
                                // observes a closed socket.
                                self.close(slot);
                                return Flow::Closed;
                            }
                            Dispatched::Respond(response) => {
                                // Evaluated after dispatch: the handler
                                // itself may have requested shutdown
                                // (`/admin/shutdown`), and drain policy
                                // closes every response.
                                let keep_alive =
                                    request.keep_alive() && !self.state.shutting_down();
                                let Some(conn) = self.slab.get_mut(slot) else {
                                    return Flow::Closed;
                                };
                                conn.wq.push(response, !keep_alive);
                                if !keep_alive {
                                    conn.close_after_flush = true;
                                }
                            }
                        }
                    }
                    Err(outcome) => return self.fail_read(slot, &outcome),
                }
            }
            Flow::Live
        }

        /// Answers a failed request read the way the blocking server
        /// did: typed error response where one is defined, silent close
        /// otherwise; either way the connection ends.
        fn fail_read(&mut self, slot: usize, outcome: &ReadOutcome) -> Flow {
            let response = read_error_response(&self.state, outcome);
            let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
            match response {
                Some(response) => {
                    self.state.metrics.count_status(response.status);
                    conn.rbuf.clear();
                    conn.wq.push(response, true);
                    conn.close_after_flush = true;
                    if self.flush(slot) == Flow::Closed {
                        return Flow::Closed;
                    }
                    self.settle(slot);
                    Flow::Live
                }
                None => {
                    self.close(slot);
                    Flow::Closed
                }
            }
        }

        /// Writes the pending response bytes until drained or
        /// `WouldBlock`. The `http.write` failpoint tears the stream at
        /// this boundary.
        fn flush(&mut self, slot: usize) -> Flow {
            let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
            if conn.wq.is_empty() {
                return self.after_flush(slot);
            }
            if let Some(fault) = twig_util::failpoint!("http.write") {
                if let twig_util::failpoint::Fault::Partial(keep_percent) = fault {
                    // Best-effort prefix, then sever: the client sees a
                    // torn response on a closed socket.
                    let cap = usize::try_from(keep_percent).unwrap_or(100).min(100);
                    let torn = conn.wq.pending() * cap / 100;
                    let mut slices: [IoSlice<'_>; MAX_IOVECS] =
                        std::array::from_fn(|_| IoSlice::new(&[]));
                    let count = conn.wq.slices(&mut slices);
                    let mut budget = torn;
                    for slice in slices.iter().take(count) {
                        if budget == 0 {
                            break;
                        }
                        let part = budget.min(slice.len());
                        if let Some(bytes) = slice.get(..part) {
                            let _ = conn.stream.write_all(bytes);
                        }
                        budget -= part;
                    }
                }
                self.close(slot);
                return Flow::Closed;
            }
            loop {
                let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
                let mut slices: [IoSlice<'_>; MAX_IOVECS] =
                    std::array::from_fn(|_| IoSlice::new(&[]));
                let count = conn.wq.slices(&mut slices);
                let Some(filled) = slices.get(..count) else { break };
                if filled.is_empty() {
                    break;
                }
                match sys::write_vectored(&mut conn.stream, filled) {
                    Ok(0) => {
                        self.close(slot);
                        return Flow::Closed;
                    }
                    Ok(n) => {
                        conn.wq.advance(n);
                        conn.progress += u64::try_from(n).unwrap_or(0);
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Flow::Live,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(slot);
                        return Flow::Closed;
                    }
                }
            }
            self.after_flush(slot)
        }

        /// Post-drain disposition: close if a close was queued or the
        /// peer is gone with nothing left to serve.
        fn after_flush(&mut self, slot: usize) -> Flow {
            let Some(conn) = self.slab.get(slot) else { return Flow::Closed };
            if conn.close_after_flush || (conn.peer_closed && conn.rbuf.is_empty()) {
                self.close(slot);
                return Flow::Closed;
            }
            Flow::Live
        }

        /// Recomputes the connection's phase and deadline after a burst
        /// of work, rescheduling its wheel hint when the next wanted
        /// wakeup (absolute deadline, or the progress-window boundary of
        /// a busy connection) moved earlier than the earliest hint
        /// already planted.
        fn settle(&mut self, slot: usize) {
            let now = Instant::now();
            let limits_idle = self.limits.idle_deadline;
            let limits_read = self.limits.read_deadline;
            let Some(conn) = self.slab.get_mut(slot) else { return };
            let (phase, deadline) = if conn.rbuf.is_empty() && conn.wq.is_empty() {
                (Phase::Idle, now + limits_idle)
            } else {
                let since = match conn.phase {
                    Phase::Busy { since } => since,
                    Phase::Idle => now,
                };
                (Phase::Busy { since }, since + limits_read)
            };
            conn.phase = phase;
            conn.deadline = deadline;
            let wake = match phase {
                Phase::Busy { .. } => deadline.min(conn.window_deadline),
                Phase::Idle => deadline,
            };
            if wake < conn.next_wake {
                // Moved earlier: the existing wheel hint fires too late
                // to notice, so plant a fresh one.
                self.wheel.schedule(wake, (slot, conn.generation));
                conn.next_wake = wake;
            }
        }

        /// Ends a connection that ran out of deadline or progress
        /// budget: a `408` when it still owed us request bytes, a plain
        /// sever otherwise (stalled flush — the peer is not reading).
        fn kill_expired(&mut self, slot: usize, awaiting_request: bool) {
            if awaiting_request {
                let _ = self.fail_read(slot, &ReadOutcome::Timeout);
            }
            self.close(slot);
        }

        /// Visits due wheel entries, expiring connections whose
        /// authoritative deadline has truly passed, enforcing the
        /// minimum-progress window on busy connections, and rescheduling
        /// the rest (lazy deletion).
        fn expire_due(&mut self) {
            let now = Instant::now();
            let progress_window = self.state.config.progress_window;
            let min_progress = self.state.config.min_progress_bytes;
            let mut due = std::mem::take(&mut self.due);
            self.wheel.expire(now, &mut due);
            for (slot, generation) in due.drain(..) {
                let Some(conn) = self.slab.get(slot) else { continue };
                if conn.generation != generation {
                    continue;
                }
                let phase = conn.phase;
                let deadline = conn.deadline;
                let window_deadline = conn.window_deadline;
                let progress = conn.progress;
                let awaiting_request = conn.wq.is_empty() && !conn.rbuf.is_empty();
                if deadline <= now {
                    match phase {
                        // Idle keep-alive expiry closes silently —
                        // normal keep-alive churn, exactly like the
                        // blocking path.
                        Phase::Idle => self.close(slot),
                        Phase::Busy { .. } => self.kill_expired(slot, awaiting_request),
                    }
                    continue;
                }
                let busy = matches!(phase, Phase::Busy { .. });
                let mut next_window = window_deadline;
                if busy && window_deadline <= now {
                    if progress < min_progress {
                        // Slow-read/slow-write client: it had a full
                        // window to move `min_progress` bytes and did
                        // not. Kill it before it ties the slot up until
                        // the absolute deadline (slowloris defense).
                        self.state.metrics.progress_kills_total.inc();
                        self.kill_expired(slot, awaiting_request);
                        continue;
                    }
                    next_window = now + progress_window;
                }
                // Early visit (stale or clamped hint, or a window
                // boundary): rearm at the next wanted wakeup.
                let wake = if busy { deadline.min(next_window) } else { deadline };
                let Some(conn) = self.slab.get_mut(slot) else { continue };
                if next_window != window_deadline {
                    conn.progress = 0;
                    conn.window_deadline = next_window;
                }
                self.wheel.schedule(wake, (slot, generation));
                conn.next_wake = wake;
            }
            self.due = due;
        }

        /// Transitions into drain mode (idempotent): stop accepting,
        /// reset backpressure escalation, shed idle connections.
        fn begin_drain(&mut self) {
            if self.draining {
                return;
            }
            self.draining = true;
            self.streak = 0;
            self.listener = None; // closes the shard; accepting stops
            for slot in 0..self.slab.slots.len() {
                let Some(conn) = self.slab.get(slot) else { continue };
                if conn.rbuf.is_empty() && conn.wq.is_empty() {
                    // Idle keep-alive connections close immediately; in
                    // flight ones finish their request (the response
                    // carries `Connection: close`) and then close.
                    self.close(slot);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::server::ServerConfig;
        use std::io::Read as _;
        use std::net::{SocketAddr, TcpStream};

        fn reactor_with(config: ServerConfig, max_conns: usize) -> (Reactor, SocketAddr) {
            let addr: SocketAddr = "127.0.0.1:0".parse().expect("literal addr");
            let listener = sys::reuseport_listener(addr).expect("bind");
            let local = listener.local_addr().expect("local addr");
            listener.set_nonblocking(true).expect("nonblocking listener");
            let state = ServerState::test_state(config);
            state.metrics.init_reactors(1);
            let reactor = Reactor::new(0, listener, state, max_conns).expect("reactor");
            (reactor, local)
        }

        /// Connects a client and drives `accept_burst` until the reactor
        /// has seen it; returns the client end and the slab slot the
        /// connection landed in (the one with the newest generation).
        fn connect_one(reactor: &mut Reactor, addr: SocketAddr) -> (TcpStream, usize) {
            let before = reactor.state.metrics.connections_total.get();
            let client = TcpStream::connect(addr).expect("connect");
            for _ in 0..400 {
                reactor.accept_burst();
                if reactor.state.metrics.connections_total.get() > before {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(reactor.state.metrics.connections_total.get() > before, "accept did not land");
            let slot = (0..reactor.slab.slots.len())
                .filter(|&slot| reactor.slab.get(slot).is_some())
                .max_by_key(|&slot| reactor.slab.get(slot).map(|conn| conn.generation))
                .expect("an admitted connection");
            (client, slot)
        }

        /// Backdates a connection's last activity by `age`: its idle
        /// deadline moves to `now + idle_deadline - age`, with a
        /// matching wheel hint (what `settle` would have planted had the
        /// activity really happened that long ago).
        fn backdate_idle(reactor: &mut Reactor, slot: usize, now: Instant, age: Duration) {
            let idle = reactor.limits.idle_deadline;
            let generation = reactor.slab.get(slot).expect("live conn").generation;
            let deadline = now + idle - age;
            let conn = reactor.slab.get_mut(slot).expect("live conn");
            conn.deadline = deadline;
            conn.next_wake = deadline;
            reactor.wheel.schedule(deadline, (slot, generation));
        }

        #[test]
        fn slab_pressure_evicts_least_recently_active_idle_conn_aba_safe() {
            let (mut reactor, addr) = reactor_with(ServerConfig::default(), 3);
            let (mut c0, s0) = connect_one(&mut reactor, addr);
            let (mut c1, s1) = connect_one(&mut reactor, addr);
            let (_c2, _s2) = connect_one(&mut reactor, addr);
            assert_eq!(reactor.slab.live, 3);
            let now = Instant::now();
            // Slot `s1` has been idle longest (the LRU victim); `s0` is
            // next; the third connection stays fresh and is protected by
            // `MIN_EVICT_IDLE_AGE`.
            backdate_idle(&mut reactor, s0, now, Duration::from_secs(3));
            backdate_idle(&mut reactor, s1, now, Duration::from_secs(10));
            let old_generation = reactor.slab.get(s1).expect("live conn").generation;

            // Fourth client: at capacity, the LRU idle conn is evicted
            // and its slot recycled under a new generation.
            let (_c3, s3) = connect_one(&mut reactor, addr);
            assert_eq!(s3, s1, "the freed slot is reused");
            assert_eq!(reactor.slab.live, 3);
            assert_eq!(reactor.state.metrics.conns_evicted_total.get(), 1);
            assert_eq!(reactor.state.metrics.rejected_saturated.get(), 0);
            assert_ne!(
                reactor.slab.get(s3).expect("live conn").generation,
                old_generation,
                "recycled slot must advance its generation"
            );
            let mut buf = [0u8; 16];
            c1.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
            assert_eq!(c1.read(&mut buf).expect("read"), 0, "evicted client sees EOF");

            // Fifth client: the wheel still holds the stale hint
            // `(s1, old_generation)` at the earliest tick. The
            // generation check must skip it (ABA safety) and evict the
            // next LRU, `s0` — not the fresh connection now in `s1`.
            let (_c4, s4) = connect_one(&mut reactor, addr);
            assert_eq!(s4, s0, "stale hint skipped; next LRU evicted");
            assert_eq!(reactor.state.metrics.conns_evicted_total.get(), 2);
            c0.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
            assert_eq!(c0.read(&mut buf).expect("read"), 0, "second victim sees EOF");
        }

        #[test]
        fn busy_conn_missing_min_progress_is_killed_with_408() {
            let config = ServerConfig {
                progress_window: Duration::from_millis(50),
                min_progress_bytes: 1000,
                ..ServerConfig::default()
            };
            let (mut reactor, addr) = reactor_with(config, 8);
            let (mut slow, slot) = connect_one(&mut reactor, addr);
            let now = Instant::now();
            {
                let generation = reactor.slab.get(slot).expect("live conn").generation;
                let conn = reactor.slab.get_mut(slot).expect("live conn");
                // Mid-request, window expired, almost no bytes moved: a
                // slowloris client as the reactor would see it.
                conn.phase = Phase::Busy { since: now };
                conn.rbuf = b"POST /estimate HTTP/1.1\r\n".to_vec();
                conn.deadline = now + Duration::from_secs(10);
                conn.progress = 3;
                conn.window_deadline = now - Duration::from_millis(1);
                conn.next_wake = now;
                reactor.wheel.schedule(now, (slot, generation));
            }
            reactor.expire_due();
            assert_eq!(reactor.state.metrics.progress_kills_total.get(), 1);
            assert_eq!(reactor.slab.live, 0, "slow client killed");
            // The kill is typed: a 408 before the close.
            slow.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
            let mut body = String::new();
            slow.read_to_string(&mut body).expect("drain response");
            assert!(body.contains("408"), "{body}");
            assert!(body.contains("timeout"), "{body}");
        }

        #[test]
        fn busy_conn_meeting_min_progress_rolls_its_window() {
            let config = ServerConfig {
                progress_window: Duration::from_millis(50),
                min_progress_bytes: 1000,
                ..ServerConfig::default()
            };
            let (mut reactor, addr) = reactor_with(config, 8);
            let (_client, slot) = connect_one(&mut reactor, addr);
            let now = Instant::now();
            {
                let generation = reactor.slab.get(slot).expect("live conn").generation;
                let conn = reactor.slab.get_mut(slot).expect("live conn");
                conn.phase = Phase::Busy { since: now };
                conn.rbuf = b"POST /estimate HTTP/1.1\r\n".to_vec();
                conn.deadline = now + Duration::from_secs(10);
                conn.progress = 5000; // well past the minimum
                conn.window_deadline = now - Duration::from_millis(1);
                conn.next_wake = now;
                reactor.wheel.schedule(now, (slot, generation));
            }
            reactor.expire_due();
            assert_eq!(reactor.state.metrics.progress_kills_total.get(), 0);
            assert_eq!(reactor.slab.live, 1, "progressing client survives");
            let conn = reactor.slab.get(slot).expect("live conn");
            assert_eq!(conn.progress, 0, "window rolled: progress reset");
            assert!(conn.window_deadline > now, "window rolled forward");
        }
    }
}
