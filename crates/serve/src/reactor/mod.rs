//! The nonblocking serve core: per-core reactor threads, each owning an
//! epoll instance, a `SO_REUSEPORT` listener shard, and a slab of
//! connection state machines (DESIGN.md §15).
//!
//! One reactor is strictly single-threaded: every connection it accepts
//! lives and dies on its thread, so connection state needs no locks and
//! the saturation streak driving `Retry-After` escalation is a plain
//! integer. Cross-thread coordination is exactly what the blocking
//! server already had — the shared [`ServerState`] (registry, metrics,
//! plan cache, shutdown flag) — plus the kernel's own accept
//! distribution across the port shards.
//!
//! Readiness is edge-triggered (`EPOLLIN | EPOLLOUT | EPOLLRDHUP |
//! EPOLLET`, registered once per connection): every event drains its
//! condition to `WouldBlock`, requests are framed by the incremental
//! parser in `http.rs` (pipelined requests queue naturally in the
//! receive buffer), and responses flush as vectored writes from the
//! connection's reusable write queue. Deadlines live in a lazy-deletion
//! timer wheel; `epoll_wait` sleeps until the next occupied slot
//! (capped, so the shutdown flag is always observed promptly).

pub(crate) mod conn;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub(crate) mod wheel;

#[cfg(target_os = "linux")]
pub(crate) use linux::{bind_shard, run};

#[cfg(target_os = "linux")]
mod linux {
    use std::io::{self, IoSlice, Read as _, Write as _};
    use std::net::{TcpListener, ToSocketAddrs as _};
    use std::os::fd::AsRawFd as _;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use super::conn::{Conn, Phase, MAX_IOVECS};
    use super::sys;
    use super::wheel::{Wheel, WheelKey};
    use crate::http::{parse_request_bytes, Limits, Parsed, ReadOutcome};
    use crate::server::{
        limits_for, process_request, read_error_response, reject_connection, retry_after_secs,
        Dispatched, ServerState,
    };

    /// Epoll token for the listener shard (connection tokens encode a
    /// slab slot, which is always far below this).
    const LISTENER_TOKEN: u64 = u64::MAX;
    /// Events fetched per `epoll_wait`.
    const EVENT_CAPACITY: usize = 256;
    /// Read syscall granularity.
    const READ_CHUNK: usize = 16 * 1024;
    /// Stop dispatching parsed requests while at least this many
    /// response bytes await the socket (the client is not reading;
    /// parsing further pipelined requests would buffer unboundedly).
    const WRITE_HIGH_WATER: usize = 256 * 1024;
    /// Upper bound on one `epoll_wait` sleep, so the shutdown flag set
    /// by another thread is observed within this window even when no
    /// deadline is near.
    const POLL_CAP: Duration = Duration::from_millis(100);

    /// Binds one `SO_REUSEPORT` listener shard for `addr` (a host:port
    /// string, as `TcpListener::bind` takes).
    pub(crate) fn bind_shard(addr: &str) -> io::Result<TcpListener> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match sys::reuseport_listener(candidate) {
                Ok(listener) => return Ok(listener),
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to bind")))
    }

    /// Runs `workers` reactor threads sharing `first`'s port, returning
    /// once every reactor has drained after shutdown. The error of the
    /// first reactor to fail fatally (if any) is propagated, matching
    /// the blocking server's fatal-listener-error contract.
    pub(crate) fn run(first: TcpListener, state: Arc<ServerState>) -> io::Result<()> {
        let reactors = state.config.workers.max(1);
        let addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..reactors {
            listeners.push(sys::reuseport_listener(addr)?);
        }
        state.metrics.init_reactors(reactors);
        // Each reactor admits the full `workers + queue_capacity` the
        // blocking server allowed globally: the kernel's reuseport hash
        // is not a balancer, so splitting the cap across shards would
        // 503 workloads the old server accepted whenever a few
        // connections happened to collide on one shard.
        let per_reactor = state.config.workers.max(1) + state.config.queue_capacity;

        let mut handles = Vec::with_capacity(reactors);
        for (index, listener) in listeners.into_iter().enumerate() {
            let thread_state = Arc::clone(&state);
            let spawned = std::thread::Builder::new()
                .name(format!("twig-serve-reactor-{index}"))
                .spawn(move || Reactor::new(index, listener, thread_state, per_reactor)?.serve());
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(err) => {
                    // Could not spawn the full complement: stop the
                    // reactors already running and surface the error.
                    state.shutdown.store(true, Ordering::SeqCst);
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(err);
                }
            }
        }
        let mut first_err = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(err)) => {
                    if first_err.is_none() {
                        first_err = Some(err);
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(io::Error::other("reactor thread panicked"));
                    }
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Whether connection processing may continue.
    #[derive(PartialEq, Eq)]
    enum Flow {
        Live,
        Closed,
    }

    /// Connection slab: slot reuse with generations, so a stale epoll
    /// event or wheel entry for a recycled slot is provably stale.
    struct Slab {
        slots: Vec<Option<Conn>>,
        free: Vec<usize>,
        live: usize,
        next_generation: u64,
    }

    impl Slab {
        fn new() -> Slab {
            Slab { slots: Vec::new(), free: Vec::new(), live: 0, next_generation: 1 }
        }

        fn insert(&mut self, make: impl FnOnce(u64) -> Conn) -> usize {
            let generation = self.next_generation;
            self.next_generation += 1;
            self.live += 1;
            let conn = Some(make(generation));
            match self.free.pop() {
                Some(slot) => {
                    if let Some(cell) = self.slots.get_mut(slot) {
                        *cell = conn;
                    }
                    slot
                }
                None => {
                    self.slots.push(conn);
                    self.slots.len() - 1
                }
            }
        }

        fn get(&self, slot: usize) -> Option<&Conn> {
            self.slots.get(slot).and_then(Option::as_ref)
        }

        fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
            self.slots.get_mut(slot).and_then(Option::as_mut)
        }

        fn remove(&mut self, slot: usize) -> Option<Conn> {
            let conn = self.slots.get_mut(slot).and_then(Option::take);
            if conn.is_some() {
                self.live -= 1;
                self.free.push(slot);
            }
            conn
        }
    }

    /// Token layout: low 32 bits slot, high 32 bits generation (mod
    /// 2^32 — ample to disambiguate a slot recycled within one event
    /// batch, which is the only window a stale token can survive).
    fn token_for(slot: usize, generation: u64) -> u64 {
        (generation << 32) | (u64::try_from(slot).unwrap_or(0) & 0xFFFF_FFFF)
    }

    fn token_slot(token: u64) -> usize {
        usize::try_from(token & 0xFFFF_FFFF).unwrap_or(usize::MAX)
    }

    fn token_matches(token: u64, generation: u64) -> bool {
        (token >> 32) == (generation & 0xFFFF_FFFF)
    }

    pub(super) struct Reactor {
        index: usize,
        epoll: sys::Epoll,
        listener: Option<TcpListener>,
        state: Arc<ServerState>,
        limits: Limits,
        slab: Slab,
        wheel: Wheel,
        events: Vec<sys::EpollEvent>,
        due: Vec<WheelKey>,
        scratch: Vec<u8>,
        max_conns: usize,
        /// Consecutive saturation rejections on this reactor with no
        /// admission in between; reset on admission and on drain.
        streak: u64,
        draining: bool,
        fatal: Option<io::Error>,
    }

    impl Reactor {
        pub(super) fn new(
            index: usize,
            listener: TcpListener,
            state: Arc<ServerState>,
            max_conns: usize,
        ) -> io::Result<Reactor> {
            let limits = limits_for(&state.config);
            Ok(Reactor {
                index,
                epoll: sys::Epoll::new()?,
                listener: Some(listener),
                state,
                limits,
                slab: Slab::new(),
                wheel: Wheel::new(Instant::now()),
                events: Vec::with_capacity(EVENT_CAPACITY),
                due: Vec::new(),
                scratch: vec![0u8; READ_CHUNK],
                max_conns: max_conns.max(1),
                streak: 0,
                draining: false,
                fatal: None,
            })
        }

        pub(super) fn serve(mut self) -> io::Result<()> {
            if let Some(listener) = &self.listener {
                listener.set_nonblocking(true)?;
                self.epoll.add(
                    listener.as_raw_fd(),
                    LISTENER_TOKEN,
                    sys::EPOLLIN | sys::EPOLLET,
                )?;
            }
            loop {
                if self.state.shutting_down() {
                    self.begin_drain();
                    if self.slab.live == 0 {
                        return match self.fatal.take() {
                            Some(err) => Err(err),
                            None => Ok(()),
                        };
                    }
                }
                let timeout = self.poll_timeout();
                match self.epoll.wait(&mut self.events, timeout) {
                    Ok(_) => {}
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(err) => {
                        // Fatal poller error: begin a global drain so
                        // sibling reactors finish in-flight work, then
                        // surface the error from this one.
                        self.state.shutdown.store(true, Ordering::SeqCst);
                        return Err(err);
                    }
                }
                for at in 0..self.events.len() {
                    let Some(event) = self.events.get(at).copied() else {
                        break;
                    };
                    if event.token() == LISTENER_TOKEN {
                        self.accept_burst();
                    } else {
                        self.on_conn_event(event);
                    }
                }
                self.expire_due();
            }
        }

        /// How long this `epoll_wait` may sleep.
        fn poll_timeout(&self) -> i32 {
            let cap = if self.draining { Duration::from_millis(10) } else { POLL_CAP };
            let sleep = match self.wheel.next_wakeup(Instant::now()) {
                Some(until_deadline) => until_deadline.min(cap),
                None => cap,
            };
            i32::try_from(sleep.as_millis()).unwrap_or(i32::MAX).max(1)
        }

        /// Accepts until the listener would block (edge-triggered).
        fn accept_burst(&mut self) {
            loop {
                let Some(listener) = &self.listener else { return };
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        self.state.metrics.connections_total.inc();
                        if let Some(stats) = self.state.metrics.reactor(self.index) {
                            stats.accept();
                        }
                        if self.state.shutting_down() {
                            self.state.metrics.count_status(503);
                            reject_connection(stream, "server shutting down", 1);
                            continue;
                        }
                        if self.slab.live >= self.max_conns {
                            self.streak += 1;
                            self.state.metrics.rejected_saturated.inc();
                            self.state.metrics.count_status(503);
                            reject_connection(
                                stream,
                                "server saturated, retry shortly",
                                retry_after_secs(self.streak),
                            );
                            continue;
                        }
                        self.streak = 0;
                        self.admit(stream);
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                    Err(err)
                        if matches!(
                            err.kind(),
                            io::ErrorKind::ConnectionAborted
                                | io::ErrorKind::ConnectionReset
                                | io::ErrorKind::Interrupted
                        ) => {}
                    Err(err) => {
                        // Fatal listener error: same contract as the
                        // blocking accept loop — drain, then report.
                        self.state.shutdown.store(true, Ordering::SeqCst);
                        if self.fatal.is_none() {
                            self.fatal = Some(err);
                        }
                        return;
                    }
                }
            }
        }

        fn admit(&mut self, stream: std::net::TcpStream) {
            if stream.set_nonblocking(true).is_err() {
                return; // drop: the socket is unusable for the reactor
            }
            let _ = stream.set_nodelay(true);
            let idle_until = Instant::now() + self.limits.idle_deadline;
            let slot = self.slab.insert(|generation| Conn::new(stream, generation, idle_until));
            let Some(conn) = self.slab.get(slot) else { return };
            let token = token_for(slot, conn.generation);
            let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
            if self.epoll.add(conn.stream.as_raw_fd(), token, interest).is_err() {
                self.slab.remove(slot);
                return;
            }
            self.wheel.schedule(idle_until, (slot, conn.generation));
            if let Some(stats) = self.state.metrics.reactor(self.index) {
                stats.conn_opened();
            }
        }

        fn close(&mut self, slot: usize) {
            if self.slab.remove(slot).is_some() {
                // Dropping the Conn closes the fd, which deregisters it
                // from epoll (the reactor holds no dup).
                if let Some(stats) = self.state.metrics.reactor(self.index) {
                    stats.conn_closed();
                }
            }
        }

        fn on_conn_event(&mut self, event: sys::EpollEvent) {
            let slot = token_slot(event.token());
            let Some(conn) = self.slab.get(slot) else { return };
            if !token_matches(event.token(), conn.generation) {
                return; // recycled slot; the event belongs to a past life
            }
            if event.readable() {
                if self.fill_rbuf(slot) == Flow::Closed {
                    return;
                }
            } else if !event.writable() {
                return;
            }
            self.pump(slot);
        }

        /// Reads until `WouldBlock`/EOF, appending to the receive
        /// buffer. The `http.read` failpoint injects transport faults at
        /// this boundary, exactly where the blocking reader had it.
        fn fill_rbuf(&mut self, slot: usize) -> Flow {
            if let Some(fault) = twig_util::failpoint!("http.read") {
                return match fault {
                    // An injected transport error behaves like any other
                    // socket I/O failure: silent close.
                    twig_util::failpoint::Fault::Error => {
                        self.close(slot);
                        Flow::Closed
                    }
                    // A torn read surfaces as a malformed request.
                    twig_util::failpoint::Fault::Partial(_) => {
                        self.fail_read(slot, &ReadOutcome::Malformed("injected torn read"))
                    }
                };
            }
            // Bound buffered-but-unparsed input: one full head + body
            // plus a read chunk of pipelined follow-on bytes.
            let rbuf_cap = self.limits.max_head_bytes + self.limits.max_body_bytes + READ_CHUNK;
            let scratch = &mut self.scratch;
            let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
            loop {
                if conn.rbuf.len() >= rbuf_cap {
                    // Backpressure: resume from `pump` once responses
                    // drain. The consumed edge is re-polled directly.
                    break;
                }
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.phase == Phase::Idle {
                            conn.phase = Phase::Busy { since: Instant::now() };
                        }
                        match scratch.get(..n) {
                            Some(filled) => conn.rbuf.extend_from_slice(filled),
                            None => break, // broken Read impl; treat as drained
                        }
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(slot);
                        return Flow::Closed;
                    }
                }
            }
            Flow::Live
        }

        /// Parses and dispatches every complete request buffered on the
        /// connection, then flushes; repeats while forward progress is
        /// possible without waiting on the socket.
        fn pump(&mut self, slot: usize) {
            loop {
                if self.process_rbuf(slot) == Flow::Closed {
                    return;
                }
                if self.flush(slot) == Flow::Closed {
                    return;
                }
                let Some(conn) = self.slab.get(slot) else { return };
                // Another round only pays off when the write queue fully
                // drained and buffered input may still hold requests
                // (the high-water pause above, or a paused read).
                let rbuf_cap = self.limits.max_head_bytes + self.limits.max_body_bytes;
                let read_was_paused = conn.rbuf.len() >= rbuf_cap;
                if !(conn.wq.is_empty() && !conn.rbuf.is_empty() && !conn.close_after_flush) {
                    break;
                }
                if read_was_paused && self.fill_rbuf(slot) == Flow::Closed {
                    return;
                }
                let Some(conn) = self.slab.get(slot) else { return };
                // Anything but NeedMore means at least one more request
                // (or an error) is ready to process this round.
                if let Ok(Parsed::NeedMore) = parse_request_bytes(&conn.rbuf, &self.limits) {
                    break;
                }
            }
            self.settle(slot);
        }

        /// Frames and dispatches requests out of the receive buffer.
        fn process_rbuf(&mut self, slot: usize) -> Flow {
            let mut dispatched = 0u64;
            loop {
                let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
                if conn.close_after_flush || conn.wq.pending() >= WRITE_HIGH_WATER {
                    break;
                }
                match parse_request_bytes(&conn.rbuf, &self.limits) {
                    Ok(Parsed::NeedMore) => {
                        if conn.peer_closed && !conn.rbuf.is_empty() {
                            // EOF mid-request: same taxonomy as the
                            // blocking reader.
                            let what = if crate::http::head_complete(&conn.rbuf) {
                                "connection closed mid-body"
                            } else {
                                "connection closed mid-head"
                            };
                            return self.fail_read(slot, &ReadOutcome::Malformed(what));
                        }
                        break;
                    }
                    Ok(Parsed::Request { request, consumed }) => {
                        conn.rbuf.drain(..consumed);
                        if dispatched > 0 {
                            self.state.metrics.pipelined_requests_total.inc();
                        }
                        dispatched += 1;
                        match process_request(&self.state, &request) {
                            Dispatched::Drop => {
                                // Injected dispatch fault: abandon the
                                // connection, response unsent — the peer
                                // observes a closed socket.
                                self.close(slot);
                                return Flow::Closed;
                            }
                            Dispatched::Respond(response) => {
                                // Evaluated after dispatch: the handler
                                // itself may have requested shutdown
                                // (`/admin/shutdown`), and drain policy
                                // closes every response.
                                let keep_alive =
                                    request.keep_alive() && !self.state.shutting_down();
                                let Some(conn) = self.slab.get_mut(slot) else {
                                    return Flow::Closed;
                                };
                                conn.wq.push(response, !keep_alive);
                                if !keep_alive {
                                    conn.close_after_flush = true;
                                }
                            }
                        }
                    }
                    Err(outcome) => return self.fail_read(slot, &outcome),
                }
            }
            Flow::Live
        }

        /// Answers a failed request read the way the blocking server
        /// did: typed error response where one is defined, silent close
        /// otherwise; either way the connection ends.
        fn fail_read(&mut self, slot: usize, outcome: &ReadOutcome) -> Flow {
            let response = read_error_response(&self.state, outcome);
            let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
            match response {
                Some(response) => {
                    self.state.metrics.count_status(response.status);
                    conn.rbuf.clear();
                    conn.wq.push(response, true);
                    conn.close_after_flush = true;
                    if self.flush(slot) == Flow::Closed {
                        return Flow::Closed;
                    }
                    self.settle(slot);
                    Flow::Live
                }
                None => {
                    self.close(slot);
                    Flow::Closed
                }
            }
        }

        /// Writes the pending response bytes until drained or
        /// `WouldBlock`. The `http.write` failpoint tears the stream at
        /// this boundary.
        fn flush(&mut self, slot: usize) -> Flow {
            let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
            if conn.wq.is_empty() {
                return self.after_flush(slot);
            }
            if let Some(fault) = twig_util::failpoint!("http.write") {
                if let twig_util::failpoint::Fault::Partial(keep_percent) = fault {
                    // Best-effort prefix, then sever: the client sees a
                    // torn response on a closed socket.
                    let cap = usize::try_from(keep_percent).unwrap_or(100).min(100);
                    let torn = conn.wq.pending() * cap / 100;
                    let mut slices: [IoSlice<'_>; MAX_IOVECS] =
                        std::array::from_fn(|_| IoSlice::new(&[]));
                    let count = conn.wq.slices(&mut slices);
                    let mut budget = torn;
                    for slice in slices.iter().take(count) {
                        if budget == 0 {
                            break;
                        }
                        let part = budget.min(slice.len());
                        if let Some(bytes) = slice.get(..part) {
                            let _ = conn.stream.write_all(bytes);
                        }
                        budget -= part;
                    }
                }
                self.close(slot);
                return Flow::Closed;
            }
            loop {
                let Some(conn) = self.slab.get_mut(slot) else { return Flow::Closed };
                let mut slices: [IoSlice<'_>; MAX_IOVECS] =
                    std::array::from_fn(|_| IoSlice::new(&[]));
                let count = conn.wq.slices(&mut slices);
                let Some(filled) = slices.get(..count) else { break };
                if filled.is_empty() {
                    break;
                }
                match conn.stream.write_vectored(filled) {
                    Ok(0) => {
                        self.close(slot);
                        return Flow::Closed;
                    }
                    Ok(n) => conn.wq.advance(n),
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => return Flow::Live,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(slot);
                        return Flow::Closed;
                    }
                }
            }
            self.after_flush(slot)
        }

        /// Post-drain disposition: close if a close was queued or the
        /// peer is gone with nothing left to serve.
        fn after_flush(&mut self, slot: usize) -> Flow {
            let Some(conn) = self.slab.get(slot) else { return Flow::Closed };
            if conn.close_after_flush || (conn.peer_closed && conn.rbuf.is_empty()) {
                self.close(slot);
                return Flow::Closed;
            }
            Flow::Live
        }

        /// Recomputes the connection's phase and deadline after a burst
        /// of work, rescheduling its wheel hint when it moved earlier.
        fn settle(&mut self, slot: usize) {
            let now = Instant::now();
            let limits_idle = self.limits.idle_deadline;
            let limits_read = self.limits.read_deadline;
            let Some(conn) = self.slab.get_mut(slot) else { return };
            let (phase, deadline) = if conn.rbuf.is_empty() && conn.wq.is_empty() {
                (Phase::Idle, now + limits_idle)
            } else {
                let since = match conn.phase {
                    Phase::Busy { since } => since,
                    Phase::Idle => now,
                };
                (Phase::Busy { since }, since + limits_read)
            };
            conn.phase = phase;
            if deadline < conn.deadline {
                // Moved earlier: the existing wheel hint fires too late
                // to notice, so plant a fresh one.
                self.wheel.schedule(deadline, (slot, conn.generation));
            }
            conn.deadline = deadline;
        }

        /// Visits due wheel entries, expiring connections whose
        /// authoritative deadline has truly passed and rescheduling the
        /// rest (lazy deletion).
        fn expire_due(&mut self) {
            let now = Instant::now();
            let mut due = std::mem::take(&mut self.due);
            self.wheel.expire(now, &mut due);
            for (slot, generation) in due.drain(..) {
                let Some(conn) = self.slab.get(slot) else { continue };
                if conn.generation != generation {
                    continue;
                }
                if conn.deadline > now {
                    // Early visit (stale or clamped hint): rearm at the
                    // authoritative deadline.
                    self.wheel.schedule(conn.deadline, (slot, generation));
                    continue;
                }
                match conn.phase {
                    // Idle keep-alive expiry closes silently — normal
                    // keep-alive churn, exactly like the blocking path.
                    Phase::Idle => self.close(slot),
                    Phase::Busy { .. } => {
                        if conn.wq.is_empty() && !conn.rbuf.is_empty() {
                            // A request started arriving but never
                            // completed: answer 408, then close.
                            let _ = self.fail_read(slot, &ReadOutcome::Timeout);
                            self.close(slot);
                        } else {
                            // Stalled flush (peer not reading): sever.
                            self.close(slot);
                        }
                    }
                }
            }
            self.due = due;
        }

        /// Transitions into drain mode (idempotent): stop accepting,
        /// reset backpressure escalation, shed idle connections.
        fn begin_drain(&mut self) {
            if self.draining {
                return;
            }
            self.draining = true;
            self.streak = 0;
            self.listener = None; // closes the shard; accepting stops
            for slot in 0..self.slab.slots.len() {
                let Some(conn) = self.slab.get(slot) else { continue };
                if conn.rbuf.is_empty() && conn.wq.is_empty() {
                    // Idle keep-alive connections close immediately; in
                    // flight ones finish their request (the response
                    // carries `Connection: close`) and then close.
                    self.close(slot);
                }
            }
        }
    }
}
