//! Per-connection state for the reactor: receive buffer, write queue,
//! and phase/deadline bookkeeping.
//!
//! One [`Conn`] is one state machine stepping read → parse → estimate →
//! write under edge-triggered readiness. The interesting piece is the
//! [`WriteQueue`]: responses serialize into one *reusable* buffer
//! (heads and small bodies inline), while large bodies are kept as the
//! owned `Vec` the handler already built and stitched in by offset —
//! flushing uses `write_vectored` across those segments, so a big
//! `/estimate` batch body is handed to the kernel without ever being
//! copied into the connection buffer.

use std::collections::VecDeque;
use std::io::IoSlice;
use std::net::TcpStream;
use std::time::Instant;

use crate::http::Response;

/// Bodies up to this size are copied inline into the write buffer;
/// larger ones ride out-of-line as their own vectored segment. 8 KiB
/// keeps typical estimate responses inline (one segment, one write)
/// while big batch and `/metrics` bodies skip the copy.
const INLINE_BODY_MAX: usize = 8 * 1024;

/// Most segments a single `write_vectored` submits.
pub(crate) const MAX_IOVECS: usize = 16;

/// What a connection is waiting on; drives which deadline applies.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Between requests: empty buffers, idle deadline.
    Idle,
    /// A request is partially received or a response is partially
    /// flushed; the stricter read deadline applies from `since`.
    Busy {
        /// When the connection left `Idle` (first byte of the pending
        /// request, or the moment a flush started stalling).
        since: Instant,
    },
}

/// One connection owned by a reactor.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Bytes received but not yet framed into a request.
    pub(crate) rbuf: Vec<u8>,
    /// Responses awaiting the socket.
    pub(crate) wq: WriteQueue,
    pub(crate) phase: Phase,
    /// Authoritative deadline; wheel entries are hints checked against
    /// this (lazy deletion).
    pub(crate) deadline: Instant,
    /// Slab generation, so recycled slots ignore stale wheel/epoll keys.
    pub(crate) generation: u64,
    /// Bytes moved (read or written) in the current progress window.
    /// A `Busy` connection that fails to move a minimum number of bytes
    /// per window is a slow-read/slow-write client and gets killed.
    pub(crate) progress: u64,
    /// When the current progress window closes.
    pub(crate) window_deadline: Instant,
    /// Earliest wheel hint planted for this connection; replanting only
    /// happens when the wanted wakeup is earlier than this (lazy
    /// deletion keeps stale later hints harmless).
    pub(crate) next_wake: Instant,
    /// Close once the write queue drains.
    pub(crate) close_after_flush: bool,
    /// Peer sent EOF (or RDHUP): serve what is buffered, then close.
    pub(crate) peer_closed: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, generation: u64, idle_until: Instant) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wq: WriteQueue::new(),
            phase: Phase::Idle,
            deadline: idle_until,
            generation,
            progress: 0,
            window_deadline: idle_until,
            next_wake: idle_until,
            close_after_flush: false,
            peer_closed: false,
        }
    }
}

/// A body too large to inline, spliced into the logical output stream
/// at byte offset `at` of the head buffer.
struct Tail {
    at: usize,
    body: Vec<u8>,
    written: usize,
}

/// The per-connection output queue (see module docs).
///
/// Logical output order: `buf[..tails[0].at]`, `tails[0].body`,
/// `buf[tails[0].at..tails[1].at]`, `tails[1].body`, …, `buf[last..]`.
/// `written` tracks progress within `buf`; the invariant
/// `written <= tails.front().at` holds because a tail is popped only
/// once fully sent.
pub(crate) struct WriteQueue {
    buf: Vec<u8>,
    written: usize,
    tails: VecDeque<Tail>,
}

impl WriteQueue {
    pub(crate) fn new() -> WriteQueue {
        WriteQueue { buf: Vec::new(), written: 0, tails: VecDeque::new() }
    }

    /// Serializes `response` onto the queue. Consumes the response so a
    /// large body becomes a zero-copy segment.
    pub(crate) fn push(&mut self, response: Response, close: bool) {
        response.encode_head_into(&mut self.buf, close);
        if response.body.len() > INLINE_BODY_MAX {
            self.tails.push_back(Tail { at: self.buf.len(), body: response.body, written: 0 });
        } else {
            self.buf.extend_from_slice(&response.body);
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.written == self.buf.len() && self.tails.is_empty()
    }

    /// Unsent bytes across all segments.
    pub(crate) fn pending(&self) -> usize {
        let tail_pending: usize = self.tails.iter().map(|t| t.body.len() - t.written).sum();
        self.buf.len() - self.written + tail_pending
    }

    /// Collects the unsent segments, in order, into `out`. Returns how
    /// many slices were filled.
    pub(crate) fn slices<'a>(&'a self, out: &mut [IoSlice<'a>; MAX_IOVECS]) -> usize {
        let mut count = 0;
        let mut cursor = self.written;
        let mut truncated = false;
        for tail in &self.tails {
            if count + 2 > MAX_IOVECS {
                // Later segments must wait for the next write call:
                // emitting the final head span now would reorder bytes.
                truncated = true;
                break;
            }
            if cursor < tail.at {
                if let Some(span) = self.buf.get(cursor..tail.at) {
                    out[count] = IoSlice::new(span);
                    count += 1;
                }
                cursor = tail.at;
            }
            if let Some(rest) = tail.body.get(tail.written..) {
                if !rest.is_empty() {
                    out[count] = IoSlice::new(rest);
                    count += 1;
                }
            }
        }
        if !truncated && count < MAX_IOVECS && cursor < self.buf.len() {
            if let Some(span) = self.buf.get(cursor..) {
                out[count] = IoSlice::new(span);
                count += 1;
            }
        }
        count
    }

    /// Records `n` bytes as sent, in logical order. Fully drained
    /// queues recycle the head buffer's capacity.
    pub(crate) fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let limit = self.tails.front().map_or(self.buf.len(), |t| t.at);
            if self.written < limit {
                let take = n.min(limit - self.written);
                self.written += take;
                n -= take;
                continue;
            }
            let Some(front) = self.tails.front_mut() else {
                break;
            };
            let take = n.min(front.body.len() - front.written);
            front.written += take;
            n -= take;
            if front.written == front.body.len() {
                self.tails.pop_front();
            } else {
                break;
            }
        }
        if self.is_empty() {
            self.buf.clear();
            self.written = 0;
            // A burst of big inline batches must not pin its high-water
            // capacity for an idle keep-alive connection's lifetime.
            if self.buf.capacity() > 4 * INLINE_BODY_MAX {
                self.buf.shrink_to(4 * INLINE_BODY_MAX);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response_with_body(len: usize) -> Response {
        Response::text(200, &"x".repeat(len))
    }

    /// Reassembles the logical stream by draining `n`-byte steps.
    fn drain_all(wq: &mut WriteQueue, step: usize) -> Vec<u8> {
        let mut out = Vec::new();
        while !wq.is_empty() {
            let mut slices: [IoSlice<'_>; MAX_IOVECS] = std::array::from_fn(|_| IoSlice::new(&[]));
            let count = wq.slices(&mut slices);
            assert!(count > 0, "non-empty queue must yield slices");
            let mut take = step.min(wq.pending());
            let mut collected = 0;
            for slice in slices.iter().take(count) {
                if take == 0 {
                    break;
                }
                let part = take.min(slice.len());
                out.extend_from_slice(&slice[..part]);
                take -= part;
                collected += part;
            }
            assert!(collected > 0, "a drain step must make progress");
            wq.advance(collected);
        }
        out
    }

    #[test]
    fn inline_and_tail_responses_keep_wire_order() {
        for step in [1, 7, 64, 1024, 1 << 20] {
            let mut wq = WriteQueue::new();
            let mut expected = Vec::new();
            for (len, close) in [(10, false), (40_000, false), (3, false), (20_000, true)] {
                let response = response_with_body(len);
                response.encode_into(&mut expected, close);
                wq.push(response_with_body(len), close);
            }
            assert_eq!(wq.pending(), expected.len());
            let got = drain_all(&mut wq, step);
            assert_eq!(got, expected, "step {step} reassembly");
        }
    }

    #[test]
    fn large_bodies_become_vectored_segments() {
        let mut wq = WriteQueue::new();
        wq.push(response_with_body(100_000), false);
        let mut slices: [IoSlice<'_>; MAX_IOVECS] = std::array::from_fn(|_| IoSlice::new(&[]));
        // Head span + out-of-line body.
        assert_eq!(wq.slices(&mut slices), 2);
        assert_eq!(slices[1].len(), 100_000);
    }

    #[test]
    fn drained_queue_recycles_and_shrinks() {
        let mut wq = WriteQueue::new();
        for _ in 0..64 {
            wq.push(response_with_body(INLINE_BODY_MAX), false);
        }
        let total = wq.pending();
        wq.advance(total);
        assert!(wq.is_empty());
        assert!(wq.buf.capacity() <= 4 * INLINE_BODY_MAX);
        // Reusable after drain.
        wq.push(response_with_body(5), true);
        assert!(!wq.is_empty());
    }
}
