//! Raw-syscall shim for the epoll reactor — the serve crate's single
//! `unsafe` boundary.
//!
//! The workspace bans dependencies, so the handful of facilities the
//! reactor needs beyond `std::net` come straight from libc (which
//! libstd already links — no new dependency): `epoll` itself, and
//! socket creation with `SO_REUSEPORT` set *before* `bind` (std's
//! `TcpListener::bind` binds eagerly, which is too late for port
//! sharding).
//!
//! The unsafe surface is kept minimal and is contained to this file:
//!
//! - seven `extern "C"` declarations (`socket`, `setsockopt`, `bind`,
//!   `listen`, `epoll_create1`, `epoll_ctl`, `epoll_wait`),
//! - `OwnedFd::from_raw_fd` on descriptors those calls return.
//!
//! Every descriptor is wrapped in an [`OwnedFd`] the moment it is
//! validated, so lifetimes and close() are managed by safe RAII from
//! then on; listener fds are further converted to `std::net::TcpListener`
//! (a safe `From`), so accepting, nonblocking mode, and local-addr
//! queries all go through std. No raw pointer outlives the call it is
//! passed to, and no `from_raw_parts` is involved anywhere.
#![allow(unsafe_code)]
#![cfg(target_os = "linux")]

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable-readiness event mask bit.
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable-readiness event mask bit.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition event mask bit (always reported; listed for masks).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup event mask bit (always reported; listed for masks).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEPORT: i32 = 15;
const LISTEN_BACKLOG: i32 = 1024;

/// One `struct epoll_event`. The kernel ABI packs this on x86-64 (and
/// only there); field reads below copy by value, so the unaligned
/// layout never produces a misaligned reference.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
#[repr(C, packed)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

/// One `struct epoll_event` (naturally aligned ABI on non-x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[derive(Clone, Copy)]
#[repr(C)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The token registered with [`Epoll::add`].
    pub(crate) fn token(self) -> u64 {
        self.data
    }

    /// Readable-readiness (or an error/hangup condition, which must
    /// wake the reader so it can observe the failure).
    pub(crate) fn readable(self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Writable-readiness.
    pub(crate) fn writable(self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }
}

mod ffi {
    use std::ffi::c_void;

    extern "C" {
        pub(super) fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub(super) fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const c_void,
            len: u32,
        ) -> i32;
        pub(super) fn bind(fd: i32, addr: *const c_void, len: u32) -> i32;
        pub(super) fn listen(fd: i32, backlog: i32) -> i32;
        pub(super) fn epoll_create1(flags: i32) -> i32;
        pub(super) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut c_void) -> i32;
        pub(super) fn epoll_wait(epfd: i32, events: *mut c_void, max: i32, timeout_ms: i32) -> i32;
    }
}

/// `struct sockaddr_in` (network byte order where the ABI says so).
#[repr(C)]
struct SockaddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

/// `struct sockaddr_in6`.
#[repr(C)]
struct SockaddrIn6 {
    family: u16,
    port_be: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is
        // validated before ownership is claimed, and from_raw_fd sees a
        // fresh descriptor nothing else owns.
        let fd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd was just returned by a successful epoll_create1 and
        // has exactly this one owner.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// Registers `fd` for edge-triggered readiness with `token` as the
    /// event payload.
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut event = EpollEvent { events, data: token };
        // SAFETY: the event pointer refers to a live stack value for the
        // duration of the call; the kernel copies it before returning.
        let rc = unsafe {
            ffi::epoll_ctl(
                self.fd.as_raw_fd(),
                EPOLL_CTL_ADD,
                fd,
                std::ptr::addr_of_mut!(event).cast(),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits up to `timeout_ms` for readiness, filling `events`.
    pub(crate) fn wait(&self, events: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<usize> {
        let capacity = i32::try_from(events.capacity()).unwrap_or(i32::MAX).max(1);
        events.clear();
        // SAFETY: the spare capacity of `events` is valid writable memory
        // for `capacity` EpollEvent values; the kernel writes at most
        // that many and we only set_len to the count it reports.
        let rc = unsafe {
            ffi::epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr().cast(), capacity, timeout_ms)
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let count = usize::try_from(rc).unwrap_or(0).min(events.capacity());
        // SAFETY: the kernel initialized the first `count` elements
        // (count is clamped to the capacity handed to epoll_wait).
        unsafe { events.set_len(count) };
        Ok(count)
    }
}

/// Creates a listener on `addr` with `SO_REUSEPORT` set before binding,
/// so several reactor shards can share one port. The result is a plain
/// `std::net::TcpListener`; all further operations on it are safe std.
pub(crate) fn reuseport_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: socket takes no pointers; the fd is validated below and
    // wrapped into its single OwnedFd owner immediately after.
    let raw = unsafe { ffi::socket(i32::from(domain), SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if raw < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: raw came from a successful socket() call just above and
    // nothing else has claimed it.
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };

    let one: i32 = 1;
    // SAFETY: the option value pointer refers to a live i32 for the
    // duration of the call and the length matches its size.
    let rc = unsafe {
        ffi::setsockopt(
            fd.as_raw_fd(),
            SOL_SOCKET,
            SO_REUSEPORT,
            std::ptr::addr_of!(one).cast(),
            size_of_u32::<i32>(),
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }

    match addr {
        SocketAddr::V4(v4) => {
            let sa = SockaddrIn {
                family: AF_INET,
                port_be: v4.port().to_be(),
                addr_be: u32::from_be_bytes(v4.ip().octets()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: the sockaddr pointer refers to a live, correctly
            // sized struct for the duration of the call.
            let rc = unsafe {
                ffi::bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast(),
                    size_of_u32::<SockaddrIn>(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockaddrIn6 {
                family: AF_INET6,
                port_be: v6.port().to_be(),
                flowinfo: 0,
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: the sockaddr pointer refers to a live, correctly
            // sized struct for the duration of the call.
            let rc = unsafe {
                ffi::bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast(),
                    size_of_u32::<SockaddrIn6>(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
    }

    // SAFETY: listen takes no pointers; fd is the bound socket above.
    let rc = unsafe { ffi::listen(fd.as_raw_fd(), LISTEN_BACKLOG) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(TcpListener::from(fd))
}

/// `size_of::<T>()` as the `u32` the socket ABI wants (every struct
/// passed here is tens of bytes, so the cast cannot truncate).
fn size_of_u32<T>() -> u32 {
    u32::try_from(std::mem::size_of::<T>()).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    #[test]
    fn two_shards_share_a_port_and_both_accept() {
        let first = reuseport_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = reuseport_listener(addr).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), addr.port());
        // The kernel hashes connections across shards; with both
        // listeners live, every connect must land on one of them.
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut accepted = 0;
        for _ in 0..8 {
            let client = TcpStream::connect(addr).unwrap();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                match first.accept().or_else(|_| second.accept()) {
                    Ok(_) => {
                        accepted += 1;
                        break;
                    }
                    Err(_) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(err) => panic!("accept never succeeded: {err}"),
                }
            }
            drop(client);
        }
        assert_eq!(accepted, 8);
    }

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let listener = reuseport_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), 0x5EED, EPOLLIN | EPOLLET).unwrap();
        let mut events = Vec::with_capacity(16);

        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let count = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(count, 1);
        assert_eq!(events[0].token(), 0x5EED);
        assert!(events[0].readable());

        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        // Edge-triggered: the consumed edge does not re-fire.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
