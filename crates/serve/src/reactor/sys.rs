//! Raw-syscall shim for the epoll reactor — the serve crate's single
//! `unsafe` boundary.
//!
//! The workspace bans dependencies, so the handful of facilities the
//! reactor needs beyond `std::net` come straight from libc (which
//! libstd already links — no new dependency): `epoll` itself, and
//! socket creation with `SO_REUSEPORT` set *before* `bind` (std's
//! `TcpListener::bind` binds eagerly, which is too late for port
//! sharding).
//!
//! The unsafe surface is kept minimal and is contained to this file:
//!
//! - ten `extern "C"` declarations (`socket`, `setsockopt`, `bind`,
//!   `listen`, `epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`,
//!   `getrlimit`, `setrlimit`),
//! - `OwnedFd::from_raw_fd` on descriptors those calls return.
//!
//! Every descriptor is wrapped in an [`OwnedFd`] the moment it is
//! validated, so lifetimes and close() are managed by safe RAII from
//! then on; listener fds are further converted to `std::net::TcpListener`
//! (a safe `From`), so accepting, nonblocking mode, and local-addr
//! queries all go through std. No raw pointer outlives the call it is
//! passed to, and no `from_raw_parts` is involved anywhere.
//!
//! ## Fault injection and EINTR discipline
//!
//! This module is also the reactor's syscall *fault boundary*: every
//! operation the reactor performs against the kernel funnels through a
//! shim here that consults a failpoint first (`sys.accept`,
//! `sys.epoll_ctl`, `sys.epoll_wait`, `sys.read`, `sys.write`,
//! `sys.eventfd`). `errno(...)` stages surface as the exact
//! `io::Error::from_raw_os_error` the kernel would produce; `partial(p)`
//! stages become short reads / short writes / spurious epoll wakeups.
//! Injection happens *before* [`retry_eintr`], deliberately: injected
//! `EINTR` exercises the reactor's own retry arms, while real signal
//! interruptions of `epoll_ctl`/`accept` are absorbed by the helper.
//!
//! `close` is the one syscall that must NOT be retried on `EINTR`: on
//! Linux the descriptor is freed before the interruption is reported,
//! so a retry could close a descriptor another thread just received.
//! Descriptor release therefore stays with `OwnedFd`'s Drop (libstd
//! calls `close` exactly once and ignores the result), which is the
//! correct Linux-side behavior.
#![allow(unsafe_code)]
#![cfg(target_os = "linux")]

use std::io::{self, IoSlice, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable-readiness event mask bit.
pub(crate) const EPOLLIN: u32 = 0x001;
/// Writable-readiness event mask bit.
pub(crate) const EPOLLOUT: u32 = 0x004;
/// Error condition event mask bit (always reported; listed for masks).
pub(crate) const EPOLLERR: u32 = 0x008;
/// Hangup event mask bit (always reported; listed for masks).
pub(crate) const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery.
pub(crate) const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// Interrupted system call.
pub(crate) const EINTR: i32 = 4;
/// Resource temporarily unavailable (`EWOULDBLOCK`).
pub(crate) const EAGAIN: i32 = 11;
/// Out of kernel memory.
pub(crate) const ENOMEM: i32 = 12;
/// System-wide file table full.
pub(crate) const ENFILE: i32 = 23;
/// Per-process fd limit reached.
pub(crate) const EMFILE: i32 = 24;
/// Connection aborted before accept completed.
pub(crate) const ECONNABORTED: i32 = 103;
/// Connection reset by peer.
pub(crate) const ECONNRESET: i32 = 104;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEPORT: i32 = 15;
const LISTEN_BACKLOG: i32 = 1024;

/// One `struct epoll_event`. The kernel ABI packs this on x86-64 (and
/// only there); field reads below copy by value, so the unaligned
/// layout never produces a misaligned reference.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy)]
#[repr(C, packed)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

/// One `struct epoll_event` (naturally aligned ABI on non-x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[derive(Clone, Copy)]
#[repr(C)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// The token registered with [`Epoll::add`].
    pub(crate) fn token(self) -> u64 {
        self.data
    }

    /// Readable-readiness (or an error/hangup condition, which must
    /// wake the reader so it can observe the failure).
    pub(crate) fn readable(self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Writable-readiness.
    pub(crate) fn writable(self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }
}

mod ffi {
    use std::ffi::c_void;

    extern "C" {
        pub(super) fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub(super) fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const c_void,
            len: u32,
        ) -> i32;
        pub(super) fn bind(fd: i32, addr: *const c_void, len: u32) -> i32;
        pub(super) fn listen(fd: i32, backlog: i32) -> i32;
        pub(super) fn epoll_create1(flags: i32) -> i32;
        pub(super) fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut c_void) -> i32;
        pub(super) fn epoll_wait(epfd: i32, events: *mut c_void, max: i32, timeout_ms: i32) -> i32;
        pub(super) fn eventfd(initval: u32, flags: i32) -> i32;
        pub(super) fn getrlimit(resource: i32, rlim: *mut c_void) -> i32;
        pub(super) fn setrlimit(resource: i32, rlim: *const c_void) -> i32;
    }
}

/// Retries `op` while it fails with `EINTR`. This is the shared retry
/// discipline for interruptible syscalls (`accept`, `epoll_ctl`,
/// blocking reads/writes); see the module docs for why `close` is
/// deliberately excluded.
pub(crate) fn retry_eintr<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    loop {
        match op() {
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            other => return other,
        }
    }
}

/// Short-I/O length for a `partial(keep)` fault: at least one byte, so
/// an injected short write is never confused with a peer close
/// (`Ok(0)`), and a short read still makes forward progress.
fn short_len(len: usize, keep_percent: u32) -> usize {
    if len == 0 {
        return 0;
    }
    let keep = usize::try_from(keep_percent.min(100)).unwrap_or(100);
    len.checked_mul(keep).map_or(len, |scaled| scaled / 100).max(1)
}

/// Accepts one connection, with the `sys.accept` failpoint in front:
/// `errno(E)` surfaces as that raw OS error (the reactor's accept-error
/// taxonomy sees exactly what the kernel would produce), `error` as
/// `ECONNABORTED`. Real `EINTR` is absorbed by [`retry_eintr`];
/// injected `EINTR` deliberately reaches the caller's retry arm.
pub(crate) fn accept(listener: &TcpListener) -> io::Result<(TcpStream, SocketAddr)> {
    if let Some(fault) = twig_util::failpoint!("sys.accept") {
        return Err(match fault {
            twig_util::failpoint::Fault::Errno(code) => io::Error::from_raw_os_error(code),
            twig_util::failpoint::Fault::Error | twig_util::failpoint::Fault::Partial(_) => {
                io::Error::from_raw_os_error(ECONNABORTED)
            }
        });
    }
    retry_eintr(|| listener.accept())
}

/// Reads into `buf`, with the `sys.read` failpoint in front: `errno(E)`
/// fails with that raw OS error; `partial(p)` caps the buffer *before*
/// the read (a genuine short read — no buffered bytes are lost), so
/// request framing sees exactly what a stingy kernel would deliver.
pub(crate) fn read(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<usize> {
    if let Some(fault) = twig_util::failpoint!("sys.read") {
        match fault {
            twig_util::failpoint::Fault::Errno(code) => {
                return Err(io::Error::from_raw_os_error(code));
            }
            twig_util::failpoint::Fault::Error => {
                return Err(io::Error::from_raw_os_error(ECONNRESET));
            }
            twig_util::failpoint::Fault::Partial(keep) => {
                let cap = short_len(buf.len(), keep);
                let Some(head) = buf.get_mut(..cap) else { return Ok(0) };
                return stream.read(head);
            }
        }
    }
    stream.read(buf)
}

/// Vectored write, with the `sys.write` failpoint in front: `errno(E)`
/// fails with that raw OS error; `partial(p)` writes only a prefix of
/// the first non-empty slice (at least one byte — `Ok(0)` from a
/// writable socket means the connection died, and an injected short
/// write must not impersonate that).
pub(crate) fn write_vectored(stream: &mut TcpStream, slices: &[IoSlice<'_>]) -> io::Result<usize> {
    if let Some(fault) = twig_util::failpoint!("sys.write") {
        match fault {
            twig_util::failpoint::Fault::Errno(code) => {
                return Err(io::Error::from_raw_os_error(code));
            }
            twig_util::failpoint::Fault::Error => {
                return Err(io::Error::from_raw_os_error(EPIPE_ERRNO));
            }
            twig_util::failpoint::Fault::Partial(keep) => {
                for slice in slices {
                    if slice.is_empty() {
                        continue;
                    }
                    let cap = short_len(slice.len(), keep);
                    let Some(head) = slice.get(..cap) else { continue };
                    return stream.write(head);
                }
                return Ok(0);
            }
        }
    }
    stream.write_vectored(slices)
}

/// Broken pipe — only used by the `sys.write` `error` mapping.
const EPIPE_ERRNO: i32 = 32;

/// Creates a nonblocking close-on-exec eventfd (the reactor's wakeup
/// channel), with the `sys.eventfd` failpoint in front so creation
/// failure (`ENOMEM`, fd exhaustion) is injectable — the reactor must
/// degrade to timeout polling, not die.
pub(crate) fn eventfd() -> io::Result<OwnedFd> {
    if let Some(fault) = twig_util::failpoint!("sys.eventfd") {
        return Err(match fault {
            twig_util::failpoint::Fault::Errno(code) => io::Error::from_raw_os_error(code),
            twig_util::failpoint::Fault::Error | twig_util::failpoint::Fault::Partial(_) => {
                io::Error::from_raw_os_error(ENOMEM)
            }
        });
    }
    // SAFETY: eventfd takes no pointers; the returned fd is validated
    // before ownership is claimed and has exactly this one owner.
    let fd = unsafe { ffi::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fd was just returned by a successful eventfd call.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Posts one wakeup to an eventfd. The 8-byte counter write cannot
/// short-write; `EAGAIN` (counter saturated) already means the reader
/// has a pending wakeup, so it is success for our purposes.
pub(crate) fn eventfd_signal(fd: &OwnedFd) -> io::Result<()> {
    let payload = 1u64.to_ne_bytes();
    let mut file = std::fs::File::from(fd.try_clone()?);
    match retry_eintr(|| file.write(&payload)) {
        Ok(_) => Ok(()),
        Err(error) if error.raw_os_error() == Some(EAGAIN) => Ok(()),
        Err(error) => Err(error),
    }
}

/// Drains a nonblocking eventfd so the next signal produces a fresh
/// edge. `EAGAIN` (nothing pending — a spurious wake) is fine.
pub(crate) fn eventfd_drain(fd: &OwnedFd) {
    let mut counter = [0u8; 8];
    if let Ok(clone) = fd.try_clone() {
        let mut file = std::fs::File::from(clone);
        let _ = retry_eintr(|| file.read(&mut counter));
    }
}

/// `RLIMIT_NOFILE` on Linux.
const RLIMIT_NOFILE: i32 = 7;

/// `struct rlimit` (64-bit fields on Linux).
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rlimit {
    /// Soft limit — the one the kernel enforces.
    pub cur: u64,
    /// Hard ceiling the soft limit may be raised back up to.
    pub max: u64,
}

/// Reads the process `RLIMIT_NOFILE` (soft, hard).
pub fn nofile_limit() -> io::Result<Rlimit> {
    let mut limit = Rlimit { cur: 0, max: 0 };
    // SAFETY: the rlim pointer refers to a live, correctly sized struct
    // for the duration of the call; the kernel fills it before return.
    let rc = unsafe { ffi::getrlimit(RLIMIT_NOFILE, std::ptr::addr_of_mut!(limit).cast()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(limit)
}

/// Sets the process `RLIMIT_NOFILE`. Used by the chaos harness to run
/// the server into genuine fd exhaustion (and restore afterwards).
pub fn set_nofile_limit(limit: Rlimit) -> io::Result<()> {
    // SAFETY: the rlim pointer refers to a live, correctly sized struct
    // for the duration of the call; the kernel copies it.
    let rc = unsafe { ffi::setrlimit(RLIMIT_NOFILE, std::ptr::addr_of!(limit).cast()) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// `struct sockaddr_in` (network byte order where the ABI says so).
#[repr(C)]
struct SockaddrIn {
    family: u16,
    port_be: u16,
    addr_be: u32,
    zero: [u8; 8],
}

/// `struct sockaddr_in6`.
#[repr(C)]
struct SockaddrIn6 {
    family: u16,
    port_be: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// An owned epoll instance.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is
        // validated before ownership is claimed, and from_raw_fd sees a
        // fresh descriptor nothing else owns.
        let fd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd was just returned by a successful epoll_create1 and
        // has exactly this one owner.
        Ok(Epoll { fd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    /// Registers `fd` for edge-triggered readiness with `token` as the
    /// event payload. Failpoint `sys.epoll_ctl`: `errno(E)` fails the
    /// registration; real `EINTR` is retried by [`retry_eintr`].
    pub(crate) fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        if let Some(fault) = twig_util::failpoint!("sys.epoll_ctl") {
            return Err(match fault {
                twig_util::failpoint::Fault::Errno(code) => io::Error::from_raw_os_error(code),
                twig_util::failpoint::Fault::Error | twig_util::failpoint::Fault::Partial(_) => {
                    io::Error::from_raw_os_error(ENOMEM)
                }
            });
        }
        retry_eintr(|| {
            let mut event = EpollEvent { events, data: token };
            // SAFETY: the event pointer refers to a live stack value for
            // the duration of the call; the kernel copies it before
            // returning.
            let rc = unsafe {
                ffi::epoll_ctl(
                    self.fd.as_raw_fd(),
                    EPOLL_CTL_ADD,
                    fd,
                    std::ptr::addr_of_mut!(event).cast(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        })
    }

    /// Waits up to `timeout_ms` for readiness, filling `events`.
    /// Failpoint `sys.epoll_wait`: `errno(EINTR)` exercises the serve
    /// loop's interrupted-wait arm; `partial(p)` returns a spurious
    /// wakeup (zero events) — the loop must treat both as non-fatal.
    pub(crate) fn wait(&self, events: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        if let Some(fault) = twig_util::failpoint!("sys.epoll_wait") {
            return match fault {
                twig_util::failpoint::Fault::Errno(code) => Err(io::Error::from_raw_os_error(code)),
                twig_util::failpoint::Fault::Error => Err(io::Error::from_raw_os_error(EINTR)),
                twig_util::failpoint::Fault::Partial(_) => Ok(0),
            };
        }
        let capacity = i32::try_from(events.capacity()).unwrap_or(i32::MAX).max(1);
        // SAFETY: the spare capacity of `events` is valid writable memory
        // for `capacity` EpollEvent values; the kernel writes at most
        // that many and we only set_len to the count it reports.
        let rc = unsafe {
            ffi::epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr().cast(), capacity, timeout_ms)
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let count = usize::try_from(rc).unwrap_or(0).min(events.capacity());
        // SAFETY: the kernel initialized the first `count` elements
        // (count is clamped to the capacity handed to epoll_wait).
        unsafe { events.set_len(count) };
        Ok(count)
    }
}

/// Creates a listener on `addr` with `SO_REUSEPORT` set before binding,
/// so several reactor shards can share one port. The result is a plain
/// `std::net::TcpListener`; all further operations on it are safe std.
pub(crate) fn reuseport_listener(addr: SocketAddr) -> io::Result<TcpListener> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: socket takes no pointers; the fd is validated below and
    // wrapped into its single OwnedFd owner immediately after.
    let raw = unsafe { ffi::socket(i32::from(domain), SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if raw < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: raw came from a successful socket() call just above and
    // nothing else has claimed it.
    let fd = unsafe { OwnedFd::from_raw_fd(raw) };

    let one: i32 = 1;
    // SAFETY: the option value pointer refers to a live i32 for the
    // duration of the call and the length matches its size.
    let rc = unsafe {
        ffi::setsockopt(
            fd.as_raw_fd(),
            SOL_SOCKET,
            SO_REUSEPORT,
            std::ptr::addr_of!(one).cast(),
            size_of_u32::<i32>(),
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }

    match addr {
        SocketAddr::V4(v4) => {
            let sa = SockaddrIn {
                family: AF_INET,
                port_be: v4.port().to_be(),
                addr_be: u32::from_be_bytes(v4.ip().octets()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: the sockaddr pointer refers to a live, correctly
            // sized struct for the duration of the call.
            let rc = unsafe {
                ffi::bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast(),
                    size_of_u32::<SockaddrIn>(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockaddrIn6 {
                family: AF_INET6,
                port_be: v6.port().to_be(),
                flowinfo: 0,
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: the sockaddr pointer refers to a live, correctly
            // sized struct for the duration of the call.
            let rc = unsafe {
                ffi::bind(
                    fd.as_raw_fd(),
                    std::ptr::addr_of!(sa).cast(),
                    size_of_u32::<SockaddrIn6>(),
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
        }
    }

    // SAFETY: listen takes no pointers; fd is the bound socket above.
    let rc = unsafe { ffi::listen(fd.as_raw_fd(), LISTEN_BACKLOG) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(TcpListener::from(fd))
}

/// `size_of::<T>()` as the `u32` the socket ABI wants (every struct
/// passed here is tens of bytes, so the cast cannot truncate).
fn size_of_u32<T>() -> u32 {
    u32::try_from(std::mem::size_of::<T>()).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn two_shards_share_a_port_and_both_accept() {
        let first = reuseport_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = reuseport_listener(addr).unwrap();
        assert_eq!(second.local_addr().unwrap().port(), addr.port());
        // The kernel hashes connections across shards; with both
        // listeners live, every connect must land on one of them.
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut accepted = 0;
        for _ in 0..8 {
            let client = TcpStream::connect(addr).unwrap();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                match first.accept().or_else(|_| second.accept()) {
                    Ok(_) => {
                        accepted += 1;
                        break;
                    }
                    Err(_) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(err) => panic!("accept never succeeded: {err}"),
                }
            }
            drop(client);
        }
        assert_eq!(accepted, 8);
    }

    #[test]
    fn errno_mapping_matches_io_error_kinds() {
        // The reactor's taxonomy leans on these std mappings; pin them.
        assert_eq!(io::Error::from_raw_os_error(EINTR).kind(), io::ErrorKind::Interrupted);
        assert_eq!(io::Error::from_raw_os_error(EAGAIN).kind(), io::ErrorKind::WouldBlock);
        assert_eq!(io::Error::from_raw_os_error(ENOMEM).kind(), io::ErrorKind::OutOfMemory);
        assert_eq!(
            io::Error::from_raw_os_error(ECONNABORTED).kind(),
            io::ErrorKind::ConnectionAborted
        );
        assert_eq!(io::Error::from_raw_os_error(ECONNRESET).kind(), io::ErrorKind::ConnectionReset);
        // EMFILE/ENFILE have no stable ErrorKind; the reactor matches on
        // raw_os_error, which must round-trip.
        assert_eq!(io::Error::from_raw_os_error(EMFILE).raw_os_error(), Some(EMFILE));
        assert_eq!(io::Error::from_raw_os_error(ENFILE).raw_os_error(), Some(ENFILE));
    }

    #[test]
    fn retry_eintr_retries_only_interruptions() {
        let mut attempts = 0;
        let result: io::Result<u32> = retry_eintr(|| {
            attempts += 1;
            if attempts < 3 {
                Err(io::Error::from_raw_os_error(EINTR))
            } else {
                Ok(7)
            }
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(attempts, 3);

        let mut attempts = 0;
        let result: io::Result<u32> = retry_eintr(|| {
            attempts += 1;
            Err(io::Error::from_raw_os_error(EMFILE))
        });
        assert_eq!(result.unwrap_err().raw_os_error(), Some(EMFILE));
        assert_eq!(attempts, 1, "non-EINTR errors must not be retried");
    }

    #[test]
    fn short_len_always_makes_progress() {
        assert_eq!(short_len(0, 50), 0);
        assert_eq!(short_len(100, 0), 1, "a short I/O still moves one byte");
        assert_eq!(short_len(100, 35), 35);
        assert_eq!(short_len(100, 100), 100);
        assert_eq!(short_len(1, 200), 1, "percent is clamped");
    }

    #[test]
    fn eventfd_signals_and_drains() {
        let fd = eventfd().unwrap();
        eventfd_signal(&fd).unwrap();
        eventfd_signal(&fd).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(fd.as_raw_fd(), 9, EPOLLIN | EPOLLET).unwrap();
        let mut events = Vec::with_capacity(4);
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token(), 9);
        eventfd_drain(&fd);
        // Drained: the edge is consumed and a fresh signal re-arms it.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        eventfd_signal(&fd).unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn nofile_limit_round_trips() {
        let limit = nofile_limit().unwrap();
        assert!(limit.cur > 0 && limit.cur <= limit.max);
        // Setting the limit to its current value must be accepted.
        set_nofile_limit(limit).unwrap();
        assert_eq!(nofile_limit().unwrap(), limit);
    }

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let listener = reuseport_listener("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), 0x5EED, EPOLLIN | EPOLLET).unwrap();
        let mut events = Vec::with_capacity(16);

        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let count = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(count, 1);
        assert_eq!(events[0].token(), 0x5EED);
        assert!(events[0].readable());

        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        // Edge-triggered: the consumed edge does not re-fire.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
