//! The estimation server: routing, endpoint handlers, backpressure and
//! graceful shutdown, hosted on the reactor event loop.
//!
//! Threading model (documented in DESIGN.md §15): on Linux,
//! [`Server::run`] hands its `SO_REUSEPORT` listener shard to
//! `reactor::run`, which spawns one epoll reactor per configured worker;
//! each reactor owns a shard of the same port and a slab of nonblocking
//! connection state machines. Admission control is per reactor: past its
//! share of `workers + queue_capacity` connections it writes a `503`
//! with an escalating `Retry-After` hint and closes — one small write,
//! never a queued latency pile-up. Shutdown stops admission, lets every
//! connection finish the request in flight (responses during drain carry
//! `Connection: close`), then joins all reactors. Elsewhere a portable
//! blocking fallback (thread per admitted connection, same admission cap
//! and drain policy) preserves the contract.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use twig_core::{Algorithm, CountKind};
use twig_tree::Twig;
use twig_util::cast::{count_to_f64, size_to_u64};
use twig_util::rng::SplitMix64;

use crate::http::{read_request, Limits, ReadOutcome, Request, Response};
use crate::json::Json;
use crate::metrics::ServeMetrics;
use crate::plan::{CachedPlan, PlanCache};
use crate::registry::{error_chain, SummaryRegistry};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= maximum concurrently served connections).
    pub workers: usize,
    /// Connections allowed to wait for a worker before `503`.
    pub queue_capacity: usize,
    /// Maximum request body size, bytes.
    pub max_body_bytes: usize,
    /// Maximum queries per `/estimate` body.
    pub max_batch: usize,
    /// Per-request read deadline.
    pub read_deadline: Duration,
    /// Keep-alive idle deadline.
    pub idle_deadline: Duration,
    /// Query plans cached across `/estimate` requests (0 disables).
    pub plan_cache_capacity: usize,
    /// Progress-window width for busy connections: every window, a
    /// connection mid-request (or mid-response) must move at least
    /// [`ServerConfig::min_progress_bytes`] or it is killed as a
    /// slow-read/slow-write client (slowloris defense, reactor only).
    pub progress_window: Duration,
    /// Minimum bytes a busy connection must move per progress window.
    pub min_progress_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            queue_capacity: 64,
            max_body_bytes: 1024 * 1024,
            max_batch: 4096,
            read_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(30),
            plan_cache_capacity: 1024,
            progress_window: Duration::from_secs(2),
            min_progress_bytes: 128,
        }
    }
}

/// State shared between the reactors and handles.
pub struct ServerState {
    pub(crate) config: ServerConfig,
    registry: SummaryRegistry,
    pub(crate) metrics: ServeMetrics,
    plans: PlanCache,
    pub(crate) shutdown: AtomicBool,
    started: Instant,
    /// One eventfd per reactor that managed to create one; signalled on
    /// shutdown so a reactor parked in `epoll_wait` wakes immediately
    /// instead of at its next poll-cap timeout.
    #[cfg(target_os = "linux")]
    wakers: std::sync::Mutex<Vec<std::os::fd::OwnedFd>>,
}

impl ServerState {
    /// The summary registry (e.g. to inspect from tests or the CLI).
    #[must_use]
    pub fn registry(&self) -> &SummaryRegistry {
        &self.registry
    }

    /// The server metrics.
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Sets the shutdown flag and wakes every parked reactor. Safe to
    /// call repeatedly and from any thread (handles, routes, reactors
    /// reporting fatal errors).
    pub(crate) fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        {
            // A poisoned lock only means some thread panicked while
            // registering; waking the survivors still matters.
            let wakers = match self.wakers.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            for waker in wakers.iter() {
                let _ = crate::reactor::sys::eventfd_signal(waker);
            }
        }
    }

    /// Registers a reactor's wakeup eventfd for shutdown signalling.
    #[cfg(target_os = "linux")]
    pub(crate) fn register_waker(&self, fd: std::os::fd::OwnedFd) {
        let mut wakers = match self.wakers.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        wakers.push(fd);
    }

    /// Bare state for reactor unit tests: no listener, no threads.
    #[cfg(all(test, target_os = "linux"))]
    pub(crate) fn test_state(config: ServerConfig) -> Arc<ServerState> {
        Arc::new(ServerState {
            plans: PlanCache::new(config.workers.max(1), config.plan_cache_capacity),
            config,
            registry: SummaryRegistry::new(),
            metrics: ServeMetrics::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            wakers: std::sync::Mutex::new(Vec::new()),
        })
    }
}

/// A cloneable handle that can stop a running server.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Requests shutdown: admission stops, parked reactors wake,
    /// in-flight work drains, [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    /// Shared state access (registry, metrics).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        &self.state
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and wraps
    /// `registry` with `config`.
    pub fn bind(
        addr: &str,
        config: ServerConfig,
        registry: SummaryRegistry,
    ) -> std::io::Result<Server> {
        // The first listener shard; `run` adds sibling `SO_REUSEPORT`
        // shards on the same resolved address, one per reactor.
        #[cfg(target_os = "linux")]
        let listener = crate::reactor::bind_shard(addr)?;
        #[cfg(not(target_os = "linux"))]
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            state: Arc::new(ServerState {
                plans: PlanCache::new(config.workers.max(1), config.plan_cache_capacity),
                config,
                registry,
                metrics: ServeMetrics::new(),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                #[cfg(target_os = "linux")]
                wakers: std::sync::Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping the server from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state) }
    }

    /// Serves until shutdown is requested, then drains and returns.
    pub fn run(self) -> std::io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            crate::reactor::run(self.listener, self.state)
        }
        #[cfg(not(target_os = "linux"))]
        {
            run_blocking(self.listener, self.state)
        }
    }
}

/// Portable fallback serve loop for platforms without the epoll
/// reactor: one accept thread plus a blocking thread per admitted
/// connection, capped at the same `workers + queue_capacity` total the
/// reactor model enforces. Admission 503s, `Retry-After` escalation,
/// failpoints (inside `read_request`/`process_request`) and the drain
/// contract all match the reactor path.
#[cfg_attr(target_os = "linux", allow(dead_code))]
fn run_blocking(listener: TcpListener, state: Arc<ServerState>) -> std::io::Result<()> {
    use std::sync::atomic::AtomicUsize;

    let capacity = state.config.workers.max(1) + state.config.queue_capacity;
    let active = Arc::new(AtomicUsize::new(0));
    let mut streak = 0u64;
    listener.set_nonblocking(true)?;
    let result = loop {
        if state.shutting_down() {
            break Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections_total.inc();
                // Accepted sockets must be blocking regardless of what
                // the listener inherits; per-call read timeouts wait.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                if active.load(Ordering::SeqCst) >= capacity {
                    streak += 1;
                    state.metrics.rejected_saturated.inc();
                    state.metrics.count_status(503);
                    reject_connection(
                        stream,
                        "server saturated, retry shortly",
                        retry_after_secs(streak),
                    );
                    continue;
                }
                streak = 0;
                active.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(&state);
                let conn_active = Arc::clone(&active);
                let spawned =
                    std::thread::Builder::new().name("twig-serve-conn".into()).spawn(move || {
                        handle_connection(stream, &conn_state);
                        conn_active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            // Transient per-connection failures (peer reset during the
            // handshake); keep serving.
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(err) => {
                // Fatal listener error: begin shutdown so in-flight work
                // still drains, then surface the error.
                state.shutdown.store(true, Ordering::SeqCst);
                break Err(err);
            }
        }
    };
    drop(listener); // stop accepting before the drain
    while active.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    result
}

/// `Retry-After` hint for a saturation rejection. The first rejections
/// of a streak hint an immediate retry; a sustained streak escalates
/// the hint with deterministic per-streak jitter so shed clients spread
/// out instead of thundering back in lockstep.
pub(crate) fn retry_after_secs(streak: u64) -> u64 {
    if streak <= 8 {
        return 1;
    }
    let base = (streak / 8).min(8);
    let mut rng = SplitMix64::new(streak);
    let jitter = rng.next_below(base + 1);
    (base + jitter).min(16)
}

/// The HTTP limits a server config implies.
pub(crate) fn limits_for(config: &ServerConfig) -> Limits {
    Limits {
        max_head_bytes: 16 * 1024,
        max_body_bytes: config.max_body_bytes,
        read_deadline: config.read_deadline,
        idle_deadline: config.idle_deadline,
    }
}

/// Writes the admission-control `503` from the accepting thread. A
/// short write timeout bounds how long a slow client can stall accepts.
pub(crate) fn reject_connection(mut stream: TcpStream, message: &str, retry_secs: u64) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let response = error_response(503, "saturated", message)
        .with_header("retry-after", retry_secs.to_string());
    let _ = response.write_to(&mut stream, true);
    let _ = stream.flush();
}

/// How a dispatched request ended.
pub(crate) enum Dispatched {
    /// An injected dispatch fault consumed the request: the connection
    /// must drop with no response at all (what a dead worker looked
    /// like under the retired thread pool).
    Drop,
    /// The handler produced a response (possibly the panic `500`).
    Respond(Response),
}

/// Runs one parsed request through the `pool.dispatch` failpoint and
/// the router, with panic containment: a panicking handler costs the
/// client a `500`, never the serving thread. Status-class and latency
/// metrics are recorded here.
pub(crate) fn process_request(state: &Arc<ServerState>, request: &Request) -> Dispatched {
    enum Step {
        Drop,
        Respond(Response),
    }
    let started = Instant::now();
    let routed = std::panic::catch_unwind(AssertUnwindSafe(|| {
        // The dispatch failpoint sits where the pool's job hand-off
        // used to be: before the request counts as routed.
        if twig_util::failpoint!("pool.dispatch").is_some() {
            return Step::Drop;
        }
        state.metrics.requests_total.inc();
        Step::Respond(route(request, state))
    }));
    match routed {
        Ok(Step::Drop) => Dispatched::Drop,
        Ok(Step::Respond(response)) => {
            state.metrics.count_status(response.status);
            state.metrics.request_latency_us.record(micros(started.elapsed()));
            Dispatched::Respond(response)
        }
        Err(payload) => {
            state.metrics.worker_panics_total.inc();
            if payload.is::<twig_util::failpoint::PointPanic>() {
                // An injected dispatch panic kills the connection the
                // way the old pool worker died: silently.
                Dispatched::Drop
            } else {
                let response = error_response(
                    500,
                    "internal_panic",
                    "request handler panicked; the worker recovered",
                );
                state.metrics.count_status(response.status);
                state.metrics.request_latency_us.record(micros(started.elapsed()));
                Dispatched::Respond(response)
            }
        }
    }
}

/// Serves one connection for its whole lifetime (any number of
/// keep-alive requests). Fallback path only; the reactor runs the same
/// request pipeline nonblocking.
#[cfg_attr(target_os = "linux", allow(dead_code))]
fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let limits = limits_for(&state.config);
    loop {
        let shutdown_probe = || state.shutting_down();
        match read_request(&mut stream, &limits, &shutdown_probe) {
            Ok(request) => {
                match process_request(state, &request) {
                    Dispatched::Drop => return,
                    Dispatched::Respond(response) => {
                        // Evaluated after dispatch (the handler may have
                        // requested shutdown); during shutdown every
                        // response closes.
                        let keep_alive = request.keep_alive() && !state.shutting_down();
                        if response.write_to(&mut stream, !keep_alive).is_err() || !keep_alive {
                            return;
                        }
                    }
                }
            }
            Err(outcome) => {
                if let Some(response) = read_error_response(state, &outcome) {
                    state.metrics.count_status(response.status);
                    let _ = response.write_to(&mut stream, true);
                }
                return;
            }
        }
    }
}

/// The error response (if any) owed for a failed request read; the
/// connection closes either way. Pure mapping — the caller counts the
/// status and writes the response on its own I/O path.
pub(crate) fn read_error_response(state: &ServerState, outcome: &ReadOutcome) -> Option<Response> {
    match outcome {
        // Nothing arrived (clean close / idle / shutdown while idle):
        // closing silently is the correct keep-alive protocol.
        ReadOutcome::Closed | ReadOutcome::IdleTimeout | ReadOutcome::ShuttingDown => None,
        ReadOutcome::Io(_) => None,
        ReadOutcome::Timeout => Some(error_response(408, "timeout", "request read timed out")),
        ReadOutcome::HeadTooLarge => {
            Some(error_response(431, "head_too_large", "request head too large"))
        }
        ReadOutcome::BodyTooLarge { declared } => Some(error_response(
            413,
            "body_too_large",
            &format!(
                "request body of {declared} bytes exceeds the {}-byte limit",
                state.config.max_body_bytes
            ),
        )),
        ReadOutcome::Malformed(what) => {
            Some(error_response(400, "malformed", &format!("malformed request: {what}")))
        }
    }
}

fn route(request: &Request, state: &Arc<ServerState>) -> Response {
    match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/summaries") => handle_summaries(state),
        ("GET", "/metrics") => handle_metrics(state),
        ("POST", "/estimate") => handle_estimate(request, state),
        ("POST", "/admin/reload") => handle_reload(state),
        ("POST", "/admin/shutdown") => {
            state.request_shutdown();
            Response::json(200, &Json::Obj(vec![("status".into(), Json::str("shutting down"))]))
        }
        (
            _,
            "/healthz" | "/summaries" | "/metrics" | "/estimate" | "/admin/reload"
            | "/admin/shutdown",
        ) => error_response(
            405,
            "method_not_allowed",
            &format!("{} does not support {}", request.path(), request.method),
        ),
        (_, path) => error_response(404, "not_found", &format!("no such endpoint: {path}")),
    }
}

/// Registry-level gauges appended after the fixed counter set: how many
/// summaries are serving a stale (degraded) generation, and how many
/// snapshot persists have failed.
fn handle_metrics(state: &Arc<ServerState>) -> Response {
    let mut body = state.metrics.render_prometheus();
    body.push_str("# HELP twig_serve_degraded Summaries serving a stale generation\n");
    body.push_str("# TYPE twig_serve_degraded gauge\n");
    body.push_str(&format!("twig_serve_degraded {}\n", state.registry.degraded()));
    body.push_str("# HELP twig_serve_snapshot_failures_total Snapshot persists that failed\n");
    body.push_str("# TYPE twig_serve_snapshot_failures_total counter\n");
    body.push_str(&format!(
        "twig_serve_snapshot_failures_total {}\n",
        state.registry.snapshot_failure_count()
    ));
    let (quarantined, _) = state.registry.quarantined_snapshots();
    body.push_str(
        "# HELP twig_serve_snapshot_quarantined_total Torn snapshot files quarantined in the state dir\n",
    );
    body.push_str("# TYPE twig_serve_snapshot_quarantined_total counter\n");
    body.push_str(&format!("twig_serve_snapshot_quarantined_total {quarantined}\n"));
    Response::text(200, &body)
}

fn handle_healthz(state: &Arc<ServerState>) -> Response {
    let degraded = state.registry.degraded();
    let health = state
        .registry
        .infos()
        .into_iter()
        .map(|info| {
            let mut fields = vec![
                ("name".into(), Json::Str(info.name)),
                ("generation".into(), num_u64(info.generation)),
                ("format".into(), Json::str(info.format)),
                ("stale".into(), Json::Bool(info.stale)),
            ];
            if let Some(error) = info.last_error {
                fields.push(("last_error".into(), Json::Str(error)));
            }
            Json::Obj(fields)
        })
        .collect();
    let (quarantined, newest_quarantined) = state.registry.quarantined_snapshots();
    // Per-reactor liveness: heartbeat age against the stall threshold.
    // A wedged reactor thread flips overall status to "degraded" — the
    // most actionable health signal the server can self-report.
    let stall_after = crate::metrics::REACTOR_STALL_AFTER;
    let stalled = state.metrics.stalled_reactors(stall_after);
    let now_ms = state.metrics.now_ms();
    let reactors: Vec<Json> = state
        .metrics
        .reactor_stats()
        .iter()
        .enumerate()
        .map(|(index, stats)| {
            let age_ms = now_ms.saturating_sub(stats.heartbeat_ms());
            Json::Obj(vec![
                ("index".into(), num_usize(index)),
                ("connections".into(), num_u64(stats.connections())),
                ("heartbeat_age_ms".into(), num_u64(age_ms)),
                ("stalled".into(), Json::Bool(u128::from(age_ms) > stall_after.as_millis())),
            ])
        })
        .collect();
    let healthy = degraded == 0 && stalled == 0;
    let mut fields = vec![
        ("status".into(), Json::str(if healthy { "ok" } else { "degraded" })),
        ("uptime_secs".into(), num_u64(state.started.elapsed().as_secs())),
        ("summaries".into(), num_usize(state.registry.len())),
        ("degraded".into(), num_u64(degraded)),
        ("reactors_stalled".into(), num_u64(stalled)),
        // Torn snapshot files renamed aside by recovery: evidence of
        // past corruption an operator should collect and investigate.
        ("snapshot_quarantined".into(), num_u64(quarantined)),
    ];
    if let Some(newest) = newest_quarantined {
        fields.push(("snapshot_quarantined_newest".into(), Json::Str(newest)));
    }
    if !reactors.is_empty() {
        fields.push(("reactors".into(), Json::Arr(reactors)));
    }
    fields.push(("summary_health".into(), Json::Arr(health)));
    Response::json(200, &Json::Obj(fields))
}

fn handle_summaries(state: &Arc<ServerState>) -> Response {
    let summaries = state
        .registry
        .infos()
        .into_iter()
        .map(|info| {
            let mut fields = vec![
                ("name".into(), Json::Str(info.name)),
                ("path".into(), Json::Str(info.path.display().to_string())),
                ("generation".into(), num_u64(info.generation)),
                ("file_bytes".into(), num_usize(info.file_bytes)),
                ("nodes".into(), num_usize(info.nodes)),
                ("n".into(), num_u64(info.n)),
                ("threshold".into(), num_u64(u64::from(info.threshold))),
                ("signature_len".into(), num_usize(info.signature_len)),
                ("format".into(), Json::str(info.format)),
                ("stale".into(), Json::Bool(info.stale)),
            ];
            if let Some(error) = info.last_error {
                fields.push(("last_error".into(), Json::Str(error)));
            }
            Json::Obj(fields)
        })
        .collect();
    Response::json(200, &Json::Obj(vec![("summaries".into(), Json::Arr(summaries))]))
}

fn handle_reload(state: &Arc<ServerState>) -> Response {
    let results = state.registry.reload_all();
    // Generation-keyed plans could never hit again anyway; clearing
    // releases their memory promptly.
    state.plans.clear();
    let mut any_failed = false;
    let entries = results
        .into_iter()
        .map(|(name, result)| {
            let mut fields = vec![("name".into(), Json::Str(name))];
            match result {
                Ok(generation) => {
                    state.metrics.reloads_total.inc();
                    fields.push(("ok".into(), Json::Bool(true)));
                    fields.push(("generation".into(), num_u64(generation)));
                }
                Err(err) => {
                    state.metrics.reload_failures_total.inc();
                    any_failed = true;
                    fields.push(("ok".into(), Json::Bool(false)));
                    fields.push(("error".into(), Json::Str(error_chain(&err))));
                }
            }
            Json::Obj(fields)
        })
        .collect();
    // 200 even with failures: the reload *request* was served; per-entry
    // status is in the body and failed entries keep their old summary.
    Response::json(
        200,
        &Json::Obj(vec![
            ("reloaded".into(), Json::Arr(entries)),
            ("all_ok".into(), Json::Bool(!any_failed)),
        ]),
    )
}

fn handle_estimate(request: &Request, state: &Arc<ServerState>) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_response(400, "bad_request", "body is not UTF-8");
    };
    let body = match Json::parse(text) {
        Ok(body) => body,
        Err(err) => return error_response(400, "bad_json", &err.to_string()),
    };

    let summary_name = match body.get("summary") {
        None => "default",
        Some(value) => match value.as_str() {
            Some(name) => name,
            None => return error_response(400, "bad_request", "'summary' must be a string"),
        },
    };
    let algorithm = match body.get("algorithm") {
        None => Algorithm::Msh,
        Some(value) => match value.as_str().and_then(parse_algorithm) {
            Some(algorithm) => algorithm,
            None => {
                return error_response(
                    400,
                    "bad_request",
                    &format!("unknown algorithm (expected one of {})", algorithm_names()),
                )
            }
        },
    };
    let kind = match body.get("count_kind") {
        None => CountKind::Occurrence,
        Some(value) => match value.as_str() {
            Some("occurrence") => CountKind::Occurrence,
            Some("presence") => CountKind::Presence,
            _ => {
                return error_response(
                    400,
                    "bad_request",
                    "'count_kind' must be \"presence\" or \"occurrence\"",
                )
            }
        },
    };

    let query_texts: Vec<&str> = match (body.get("query"), body.get("queries")) {
        (Some(_), Some(_)) => {
            return error_response(400, "bad_request", "'query' and 'queries' are exclusive")
        }
        (Some(single), None) => match single.as_str() {
            Some(text) => vec![text],
            None => return error_response(400, "bad_request", "'query' must be a string"),
        },
        (None, Some(many)) => match many.as_array() {
            Some(items) => {
                let mut texts = Vec::with_capacity(items.len());
                for (index, item) in items.iter().enumerate() {
                    match item.as_str() {
                        Some(text) => texts.push(text),
                        None => {
                            return error_response(
                                400,
                                "bad_request",
                                &format!("'queries[{index}]' must be a string"),
                            )
                        }
                    }
                }
                texts
            }
            None => return error_response(400, "bad_request", "'queries' must be an array"),
        },
        (None, None) => {
            return error_response(400, "bad_request", "body needs 'query' or 'queries'")
        }
    };
    if query_texts.is_empty() {
        return error_response(400, "bad_request", "'queries' must not be empty");
    }
    if query_texts.len() > state.config.max_batch {
        return error_response(
            413,
            "batch_too_large",
            &format!(
                "batch of {} queries exceeds the limit of {}",
                query_texts.len(),
                state.config.max_batch
            ),
        );
    }

    let Some((cst, generation, stale)) = state.registry.get_for_serving(summary_name) else {
        return error_response(
            404,
            "unknown_summary",
            &format!(
                "no summary named '{summary_name}' (loaded: {})",
                state.registry.names().join(", ")
            ),
        );
    };

    // Resolve every query before estimating any (a bad query at index
    // i must fail the whole batch with no partial work): each query is
    // either an owned parse (cache off) or a shared cache entry whose
    // twig was parsed the first time this text was seen — the plan
    // cache is keyed by raw request text exactly so a hit skips
    // `Twig::parse` entirely.
    enum Resolved {
        Owned(Twig),
        Cached(Arc<CachedPlan>),
    }
    let cache_off = state.config.plan_cache_capacity == 0;
    let mut queries = Vec::with_capacity(query_texts.len());
    for (index, text) in query_texts.iter().enumerate() {
        if !cache_off {
            let key = PlanCache::key(summary_name, generation, text);
            if let Some(cached) = state.plans.lookup(&key) {
                state.metrics.plan_cache_hits_total.inc();
                queries.push(Resolved::Cached(cached));
                continue;
            }
            state.metrics.plan_cache_misses_total.inc();
            match Twig::parse(text) {
                Ok(query) => {
                    let (cached, evicted) = state.plans.insert(&key, query);
                    if evicted {
                        state.metrics.plan_cache_evictions_total.inc();
                    }
                    queries.push(Resolved::Cached(cached));
                }
                Err(err) => {
                    return error_response(
                        400,
                        "bad_query",
                        &format!("queries[{index}] '{text}' does not parse: {err}"),
                    )
                }
            }
            continue;
        }
        match Twig::parse(text) {
            Ok(query) => queries.push(Resolved::Owned(query)),
            Err(err) => {
                return error_response(
                    400,
                    "bad_query",
                    &format!("queries[{index}] '{text}' does not parse: {err}"),
                )
            }
        }
    }

    let mut estimates = Vec::with_capacity(queries.len());
    for query in &queries {
        let started = Instant::now();
        let estimate = match query {
            Resolved::Owned(query) => cst.estimate(query, algorithm, kind),
            Resolved::Cached(cached) => {
                // Same stages the plan-free path runs, memoized: the
                // product below is bit-identical to `cst.estimate(...)`.
                let raw = cst.estimate_raw(&cached.twig, algorithm, kind, Some(&cached.plan));
                let discount = *cached.discount.get_or_init(|| cst.sibling_discount(&cached.twig));
                raw * discount
            }
        };
        state.metrics.estimate_latency_us.record(micros(started.elapsed()));
        estimates.push(Json::Num(estimate));
    }
    state.metrics.batches_total.inc();
    state.metrics.estimates_total.add(size_to_u64(estimates.len()));

    let response = Response::json(
        200,
        &Json::Obj(vec![
            ("summary".into(), Json::str(summary_name)),
            ("algorithm".into(), Json::str(algorithm.name())),
            (
                "count_kind".into(),
                Json::str(match kind {
                    CountKind::Presence => "presence",
                    CountKind::Occurrence => "occurrence",
                }),
            ),
            ("generation".into(), num_u64(generation)),
            ("count".into(), num_usize(estimates.len())),
            ("estimates".into(), Json::Arr(estimates)),
        ]),
    );
    if stale {
        // The summary's latest reload failed; answers come from the
        // last good generation. Clients that care can detect it here.
        response.with_header("x-twig-stale-generation", generation.to_string())
    } else {
        response
    }
}

fn parse_algorithm(name: &str) -> Option<Algorithm> {
    Algorithm::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(name))
}

fn algorithm_names() -> String {
    let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
    names.join(", ")
}

/// The uniform error envelope: `{"error":{"kind":…,"message":…}}`.
#[must_use]
pub fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        &Json::Obj(vec![(
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::str(kind)),
                ("message".into(), Json::str(message)),
            ]),
        )]),
    )
}

fn micros(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)
}

fn num_u64(value: u64) -> Json {
    Json::Num(count_to_f64(value))
}

fn num_usize(value: usize) -> Json {
    Json::Num(count_to_f64(size_to_u64(value)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_escalates_from_one_to_a_capped_sixteen() {
        // The first eight rejections of a streak hint an immediate retry.
        for streak in 1..=8u64 {
            assert_eq!(retry_after_secs(streak), 1, "streak {streak}");
        }
        // Then the hint escalates with bounded per-streak jitter: at
        // least the base, at most double it, never past 16 seconds.
        for streak in 9..=200u64 {
            let base = (streak / 8).min(8);
            let hint = retry_after_secs(streak);
            assert!(hint >= base, "streak {streak}: hint {hint} below base {base}");
            assert!(hint <= (2 * base).min(16), "streak {streak}: hint {hint} over cap");
        }
        // Deep in a sustained streak the cap is reachable and binding.
        let deep: Vec<u64> = (1000..1100u64).map(retry_after_secs).collect();
        assert!(deep.iter().all(|&hint| (8..=16).contains(&hint)), "{deep:?}");
        assert!(deep.contains(&16), "cap never reached: {deep:?}");
        // The jitter is per-streak deterministic (same seed, same hint).
        assert_eq!(retry_after_secs(77), retry_after_secs(77));
    }
}
