//! Closed-loop load generator for the estimation server.
//!
//! Drives N concurrent keep-alive connections, each sending batched
//! `/estimate` requests from a deterministic seeded workload. With
//! `pipeline: 1` the loop is strictly closed (the next request leaves
//! only after the previous response arrived); with `pipeline: k` each
//! connection keeps up to `k` requests in flight HTTP/1.1-pipelined,
//! which is how a single generator process drives the reactor server
//! past 100k req/s. Reports throughput plus exact latency percentiles
//! (every request's latency is recorded, then sorted — no histogram
//! approximation on the client side), globally and per connection.
//!
//! Ships as the `loadgen` binary; the library entry point
//! ([`run`], [`smoke`]) is reused by the integration tests and the CI
//! smoke job.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use twig_tree::Twig;
use twig_util::cast::{count_to_f64, size_to_u64};
use twig_util::SplitMix64;

use crate::http::{encode_request, read_response, read_response_pipelined, write_request, Limits};
use crate::json::Json;

/// Load generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// How long to drive load.
    pub duration: Duration,
    /// Queries per `/estimate` request.
    pub batch: usize,
    /// Requests each connection keeps in flight (1 = strictly closed
    /// loop; >1 = HTTP/1.1 pipelining with a window this deep).
    pub pipeline: usize,
    /// Summary name to query.
    pub summary: String,
    /// Estimation algorithm name.
    pub algorithm: String,
    /// `presence` or `occurrence`.
    pub count_kind: String,
    /// Workload seed; each connection derives its own stream from it.
    pub seed: u64,
    /// How long to retry the initial connect (readiness wait).
    pub connect_deadline: Duration,
    /// POST `/admin/shutdown` after the run.
    pub shutdown_after: bool,
    /// Slow-client mode: dribble request bytes at this rate (bytes per
    /// second) instead of writing whole requests. `0` disables. Used to
    /// exercise the server's slowloris defenses — a trickling
    /// connection below the server's minimum-progress rate should be
    /// killed, which this mode reports as errors, not throughput.
    pub trickle: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7716".to_owned(),
            connections: 8,
            duration: Duration::from_secs(5),
            batch: 16,
            pipeline: 1,
            summary: "default".to_owned(),
            algorithm: "msh".to_owned(),
            count_kind: "occurrence".to_owned(),
            seed: 0x010A_D6E4,
            connect_deadline: Duration::from_secs(5),
            shutdown_after: false,
            trickle: 0,
        }
    }
}

/// Results of one load run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Successful (HTTP 200) requests.
    pub requests: u64,
    /// Individual estimates received (`requests × batch`).
    pub estimates: u64,
    /// Transport errors (connect/read/write failures).
    pub errors: u64,
    /// Responses with a non-200, non-503 status.
    pub non_200: u64,
    /// `503` shed responses (admission control), counted separately so
    /// saturation is distinguishable from real failures.
    pub rejected_503: u64,
    /// Reconnect attempts made after a failure or server-side close.
    pub retries: u64,
    /// Wall time of the measurement window.
    pub elapsed: Duration,
    /// Exact latency percentiles over successful requests, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Successful requests per second.
    pub requests_per_sec: f64,
    /// Estimates per second.
    pub estimates_per_sec: f64,
    /// Latency summary per driven connection (index-aligned with the
    /// generator's connection threads), so a skewed reuseport shard or
    /// one slow connection is visible instead of averaged away.
    pub per_connection: Vec<ConnectionLatency>,
}

/// Exact latency percentiles for one generator connection.
#[derive(Debug, Clone)]
pub struct ConnectionLatency {
    /// Connection index (0-based).
    pub connection: usize,
    /// Successful requests on this connection.
    pub requests: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl LoadgenReport {
    /// Human-readable one-paragraph report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "requests {} ({:.1}/s), estimates {} ({:.1}/s), non-200 {}, 503 {}, \
             retries {}, errors {}\n\
             latency µs: p50 {} p95 {} p99 {} max {} (over {:.2}s)",
            self.requests,
            self.requests_per_sec,
            self.estimates,
            self.estimates_per_sec,
            self.non_200,
            self.rejected_503,
            self.retries,
            self.errors,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.elapsed.as_secs_f64(),
        );
        for conn in &self.per_connection {
            out.push_str(&format!(
                "\n  conn {}: {} reqs, µs p50 {} p95 {} p99 {} max {}",
                conn.connection, conn.requests, conn.p50_us, conn.p95_us, conn.p99_us, conn.max_us,
            ));
        }
        out
    }
}

struct WorkerStats {
    requests: u64,
    estimates: u64,
    errors: u64,
    non_200: u64,
    rejected_503: u64,
    retries: u64,
    latencies_us: Vec<u64>,
}

/// Capped exponential reconnect backoff, optionally stretched by a
/// server `Retry-After` hint.
struct Backoff {
    delay: Duration,
}

impl Backoff {
    const START: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_millis(640);
    /// Longest a `Retry-After` hint is honored for; a load generator
    /// sleeping the server's full worst-case hint would stop loading.
    const HINT_CAP: Duration = Duration::from_secs(2);

    fn fresh() -> Backoff {
        Backoff { delay: Backoff::START }
    }

    /// Sleeps the current delay, then doubles it (capped) for the next
    /// failure in the streak.
    fn pause(&mut self) {
        std::thread::sleep(self.delay);
        self.delay = (self.delay * 2).min(Backoff::CAP);
    }

    fn reset(&mut self) {
        self.delay = Backoff::START;
    }

    /// Stretches the next delay to a server-provided hint (seconds).
    fn stretch_to(&mut self, hint_secs: u64) {
        let hinted = Duration::from_secs(hint_secs).min(Backoff::HINT_CAP);
        self.delay = self.delay.max(hinted);
    }
}

/// Deterministic query workload: dblp-shaped twigs over a fixed label
/// set with seeded value prefixes. Queries are valid twig expressions by
/// construction (checked once at startup); labels missing from the
/// served summary simply estimate to 0, which exercises the same code
/// path at the same cost.
fn make_query(rng: &mut SplitMix64) -> String {
    const CONTAINERS: [&str; 4] = ["book", "article", "inproceedings", "phdthesis"];
    let container = CONTAINERS[rng.index(CONTAINERS.len())];
    let letter = char::from(b'A' + (rng.next_below(26)) as u8);
    let year = 1985 + rng.next_below(40);
    match rng.next_below(4) {
        0 => format!(r#"{container}(author("{letter}"))"#),
        1 => format!(r#"{container}(author("{letter}"),year("{year}"))"#),
        2 => format!(r#"dblp({container}(title("{letter}")))"#),
        _ => format!(r#"{container}(year("{year}"))"#),
    }
}

fn build_body(config: &LoadgenConfig, rng: &mut SplitMix64) -> Vec<u8> {
    let queries: Vec<Json> = (0..config.batch).map(|_| Json::Str(make_query(rng))).collect();
    Json::Obj(vec![
        ("summary".into(), Json::str(&config.summary)),
        ("algorithm".into(), Json::str(&config.algorithm)),
        ("count_kind".into(), Json::str(&config.count_kind)),
        ("queries".into(), Json::Arr(queries)),
    ])
    .render()
    .into_bytes()
}

fn connect_with_retry(addr: &str, deadline: Instant) -> Option<TcpStream> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                return Some(stream);
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return None,
        }
    }
}

fn client_limits() -> Limits {
    Limits {
        max_head_bytes: 64 * 1024,
        max_body_bytes: 16 * 1024 * 1024,
        read_deadline: Duration::from_secs(30),
        idle_deadline: Duration::from_secs(30),
    }
}

/// Re-establishes a worker's connection with capped exponential
/// backoff, giving up when the measurement window ends.
fn reconnect(
    config: &LoadgenConfig,
    stats: &mut WorkerStats,
    backoff: &mut Backoff,
    stop_at: Instant,
) -> Option<TcpStream> {
    while Instant::now() < stop_at {
        stats.retries += 1;
        backoff.pause();
        if let Ok(stream) = TcpStream::connect(&config.addr) {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
            backoff.reset();
            return Some(stream);
        }
    }
    None
}

fn worker(config: &LoadgenConfig, seed: u64, stop_at: Instant) -> WorkerStats {
    let mut stats = WorkerStats {
        requests: 0,
        estimates: 0,
        errors: 0,
        non_200: 0,
        rejected_503: 0,
        retries: 0,
        latencies_us: Vec::new(),
    };
    let mut rng = SplitMix64::new(seed);
    let mut backoff = Backoff::fresh();
    let connect_deadline = Instant::now() + config.connect_deadline;
    let Some(mut stream) = connect_with_retry(&config.addr, connect_deadline) else {
        stats.errors += 1;
        return stats;
    };
    if config.trickle > 0 {
        trickle_loop(config, &mut rng, &mut stats, &mut backoff, stream, stop_at);
        return stats;
    }
    if config.pipeline > 1 {
        pipelined_loop(config, &mut rng, &mut stats, &mut backoff, stream, stop_at);
        return stats;
    }
    let limits = client_limits();
    while Instant::now() < stop_at {
        let body = build_body(config, &mut rng);
        let started = Instant::now();
        if write_request(&mut stream, "POST", "/estimate", &body).is_err() {
            stats.errors += 1;
            match reconnect(config, &mut stats, &mut backoff, stop_at) {
                Some(fresh) => {
                    stream = fresh;
                    continue;
                }
                None => break,
            }
        }
        match read_response(&mut stream, &limits) {
            Ok(response) => {
                let latency = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                if response.status == 200 {
                    stats.requests += 1;
                    stats.estimates += size_to_u64(config.batch);
                    stats.latencies_us.push(latency);
                } else if response.status == 503 {
                    // Shed by admission control: honor the server's
                    // Retry-After hint (capped) before reconnecting.
                    stats.rejected_503 += 1;
                    if let Some(secs) =
                        response.header("retry-after").and_then(|value| value.parse::<u64>().ok())
                    {
                        backoff.stretch_to(secs);
                    }
                } else {
                    stats.non_200 += 1;
                }
                // Honor a server-side close (shutdown, shed, drain).
                if response.header("connection") == Some("close") {
                    match reconnect(config, &mut stats, &mut backoff, stop_at) {
                        Some(fresh) => stream = fresh,
                        None => break,
                    }
                }
            }
            Err(_) => {
                stats.errors += 1;
                match reconnect(config, &mut stats, &mut backoff, stop_at) {
                    Some(fresh) => stream = fresh,
                    None => break,
                }
            }
        }
    }
    stats
}

/// The pipelined request loop: keep up to `config.pipeline` requests in
/// flight, reading responses in order (HTTP/1.1 pipelining guarantees
/// FIFO). Latency is measured from each request's own send instant, so
/// it includes time queued behind windowmates — the honest in-flight
/// latency of the window depth, which is what the bench gate checks.
///
/// On any transport failure or server-side close the window's
/// outstanding responses are unrecoverable: they are discarded (neither
/// counted as successes nor failures beyond the one triggering error)
/// and the connection re-primes after reconnect.
fn pipelined_loop(
    config: &LoadgenConfig,
    rng: &mut SplitMix64,
    stats: &mut WorkerStats,
    backoff: &mut Backoff,
    mut stream: TcpStream,
    stop_at: Instant,
) {
    let limits = client_limits();
    let mut window: VecDeque<Instant> = VecDeque::with_capacity(config.pipeline);
    // One socket read can carry several responses; `inbound` holds the
    // surplus between `read_response_pipelined` calls and is reset with
    // the window whenever the connection is replaced.
    let mut inbound: Vec<u8> = Vec::new();
    // Request bodies are precomputed from the seeded stream and cycled:
    // the generator's job is to saturate the server, so per-request
    // JSON rendering must not bill client CPU against the measurement
    // (they share cores). The traffic stays deterministic — the pool is
    // exactly the first `BODY_POOL` bodies the seed produces.
    const BODY_POOL: usize = 256;
    let bodies: Vec<Vec<u8>> = (0..BODY_POOL).map(|_| build_body(config, rng)).collect();
    let mut next_body = 0usize;
    let mut outbound: Vec<u8> = Vec::new();
    loop {
        // Prime: (re)fill the window while the clock allows, encoding
        // the whole refill into one buffer for a single write.
        outbound.clear();
        let mut queued = 0;
        while window.len() + queued < config.pipeline && Instant::now() < stop_at {
            encode_request(&mut outbound, "POST", "/estimate", &bodies[next_body % BODY_POOL]);
            next_body = next_body.wrapping_add(1);
            queued += 1;
        }
        if queued > 0 {
            let sent = Instant::now();
            if stream.write_all(&outbound).is_err() {
                stats.errors += 1;
                window.clear();
                inbound.clear();
                match reconnect(config, stats, backoff, stop_at) {
                    Some(fresh) => stream = fresh,
                    None => return,
                }
                continue;
            }
            for _ in 0..queued {
                window.push_back(sent);
            }
        }
        // Past the deadline with nothing in flight: done.
        let Some(&oldest) = window.front() else { return };
        match read_response_pipelined(&mut stream, &mut inbound, &limits) {
            Ok(response) => {
                window.pop_front();
                let latency = u64::try_from(oldest.elapsed().as_micros()).unwrap_or(u64::MAX);
                if response.status == 200 {
                    stats.requests += 1;
                    stats.estimates += size_to_u64(config.batch);
                    stats.latencies_us.push(latency);
                } else if response.status == 503 {
                    stats.rejected_503 += 1;
                    if let Some(secs) =
                        response.header("retry-after").and_then(|value| value.parse::<u64>().ok())
                    {
                        backoff.stretch_to(secs);
                    }
                } else {
                    stats.non_200 += 1;
                }
                if response.header("connection") == Some("close") {
                    window.clear();
                    inbound.clear();
                    match reconnect(config, stats, backoff, stop_at) {
                        Some(fresh) => stream = fresh,
                        None => return,
                    }
                }
            }
            Err(_) => {
                stats.errors += 1;
                window.clear();
                inbound.clear();
                match reconnect(config, stats, backoff, stop_at) {
                    Some(fresh) => stream = fresh,
                    None => return,
                }
            }
        }
    }
}

/// The slow-client loop (`--trickle <bytes/s>`): encodes requests with
/// the same machinery as the pipelined loop, but writes them a few
/// bytes at a time at the configured rate. Against a server with
/// progress deadlines the expected outcome is a kill mid-request
/// (counted under `errors`, with a reconnect and another drip); a
/// request that does complete reads its response through the shared
/// pipelined response reader and is counted normally.
fn trickle_loop(
    config: &LoadgenConfig,
    rng: &mut SplitMix64,
    stats: &mut WorkerStats,
    backoff: &mut Backoff,
    mut stream: TcpStream,
    stop_at: Instant,
) {
    let limits = client_limits();
    let mut inbound: Vec<u8> = Vec::new();
    let mut outbound: Vec<u8> = Vec::new();
    // ~10 slices per second, at least one byte each.
    let chunk = usize::try_from(config.trickle / 10).unwrap_or(usize::MAX).max(1);
    'conn: while Instant::now() < stop_at {
        outbound.clear();
        encode_request(&mut outbound, "POST", "/estimate", &build_body(config, rng));
        let started = Instant::now();
        let mut sent = 0usize;
        while sent < outbound.len() {
            if Instant::now() >= stop_at {
                return;
            }
            let end = (sent + chunk).min(outbound.len());
            let Some(piece) = outbound.get(sent..end) else { return };
            if stream.write_all(piece).is_err() {
                // Severed mid-drip — the server's slow-client defense
                // at work. Reconnect and resume dripping.
                stats.errors += 1;
                inbound.clear();
                match reconnect(config, stats, backoff, stop_at) {
                    Some(fresh) => stream = fresh,
                    None => return,
                }
                continue 'conn;
            }
            sent = end;
            std::thread::sleep(Duration::from_millis(100));
        }
        match read_response_pipelined(&mut stream, &mut inbound, &limits) {
            Ok(response) => {
                let latency = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                if response.status == 200 {
                    stats.requests += 1;
                    stats.estimates += size_to_u64(config.batch);
                    stats.latencies_us.push(latency);
                } else if response.status == 503 {
                    stats.rejected_503 += 1;
                } else {
                    stats.non_200 += 1;
                }
                if response.header("connection") == Some("close") {
                    inbound.clear();
                    match reconnect(config, stats, backoff, stop_at) {
                        Some(fresh) => stream = fresh,
                        None => return,
                    }
                }
            }
            Err(_) => {
                stats.errors += 1;
                inbound.clear();
                match reconnect(config, stats, backoff, stop_at) {
                    Some(fresh) => stream = fresh,
                    None => return,
                }
            }
        }
    }
}

/// Exact percentile over an already-sorted latency slice.
fn percentile_of(sorted: &[u64], numerator: usize, denominator: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let index = ((sorted.len() - 1) * numerator) / denominator;
    sorted.get(index).copied().unwrap_or(0)
}

/// Runs the closed loop and aggregates a report.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if config.connections == 0 || config.batch == 0 || config.pipeline == 0 {
        return Err("connections, batch and pipeline must be positive".to_owned());
    }
    // The workload must consist of parseable twigs; one deterministic
    // spot-check per form catches a template regression before the run.
    let mut probe = SplitMix64::new(config.seed);
    for _ in 0..8 {
        let text = make_query(&mut probe);
        Twig::parse(&text).map_err(|e| format!("workload query '{text}' invalid: {e}"))?;
    }

    let started = Instant::now();
    let stop_at = started + config.duration;
    let mut handles = Vec::with_capacity(config.connections);
    for index in 0..config.connections {
        let config = config.clone();
        let seed = config.seed.wrapping_add(size_to_u64(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        handles.push(std::thread::spawn(move || worker(&config, seed, stop_at)));
    }
    let mut requests = 0u64;
    let mut estimates = 0u64;
    let mut errors = 0u64;
    let mut non_200 = 0u64;
    let mut rejected_503 = 0u64;
    let mut retries = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut per_connection = Vec::with_capacity(config.connections);
    for (connection, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(mut stats) => {
                requests += stats.requests;
                estimates += stats.estimates;
                errors += stats.errors;
                non_200 += stats.non_200;
                rejected_503 += stats.rejected_503;
                retries += stats.retries;
                stats.latencies_us.sort_unstable();
                per_connection.push(ConnectionLatency {
                    connection,
                    requests: stats.requests,
                    p50_us: percentile_of(&stats.latencies_us, 50, 100),
                    p95_us: percentile_of(&stats.latencies_us, 95, 100),
                    p99_us: percentile_of(&stats.latencies_us, 99, 100),
                    max_us: stats.latencies_us.last().copied().unwrap_or(0),
                });
                latencies.extend(stats.latencies_us);
            }
            Err(_) => errors += 1,
        }
    }
    let elapsed = started.elapsed();

    if config.shutdown_after {
        request_shutdown(&config.addr)?;
    }

    latencies.sort_unstable();
    let percentile = |numerator: usize, denominator: usize| -> u64 {
        percentile_of(&latencies, numerator, denominator)
    };
    let secs = elapsed.as_secs_f64();
    let per_sec = |count: u64| -> f64 {
        if secs > 0.0 {
            count_to_f64(count) / secs
        } else {
            0.0
        }
    };
    Ok(LoadgenReport {
        requests,
        estimates,
        errors,
        non_200,
        rejected_503,
        retries,
        elapsed,
        p50_us: percentile(50, 100),
        p95_us: percentile(95, 100),
        p99_us: percentile(99, 100),
        max_us: latencies.last().copied().unwrap_or(0),
        requests_per_sec: per_sec(requests),
        estimates_per_sec: per_sec(estimates),
        per_connection,
    })
}

/// POSTs `/admin/shutdown` and waits for the acknowledgement.
pub fn request_shutdown(addr: &str) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    let Some(mut stream) = connect_with_retry(addr, deadline) else {
        return Err(format!("cannot connect to {addr} for shutdown"));
    };
    write_request(&mut stream, "POST", "/admin/shutdown", b"")
        .map_err(|e| format!("shutdown request failed: {e}"))?;
    let response = read_response(&mut stream, &client_limits())
        .map_err(|e| format!("shutdown response failed: {e}"))?;
    if response.status == 200 {
        Ok(())
    } else {
        Err(format!("shutdown returned status {}", response.status))
    }
}

/// The CI smoke run: a short burst against `summary` that must produce
/// nonzero throughput with no failures, then a clean server shutdown.
pub fn smoke(addr: &str, summary: &str) -> Result<LoadgenReport, String> {
    let config = LoadgenConfig {
        addr: addr.to_owned(),
        summary: summary.to_owned(),
        connections: 2,
        duration: Duration::from_millis(1500),
        batch: 8,
        shutdown_after: true,
        ..LoadgenConfig::default()
    };
    let report = run(&config)?;
    if report.requests == 0 {
        return Err(format!("smoke run made no successful requests: {}", report.render()));
    }
    if report.errors > 0 || report.non_200 > 0 || report.rejected_503 > 0 {
        return Err(format!("smoke run saw failures: {}", report.render()));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_parseable() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..200 {
            let qa = make_query(&mut a);
            let qb = make_query(&mut b);
            assert_eq!(qa, qb);
            Twig::parse(&qa).expect("workload query parses");
        }
        // Different seeds diverge.
        let mut c = SplitMix64::new(43);
        let diverges = (0..50).any(|_| make_query(&mut a) != make_query(&mut c));
        assert!(diverges);
    }

    #[test]
    fn body_shape_is_valid_json() {
        let config = LoadgenConfig { batch: 3, ..LoadgenConfig::default() };
        let mut rng = SplitMix64::new(7);
        let body = build_body(&config, &mut rng);
        let parsed = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(parsed.get("summary").unwrap().as_str(), Some("default"));
        assert_eq!(parsed.get("queries").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn zero_connections_is_rejected() {
        let config = LoadgenConfig { connections: 0, ..LoadgenConfig::default() };
        assert!(run(&config).is_err());
        let config = LoadgenConfig { batch: 0, ..LoadgenConfig::default() };
        assert!(run(&config).is_err());
        let config = LoadgenConfig { pipeline: 0, ..LoadgenConfig::default() };
        assert!(run(&config).is_err());
    }
}
