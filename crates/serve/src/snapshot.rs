//! Crash-safe snapshot store for registry summaries.
//!
//! The registry persists every successfully loaded summary here so a
//! later startup can keep serving the *last good generation* even when
//! the spec file has been corrupted, truncated, or deleted. The store
//! is a plain directory:
//!
//! ```text
//! <dir>/<name>.gen-<G>.cst     framed summary, one file per generation
//! <dir>/MANIFEST               the commit point (see below)
//! ```
//!
//! Each snapshot file is the raw `Cst::write_to` encoding followed by a
//! 24-byte footer: an FNV-1a 64 checksum of the payload, the payload
//! length, and the magic `TWIGSNP1` (all little-endian). A file whose
//! footer does not verify is *torn* — a crash or fault interrupted the
//! write — and recovery quarantines it (renames it aside with a
//! `.quarantined` suffix) rather than serving or deleting evidence.
//!
//! Writes are crash-safe by construction: the framed bytes go to a
//! `.tmp` file, are fsynced, and are renamed into place; only then is
//! the `MANIFEST` rewritten (same temp-file + rename dance) to point at
//! the new generation. The manifest is therefore the commit point — a
//! crash between the snapshot rename and the manifest write leaves a
//! complete-but-uncommitted file that recovery discards, and a crash
//! mid-write leaves a torn file that recovery quarantines; either way
//! the previous committed generation keeps serving.
//!
//! Failpoints (`failpoints` feature): `snapshot.write` (`error` fails
//! before writing; `partial(p)` leaves a torn file at the final path,
//! modelling a crash before the data blocks hit disk) and
//! `snapshot.manifest` (`error` crashes between the snapshot rename and
//! the manifest commit).

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Footer magic: the last 8 bytes of every complete snapshot file.
const FOOTER_MAGIC: &[u8] = b"TWIGSNP1";
/// Footer size: checksum (8) + payload length (8) + magic (8).
const FOOTER_LEN: usize = 24;
const MANIFEST_HEADER: &str = "twig-snapshot-manifest v1";

/// A failure to operate the snapshot store. Corrupt snapshot *files*
/// are not errors — they are quarantined and reported via
/// [`Recovered::quarantined`]; this type covers filesystem failures and
/// unusable summary names.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure during `action` on `path`.
    Io {
        /// What the store was doing.
        action: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying failure.
        source: io::Error,
    },
    /// The summary name cannot be used as a file-name stem.
    BadName {
        /// The offending name.
        name: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { action, path, .. } => {
                write!(f, "snapshot store cannot {action} ({})", path.display())
            }
            SnapshotError::BadName { name } => {
                write!(f, "summary name '{name}' is not usable as a snapshot file name")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            SnapshotError::BadName { .. } => None,
        }
    }
}

fn io_error(action: &'static str, path: &Path, source: io::Error) -> SnapshotError {
    SnapshotError::Io { action, path: path.to_owned(), source }
}

/// The error injected by snapshot failpoints; compiled (but unreachable)
/// in default builds, where the failpoint arms fold away.
fn injected(point: &str) -> io::Error {
    io::Error::other(format!("injected fault at {point}"))
}

/// FNV-1a 64 over `payload` — the footer checksum. Public so tests and
/// the chaos harness can frame or corrupt snapshots deliberately.
#[must_use]
pub fn checksum(payload: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in payload {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn u64_le(chunk: &[u8]) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    for &byte in chunk {
        value |= u64::from(byte) << shift;
        shift += 8;
    }
    value
}

/// `payload` plus the checksum/length/magic footer.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(payload.len().saturating_add(FOOTER_LEN));
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&checksum(payload).to_le_bytes());
    framed.extend_from_slice(&twig_util::cast::size_to_u64(payload.len()).to_le_bytes());
    framed.extend_from_slice(FOOTER_MAGIC);
    framed
}

/// Strips and verifies the footer of a framed snapshot file, returning
/// the raw summary payload; `None` means the file is torn or corrupt.
/// Public for `twig pack`, which accepts `TWIGSNP1` snapshot files and
/// migrates their payloads to the flat format.
#[must_use]
pub fn unframe(framed: Vec<u8>) -> Option<Vec<u8>> {
    verified_payload(framed).map(|(payload, _)| payload)
}

/// Strips and verifies the footer; `None` means the file is torn or
/// corrupt. Returns the payload and its footer checksum.
fn verified_payload(mut framed: Vec<u8>) -> Option<(Vec<u8>, u64)> {
    if framed.len() < FOOTER_LEN {
        return None;
    }
    let split = framed.len() - FOOTER_LEN;
    let (payload_checksum, ok) = {
        let (payload, footer) = framed.split_at(split);
        let (checksum_bytes, rest) = footer.split_at(8);
        let (length_bytes, magic) = rest.split_at(8);
        let recorded = u64_le(checksum_bytes);
        let ok = magic == FOOTER_MAGIC
            && u64_le(length_bytes) == twig_util::cast::size_to_u64(payload.len())
            && recorded == checksum(payload);
        (recorded, ok)
    };
    if !ok {
        return None;
    }
    Vec::truncate(&mut framed, split);
    Some((framed, payload_checksum))
}

fn check_name(name: &str) -> Result<(), SnapshotError> {
    let mut plain = !name.is_empty() && name != "." && name != "..";
    for &byte in name.as_bytes() {
        plain =
            plain && (byte.is_ascii_alphanumeric() || byte == b'_' || byte == b'-' || byte == b'.');
    }
    if plain {
        Ok(())
    } else {
        Err(SnapshotError::BadName { name: name.to_owned() })
    }
}

fn snapshot_file_name(name: &str, generation: u64) -> String {
    format!("{name}.gen-{generation}.cst")
}

/// Parses `<name>.gen-<G>.cst` back to `G`; `None` for anything else
/// (temp files, quarantined files, other summaries).
fn parse_generation(file_name: &str, name: &str) -> Option<u64> {
    let tail = file_name.strip_prefix(name)?.strip_prefix(".gen-")?;
    let digits = tail.strip_suffix(".cst")?;
    if digits.is_empty() {
        return None;
    }
    let mut value: u64 = 0;
    for &byte in digits.as_bytes() {
        if !byte.is_ascii_digit() {
            return None;
        }
        value = value.checked_mul(10)?.checked_add(u64::from(byte - b'0'))?;
    }
    Some(value)
}

fn write_file_durably(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut file =
        std::fs::File::create(path).map_err(|e| io_error("create snapshot file", path, e))?;
    file.write_all(bytes).map_err(|e| io_error("write snapshot file", path, e))?;
    file.sync_all().map_err(|e| io_error("sync snapshot file", path, e))?;
    Ok(())
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    name: String,
    generation: u64,
    file: String,
    checksum: u64,
}

/// A summary recovered from the store.
#[derive(Debug)]
pub struct Recovered {
    /// The verified `Cst::write_to` bytes of the last good generation.
    pub payload: Vec<u8>,
    /// The generation the payload was committed as.
    pub generation: u64,
    /// Snapshot files that failed verification and were renamed aside
    /// with a `.quarantined` suffix.
    pub quarantined: Vec<PathBuf>,
}

/// A directory of checksummed, atomically renamed summary snapshots
/// with a manifest as the commit point. See the module docs for the
/// format and crash-safety argument.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    /// Serializes manifest read-modify-write cycles.
    manifest_gate: Mutex<()>,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(dir: &Path) -> Result<SnapshotStore, SnapshotError> {
        std::fs::create_dir_all(dir).map_err(|e| io_error("create snapshot directory", dir, e))?;
        Ok(SnapshotStore { dir: dir.to_owned(), manifest_gate: Mutex::new(()) })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_file(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    /// Persists `payload` as generation `generation` of `name`:
    /// temp-file + fsync + atomic rename, then the manifest commit.
    /// Returns the committed snapshot path. On failure the previously
    /// committed generation is untouched.
    pub fn persist(
        &self,
        name: &str,
        generation: u64,
        payload: &[u8],
    ) -> Result<PathBuf, SnapshotError> {
        check_name(name)?;
        let final_path = self.dir.join(snapshot_file_name(name, generation));
        if let Some(fault) = twig_util::failpoint!("snapshot.write") {
            return Err(apply_write_fault(fault, payload, &final_path));
        }
        let framed = frame(payload);
        let tmp_path = self.dir.join(format!("{name}.gen-{generation}.tmp"));
        write_file_durably(&tmp_path, &framed)?;
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| io_error("rename snapshot into place", &final_path, e))?;
        if twig_util::failpoint!("snapshot.manifest").is_some() {
            // Crash window between the snapshot rename and the commit:
            // the new file is complete but the manifest still points at
            // the previous generation.
            return Err(io_error(
                "commit snapshot manifest",
                &self.manifest_file(),
                injected("snapshot.manifest"),
            ));
        }
        self.commit_manifest(name, generation, checksum(payload))?;
        self.collect_garbage(name, generation);
        Ok(final_path)
    }

    /// Recovers the last good committed generation of `name`, if any.
    /// Torn or checksum-mismatched snapshot files are quarantined;
    /// complete files the manifest never committed are discarded.
    pub fn recover(&self, name: &str) -> Result<Option<Recovered>, SnapshotError> {
        check_name(name)?;
        let committed = self.committed_entry(name);
        let mut quarantined = Vec::new();
        let mut found: Option<(Vec<u8>, u64)> = None;
        for (generation, path) in self.candidates(name)? {
            if found.is_some() {
                // Older committed generations stay in place; GC owns them.
                continue;
            }
            let uncommitted = match &committed {
                Some(entry) => generation > entry.generation,
                None => false,
            };
            let framed = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(error) => {
                    return Err(io_error("read snapshot file", &path, error));
                }
            };
            match verified_payload(framed) {
                Some((payload, payload_checksum)) => {
                    if uncommitted {
                        // Complete but never committed (crash between
                        // rename and manifest write): the manifest is the
                        // commit point, so this generation never happened.
                        std::fs::remove_file(&path).ok();
                        continue;
                    }
                    let manifest_disagrees = match &committed {
                        Some(entry) => {
                            entry.generation == generation && entry.checksum != payload_checksum
                        }
                        None => false,
                    };
                    if manifest_disagrees {
                        quarantined.push(quarantine(&path));
                        continue;
                    }
                    found = Some((payload, generation));
                }
                None => {
                    quarantined.push(quarantine(&path));
                }
            }
        }
        Ok(found.map(|(payload, generation)| Recovered { payload, generation, quarantined }))
    }

    /// The committed generation of `name` per the manifest, if any.
    #[must_use]
    pub fn committed_generation(&self, name: &str) -> Option<u64> {
        self.committed_entry(name).map(|entry| entry.generation)
    }

    #[allow(clippy::manual_find)] // not `.find(`: twig-flow resolves that name to PrunedTrie::find
    fn committed_entry(&self, name: &str) -> Option<ManifestEntry> {
        for entry in self.read_manifest() {
            if entry.name == name {
                return Some(entry);
            }
        }
        None
    }

    /// Snapshot files of `name`, newest generation first.
    fn candidates(&self, name: &str) -> Result<Vec<(u64, PathBuf)>, SnapshotError> {
        let listing = std::fs::read_dir(&self.dir)
            .map_err(|e| io_error("list snapshot directory", &self.dir, e))?;
        let mut files = Vec::new();
        for entry in listing {
            let entry = match entry {
                Ok(entry) => entry,
                Err(error) => {
                    return Err(io_error("list snapshot directory", &self.dir, error));
                }
            };
            let file_name = entry.file_name();
            let Some(text) = file_name.to_str() else {
                continue;
            };
            if let Some(generation) = parse_generation(text, name) {
                files.push((generation, self.dir.join(text)));
            }
        }
        files.sort_by_key(|&(generation, _)| std::cmp::Reverse(generation));
        Ok(files)
    }

    fn read_manifest(&self) -> Vec<ManifestEntry> {
        let Ok(text) = std::fs::read_to_string(self.manifest_file()) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        let mut saw_header = false;
        for line in text.lines() {
            if !saw_header {
                saw_header = true;
                if line.trim() != MANIFEST_HEADER {
                    // Unknown manifest version or garbage: treat as
                    // absent and let footer verification carry recovery.
                    return Vec::new();
                }
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let [name, generation, file, checksum] = fields.as_slice() else {
                continue;
            };
            let Some(generation) = parse_decimal(generation) else {
                continue;
            };
            let Some(checksum) = parse_decimal(checksum) else {
                continue;
            };
            entries.push(ManifestEntry {
                name: (*name).to_owned(),
                generation,
                file: (*file).to_owned(),
                checksum,
            });
        }
        entries
    }

    fn commit_manifest(
        &self,
        name: &str,
        generation: u64,
        payload_checksum: u64,
    ) -> Result<(), SnapshotError> {
        let _gate = match self.manifest_gate.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut entries = self.read_manifest();
        entries.retain(|entry| entry.name != name);
        entries.push(ManifestEntry {
            name: name.to_owned(),
            generation,
            file: snapshot_file_name(name, generation),
            checksum: payload_checksum,
        });
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let mut text = String::new();
        text.push_str(MANIFEST_HEADER);
        text.push('\n');
        for entry in &entries {
            text.push_str(&format!(
                "{}\t{}\t{}\t{}\n",
                entry.name, entry.generation, entry.file, entry.checksum
            ));
        }
        let tmp_path = self.dir.join("MANIFEST.tmp");
        write_file_durably(&tmp_path, text.as_bytes())?;
        let manifest = self.manifest_file();
        std::fs::rename(&tmp_path, &manifest)
            .map_err(|e| io_error("rename manifest into place", &manifest, e))?;
        Ok(())
    }

    /// Quarantined snapshot files currently in the store directory:
    /// `(count, newest file name)`. Newest is by modification time,
    /// breaking ties (and timestamp-less platforms) by name. Quarantined
    /// files are evidence of torn writes — recovery renames them aside
    /// instead of deleting — so operators need to see them without
    /// grepping the state dir; `/healthz` and `/metrics` surface this.
    #[must_use]
    pub fn quarantined(&self) -> (u64, Option<String>) {
        let Ok(listing) = std::fs::read_dir(&self.dir) else {
            return (0, None);
        };
        let mut count = 0u64;
        let mut newest: Option<(std::time::SystemTime, String)> = None;
        for entry in listing.flatten() {
            let file_name = entry.file_name();
            let Some(text) = file_name.to_str() else {
                continue;
            };
            if !text.ends_with(".quarantined") {
                continue;
            }
            count += 1;
            let modified = entry
                .metadata()
                .and_then(|meta| meta.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            let candidate = (modified, text.to_owned());
            if newest.as_ref().is_none_or(|best| candidate > *best) {
                newest = Some(candidate);
            }
        }
        (count, newest.map(|(_, name)| name))
    }

    /// Best-effort cleanup: keeps the current and previous generation of
    /// `name`, removes every other generation and stray temp file.
    fn collect_garbage(&self, name: &str, current: u64) {
        let Ok(files) = self.candidates(name) else {
            return;
        };
        for (generation, path) in files {
            if generation != current && generation.wrapping_add(1) != current {
                std::fs::remove_file(&path).ok();
            }
        }
        let Ok(listing) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in listing {
            let Ok(entry) = entry else { continue };
            let file_name = entry.file_name();
            let Some(text) = file_name.to_str() else {
                continue;
            };
            if text.strip_prefix(name).is_some_and(|tail| {
                tail.strip_prefix(".gen-").is_some_and(|rest| rest.strip_suffix(".tmp").is_some())
            }) {
                std::fs::remove_file(self.dir.join(text)).ok();
            }
        }
    }
}

/// Applies a `snapshot.write` fault: `error` fails before touching the
/// filesystem; `partial(p)` leaves a torn file at the *final* path
/// (modelling a crash before the data blocks reached disk) and fails.
fn apply_write_fault(
    fault: twig_util::failpoint::Fault,
    payload: &[u8],
    final_path: &Path,
) -> SnapshotError {
    match fault {
        twig_util::failpoint::Fault::Error => {
            io_error("write snapshot file", final_path, injected("snapshot.write"))
        }
        twig_util::failpoint::Fault::Errno(code) => {
            io_error("write snapshot file", final_path, std::io::Error::from_raw_os_error(code))
        }
        twig_util::failpoint::Fault::Partial(keep_percent) => {
            let framed = frame(payload);
            let keep = framed.len() * keep_percent as usize / 100;
            let (head, _) = framed.split_at(keep);
            std::fs::write(final_path, head).ok();
            io_error("write snapshot file", final_path, injected("snapshot.write"))
        }
    }
}

fn quarantine(path: &Path) -> PathBuf {
    let mut quarantined = path.as_os_str().to_owned();
    quarantined.push(".quarantined");
    let target = PathBuf::from(quarantined);
    match std::fs::rename(path, &target) {
        Ok(()) => target,
        // The torn file could not even be renamed; report it in place.
        Err(_) => path.to_owned(),
    }
}

fn parse_decimal(text: &str) -> Option<u64> {
    if text.is_empty() {
        return None;
    }
    let mut value: u64 = 0;
    for &byte in text.as_bytes() {
        if !byte.is_ascii_digit() {
            return None;
        }
        value = value.checked_mul(10)?.checked_add(u64::from(byte - b'0'))?;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store() -> (PathBuf, SnapshotStore) {
        let dir = std::env::temp_dir().join(format!(
            "twig-snapshot-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = SnapshotStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn persist_then_recover_roundtrips() {
        let (dir, store) = temp_store();
        let payload = b"hello summary bytes".to_vec();
        let path = store.persist("main", 1, &payload).unwrap();
        assert!(path.exists());
        assert_eq!(store.committed_generation("main"), Some(1));
        let recovered = store.recover("main").unwrap().expect("committed snapshot");
        assert_eq!(recovered.payload, payload);
        assert_eq!(recovered.generation, 1);
        assert!(recovered.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_is_quarantined_and_previous_generation_serves() {
        let (dir, store) = temp_store();
        store.persist("main", 1, b"generation one").unwrap();
        // A torn generation 2: written directly, never committed.
        let torn = dir.join(snapshot_file_name("main", 2));
        std::fs::write(&torn, b"TWIG garbage that is too short or wrong").unwrap();
        let recovered = store.recover("main").unwrap().expect("gen 1 still good");
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.payload, b"generation one");
        assert_eq!(recovered.quarantined.len(), 1);
        assert!(!torn.exists(), "torn file renamed aside");
        assert!(recovered.quarantined[0].to_string_lossy().ends_with(".quarantined"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_but_uncommitted_generation_is_discarded() {
        let (dir, store) = temp_store();
        store.persist("main", 3, b"committed three").unwrap();
        // A *complete* generation 4 that never reached the manifest.
        let orphan = dir.join(snapshot_file_name("main", 4));
        std::fs::write(&orphan, frame(b"orphan four")).unwrap();
        let recovered = store.recover("main").unwrap().expect("gen 3 committed");
        assert_eq!(recovered.generation, 3);
        assert_eq!(recovered.payload, b"committed three");
        assert!(recovered.quarantined.is_empty());
        assert!(!orphan.exists(), "uncommitted complete file removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum_mismatch_with_manifest_is_quarantined() {
        let (dir, store) = temp_store();
        store.persist("main", 1, b"real bytes").unwrap();
        // Replace the committed file with a *validly framed* different
        // payload: footer verifies, manifest checksum disagrees.
        let path = dir.join(snapshot_file_name("main", 1));
        std::fs::write(&path, frame(b"swapped bytes")).unwrap();
        let recovered = store.recover("main").unwrap();
        assert!(recovered.is_none(), "no good generation left");
        assert!(!path.exists(), "swapped file quarantined");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_collection_keeps_two_generations() {
        let (dir, store) = temp_store();
        for generation in 1..=4u64 {
            store.persist("main", generation, format!("gen {generation}").as_bytes()).unwrap();
        }
        assert!(!dir.join(snapshot_file_name("main", 1)).exists());
        assert!(!dir.join(snapshot_file_name("main", 2)).exists());
        assert!(dir.join(snapshot_file_name("main", 3)).exists());
        assert!(dir.join(snapshot_file_name("main", 4)).exists());
        // Another summary's files are untouched by main's GC.
        store.persist("other", 1, b"other one").unwrap();
        assert!(dir.join(snapshot_file_name("main", 4)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn names_unsafe_for_filenames_rejected() {
        let (dir, store) = temp_store();
        for bad in ["", ".", "..", "a/b", "a\\b", "a b", "caf\u{e9}"] {
            assert!(store.persist(bad, 1, b"x").is_err(), "accepted {bad:?}");
            assert!(store.recover(bad).is_err());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_garbage_manifest_falls_back_to_footers() {
        let (dir, store) = temp_store();
        store.persist("main", 2, b"two").unwrap();
        // Corrupt the manifest wholesale; footer verification still
        // finds the newest complete generation.
        std::fs::write(store.manifest_file(), b"not a manifest").unwrap();
        let recovered = store.recover("main").unwrap().expect("footers carry recovery");
        assert_eq!(recovered.generation, 2);
        assert_eq!(recovered.payload, b"two");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footer_round_trip_and_tamper_detection() {
        let framed = frame(b"payload");
        let (payload, sum) = verified_payload(framed.clone()).expect("fresh frame verifies");
        assert_eq!(payload, b"payload");
        assert_eq!(sum, checksum(b"payload"));
        for cut in [0usize, 1, 7, framed.len() - 1] {
            assert!(verified_payload(framed[..cut].to_vec()).is_none(), "cut {cut}");
        }
        let mut flipped = framed;
        flipped[0] ^= 0x80;
        assert!(verified_payload(flipped).is_none(), "bit flip detected");
    }
}
