//! twig-serve: a dependency-free twig-selectivity estimation server.
//!
//! Wraps the offline estimator pipeline (`twig-core`) in a long-running
//! network service built entirely on `std`:
//!
//! - [`server::Server`] — an HTTP/1.1 service over `std::net` hosted on
//!   per-core epoll reactor threads (Linux; a blocking fallback serves
//!   elsewhere): each reactor owns a `SO_REUSEPORT` listener shard and
//!   a slab of nonblocking connection state machines with incremental
//!   request parsing, pipelining, and vectored response writes.
//!   Admission control is explicit (per-reactor connection cap → `503`
//!   with escalating `Retry-After`, written inline), deadlines ride a
//!   timer wheel, and shutdown drains in-flight work gracefully.
//! - [`registry::SummaryRegistry`] — named CST summaries behind an
//!   `RwLock`, hot-reloadable via `POST /admin/reload` without dropping
//!   traffic (a failed reload keeps the old summary serving).
//! - [`json`] — a small strict JSON parser/serializer whose `f64`
//!   rendering is shortest-round-trip, so served estimates are
//!   bit-identical to `twig estimate` output.
//! - [`metrics::ServeMetrics`] — atomic counters plus log-bucketed
//!   latency histograms (and per-reactor accept/connection gauges),
//!   exposed at `GET /metrics` in the Prometheus text format.
//! - [`loadgen`] — a closed-loop load generator (also shipped as the
//!   `loadgen` binary) with a deterministic seeded workload, optional
//!   request pipelining, and exact latency percentiles.
//!
//! Endpoints: `POST /estimate` (single query or batch; any
//! [`twig_core::Algorithm`] and count kind), `GET /healthz`,
//! `GET /summaries`, `GET /metrics`, `POST /admin/reload`,
//! `POST /admin/shutdown`. See `DESIGN.md` §8 and §15 for the full
//! contract.

pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
mod plan;
mod reactor;
pub mod registry;
pub mod server;
pub mod snapshot;

/// `RLIMIT_NOFILE` inspection and adjustment (Linux), re-exported for
/// fd-exhaustion tests and the chaos harness: lower the soft limit,
/// drive the server into `EMFILE`, and restore it afterwards.
#[cfg(target_os = "linux")]
pub mod rlimit {
    pub use crate::reactor::sys::{nofile_limit, set_nofile_limit, Rlimit};
}

pub use json::{Json, JsonError};
pub use loadgen::{ConnectionLatency, LoadgenConfig, LoadgenReport};
pub use metrics::ServeMetrics;
pub use registry::{error_chain, LoadError, LoadOutcome, SummaryRegistry, SummarySpec};
pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{SnapshotError, SnapshotStore};
