//! twig-serve: a dependency-free twig-selectivity estimation server.
//!
//! Wraps the offline estimator pipeline (`twig-core`) in a long-running
//! network service built entirely on `std`:
//!
//! - [`server::Server`] — an HTTP/1.1 service over `std::net` with a
//!   bounded worker [`pool::ThreadPool`], explicit admission control
//!   (queue full → `503` + `Retry-After`, written inline by the accept
//!   thread), per-connection read/idle deadlines, body-size limits, and
//!   a graceful shutdown that drains in-flight work.
//! - [`registry::SummaryRegistry`] — named CST summaries behind an
//!   `RwLock`, hot-reloadable via `POST /admin/reload` without dropping
//!   traffic (a failed reload keeps the old summary serving).
//! - [`json`] — a small strict JSON parser/serializer whose `f64`
//!   rendering is shortest-round-trip, so served estimates are
//!   bit-identical to `twig estimate` output.
//! - [`metrics::ServeMetrics`] — atomic counters plus log-bucketed
//!   latency histograms, exposed at `GET /metrics` in the Prometheus
//!   text format.
//! - [`loadgen`] — a closed-loop load generator (also shipped as the
//!   `loadgen` binary) with a deterministic seeded workload and exact
//!   latency percentiles.
//!
//! Endpoints: `POST /estimate` (single query or batch; any
//! [`twig_core::Algorithm`] and count kind), `GET /healthz`,
//! `GET /summaries`, `GET /metrics`, `POST /admin/reload`,
//! `POST /admin/shutdown`. See `DESIGN.md` §8 for the full contract.

pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
mod plan;
pub mod pool;
pub mod registry;
pub mod server;
pub mod snapshot;

pub use json::{Json, JsonError};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use metrics::ServeMetrics;
pub use pool::{Rejected, ThreadPool};
pub use registry::{error_chain, LoadError, LoadOutcome, SummaryRegistry, SummarySpec};
pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{SnapshotError, SnapshotStore};
