//! Closed-loop load generator for a running twig-serve instance.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7716 [--connections 8] [--secs 5] [--batch 16]
//!         [--pipeline 1] [--trickle 0] [--summary default] [--algo msh]
//!         [--count-kind occurrence] [--seed N] [--shutdown] [--smoke]
//! ```
//!
//! `--pipeline N` keeps N requests in flight per connection
//! (HTTP/1.1 pipelining); 1 is the strictly closed loop.
//!
//! `--trickle B` switches every connection to slow-client mode: request
//! bytes dribble out at B bytes/second, exercising the server's
//! minimum-progress (slowloris) defenses. Kills show up as errors.
//!
//! `--smoke` runs a short fixed burst, requires nonzero throughput with
//! zero failures, shuts the server down, and exits nonzero otherwise —
//! this is what CI runs.

use std::process::ExitCode;
use std::time::Duration;

use twig_serve::loadgen::{self, LoadgenConfig};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut config = LoadgenConfig::default();
    let mut smoke = false;
    let mut iter = args.into_iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--shutdown" => config.shutdown_after = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen --addr HOST:PORT [--connections N] [--secs S] \
                     [--batch B] [--pipeline P] [--trickle BYTES_PER_SEC] \
                     [--summary NAME] [--algo NAME] \
                     [--count-kind KIND] [--seed N] [--shutdown] [--smoke]"
                );
                return Ok(());
            }
            "--addr" => config.addr = value(&mut iter, "--addr")?,
            "--summary" => config.summary = value(&mut iter, "--summary")?,
            "--algo" => config.algorithm = value(&mut iter, "--algo")?,
            "--count-kind" => config.count_kind = value(&mut iter, "--count-kind")?,
            "--connections" => config.connections = parsed(&mut iter, "--connections")?,
            "--batch" => config.batch = parsed(&mut iter, "--batch")?,
            "--pipeline" => config.pipeline = parsed(&mut iter, "--pipeline")?,
            "--trickle" => config.trickle = parsed(&mut iter, "--trickle")?,
            "--seed" => config.seed = parsed(&mut iter, "--seed")?,
            "--secs" => {
                let secs: f64 = parsed(&mut iter, "--secs")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--secs must be a positive number".to_owned());
                }
                config.duration = Duration::from_secs_f64(secs);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }

    if smoke {
        let report = loadgen::smoke(&config.addr, &config.summary)?;
        println!("smoke ok: {}", report.render());
        return Ok(());
    }

    let report = loadgen::run(&config)?;
    println!(
        "loadgen: {} conns, batch {}, pipeline {}, {:?} against {}",
        config.connections, config.batch, config.pipeline, config.duration, config.addr
    );
    println!("{}", report.render());
    if report.requests == 0 {
        return Err("no successful requests".to_owned());
    }
    Ok(())
}

fn value(iter: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    iter.next().ok_or_else(|| format!("{flag} requires a value"))
}

fn parsed<T: std::str::FromStr>(
    iter: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let raw = value(iter, flag)?;
    raw.parse().map_err(|_| format!("{flag}: cannot parse '{raw}'"))
}
