//! The server-side query-plan cache.
//!
//! `/estimate` traffic from a query optimizer repeats the same twigs —
//! every join-order candidate re-asks the selectivity of the same
//! predicates. A [`PlanCache`] keeps the parsed [`Twig`] and one
//! [`twig_core::QueryPlan`] (plus the memoized sibling discount) per
//! `(summary, generation, query text)` key, so a repeated query skips
//! twig parsing, compilation, trie walking and twiglet grouping
//! entirely and only re-runs the cheap combination. Keys use the raw
//! request text (not the canonical twig rendering): building a key
//! must not require a parse, or the parse would be back on the hit
//! path. Whitespace variants of one twig therefore occupy separate
//! entries — a capacity nuance, not a correctness one.
//!
//! The cache is sharded (one mutex per shard, key-hashed) so workers
//! rarely contend, and bounded per shard with least-recently-probed
//! eviction. Keys embed the registry generation: a reload bumps the
//! generation, so stale plans can never serve a swapped summary — the
//! reload handler additionally clears the cache to release memory.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use twig_core::QueryPlan;
use twig_tree::Twig;
use twig_util::cast::size_to_u64;
use twig_util::FxHashMap;

/// One cached fast path: the parsed twig, the lazily filled plan and
/// the memoized sibling-injectivity discount for the same query text.
pub(crate) struct CachedPlan {
    pub(crate) twig: Twig,
    pub(crate) plan: QueryPlan,
    pub(crate) discount: OnceLock<f64>,
}

struct Shard {
    entries: FxHashMap<String, (Arc<CachedPlan>, u64)>,
    clock: u64,
}

/// A bounded, sharded map from plan key to [`CachedPlan`].
pub(crate) struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
}

impl PlanCache {
    /// A cache of `shards` shards holding at most ~`capacity` plans
    /// total (rounded up to a whole number per shard).
    pub(crate) fn new(shards: usize, capacity: usize) -> PlanCache {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { entries: FxHashMap::default(), clock: 0 }))
                .collect(),
            shard_capacity,
        }
    }

    /// The cache key: registry name, reload generation, raw query
    /// text. The generation component makes reloads self-invalidating.
    pub(crate) fn key(summary: &str, generation: u64, query_text: &str) -> String {
        format!("{summary}@{generation}:{query_text}")
    }

    /// Returns the cached entry for `key`, bumping its recency stamp.
    pub(crate) fn lookup(&self, key: &str) -> Option<Arc<CachedPlan>> {
        let shard = &mut *self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
        shard.clock += 1;
        let stamp = shard.clock;
        let (plan, last_probed) = shard.entries.get_mut(key)?;
        *last_probed = stamp;
        Some(Arc::clone(plan))
    }

    /// Inserts a freshly parsed twig under `key` (evicting the
    /// least-recently-probed entry of a full shard) and returns the
    /// shared entry. If another thread inserted the same key first,
    /// its entry wins and `twig` is dropped — the two parses are
    /// identical by construction. The flag reports an eviction.
    pub(crate) fn insert(&self, key: &str, twig: Twig) -> (Arc<CachedPlan>, bool) {
        let shard = &mut *self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some((plan, last_probed)) = shard.entries.get_mut(key) {
            *last_probed = stamp;
            return (Arc::clone(plan), false);
        }
        let mut evicted = false;
        if shard.entries.len() >= self.shard_capacity {
            let stale = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, probed))| *probed)
                .map(|(key, _)| key.clone());
            if let Some(stale) = stale {
                evicted = shard.entries.remove(&stale).is_some();
            }
        }
        let plan = Arc::new(CachedPlan { twig, plan: QueryPlan::new(), discount: OnceLock::new() });
        shard.entries.insert(key.to_owned(), (Arc::clone(&plan), stamp));
        (plan, evicted)
    }

    /// Drops every cached plan (called on `/admin/reload`).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(PoisonError::into_inner).entries.clear();
        }
    }

    /// Total cached plans across all shards.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(PoisonError::into_inner).entries.len())
            .sum()
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        // FNV-1a over the key bytes; any stable spread works here.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        let index = (hash % size_to_u64(self.shards.len())) as usize;
        // The modulo keeps `index` in range of the (non-empty) shard
        // vector; the checked access keeps request-derived bytes out
        // of any indexing sink.
        match self.shards.get(index) {
            Some(shard) => shard,
            None => &self.shards[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn twig() -> Twig {
        Twig::parse("a(b)").unwrap()
    }

    #[test]
    fn miss_insert_then_hit_shares_the_plan() {
        let cache = PlanCache::new(4, 64);
        assert!(cache.lookup("default@1:a(b)").is_none());
        let (first, evicted) = cache.insert("default@1:a(b)", twig());
        assert!(!evicted);
        let second = cache.lookup("default@1:a(b)").expect("inserted key hits");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_insert_keeps_the_first_entry() {
        let cache = PlanCache::new(4, 64);
        let (first, _) = cache.insert("k", twig());
        let (second, evicted) = cache.insert("k", twig());
        assert!(!evicted);
        assert!(Arc::ptr_eq(&first, &second), "second insert must not replace");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_in_key_separates_entries() {
        let cache = PlanCache::new(4, 64);
        cache.insert(&PlanCache::key("default", 1, "a(b)"), twig());
        assert!(
            cache.lookup(&PlanCache::key("default", 2, "a(b)")).is_none(),
            "a reload generation must never hit old plans"
        );
    }

    #[test]
    fn full_shard_evicts_least_recently_probed() {
        let cache = PlanCache::new(1, 2);
        cache.insert("a", twig());
        cache.insert("b", twig());
        cache.lookup("a"); // refresh a: b is now the eviction victim
        let (_, evicted) = cache.insert("c", twig());
        assert!(evicted);
        assert!(cache.lookup("a").is_some(), "refreshed entry survives");
        assert!(cache.lookup("b").is_none(), "stale entry was evicted");
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = PlanCache::new(4, 64);
        for key in ["a", "b", "c", "d", "e"] {
            cache.insert(key, twig());
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert!(cache.lookup("a").is_none());
    }
}
