//! The server-side query-plan cache.
//!
//! `/estimate` traffic from a query optimizer repeats the same twigs —
//! every join-order candidate re-asks the selectivity of the same
//! predicates. A [`PlanCache`] keeps one [`twig_core::QueryPlan`] (plus
//! the memoized sibling discount) per `(summary, generation, twig)`
//! key, so a repeated twig skips compilation, trie walking, parsing and
//! twiglet grouping entirely and only re-runs the cheap combination.
//!
//! The cache is sharded (one mutex per shard, key-hashed) so workers
//! rarely contend, and bounded per shard with least-recently-probed
//! eviction. Keys embed the registry generation: a reload bumps the
//! generation, so stale plans can never serve a swapped summary — the
//! reload handler additionally clears the cache to release memory.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use twig_core::QueryPlan;
use twig_tree::Twig;
use twig_util::cast::size_to_u64;
use twig_util::FxHashMap;

/// One cached fast path: the lazily filled plan and the memoized
/// sibling-injectivity discount for the same twig.
pub(crate) struct CachedPlan {
    pub(crate) plan: QueryPlan,
    pub(crate) discount: OnceLock<f64>,
}

/// What one [`PlanCache::probe`] did, for the metrics counters.
pub(crate) struct Probe {
    pub(crate) hit: bool,
    pub(crate) evicted: bool,
}

struct Shard {
    entries: FxHashMap<String, (Arc<CachedPlan>, u64)>,
    clock: u64,
}

/// A bounded, sharded map from plan key to [`CachedPlan`].
pub(crate) struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
}

impl PlanCache {
    /// A cache of `shards` shards holding at most ~`capacity` plans
    /// total (rounded up to a whole number per shard).
    pub(crate) fn new(shards: usize, capacity: usize) -> PlanCache {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        PlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { entries: FxHashMap::default(), clock: 0 }))
                .collect(),
            shard_capacity,
        }
    }

    /// The cache key: registry name, reload generation, canonical twig
    /// text. The generation component makes reloads self-invalidating.
    pub(crate) fn key(summary: &str, generation: u64, twig: &Twig) -> String {
        format!("{summary}@{generation}:{twig}")
    }

    /// Returns the plan for `key`, inserting a fresh empty one on miss
    /// (evicting the least-recently-probed entry of a full shard).
    pub(crate) fn probe(&self, key: &str) -> (Arc<CachedPlan>, Probe) {
        let shard = &mut *self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some((plan, last_probed)) = shard.entries.get_mut(key) {
            *last_probed = stamp;
            return (Arc::clone(plan), Probe { hit: true, evicted: false });
        }
        let mut evicted = false;
        if shard.entries.len() >= self.shard_capacity {
            let stale = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, probed))| *probed)
                .map(|(key, _)| key.clone());
            if let Some(stale) = stale {
                evicted = shard.entries.remove(&stale).is_some();
            }
        }
        let plan = Arc::new(CachedPlan { plan: QueryPlan::new(), discount: OnceLock::new() });
        shard.entries.insert(key.to_owned(), (Arc::clone(&plan), stamp));
        (plan, Probe { hit: false, evicted })
    }

    /// Drops every cached plan (called on `/admin/reload`).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(PoisonError::into_inner).entries.clear();
        }
    }

    /// Total cached plans across all shards.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(PoisonError::into_inner).entries.len())
            .sum()
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        // FNV-1a over the key bytes; any stable spread works here.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        let index = (hash % size_to_u64(self.shards.len())) as usize;
        &self.shards[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_miss_then_hit_shares_the_plan() {
        let cache = PlanCache::new(4, 64);
        let (first, probe) = cache.probe("default@1:a(b)");
        assert!(!probe.hit);
        let (second, probe) = cache.probe("default@1:a(b)");
        assert!(probe.hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_in_key_separates_entries() {
        let cache = PlanCache::new(4, 64);
        cache.probe(&PlanCache::key("default", 1, &Twig::parse("a(b)").unwrap()));
        let (_, probe) = cache.probe(&PlanCache::key("default", 2, &Twig::parse("a(b)").unwrap()));
        assert!(!probe.hit, "a reload generation must never hit old plans");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn full_shard_evicts_least_recently_probed() {
        let cache = PlanCache::new(1, 2);
        cache.probe("a");
        cache.probe("b");
        cache.probe("a"); // refresh a: b is now the eviction victim
        let (_, probe) = cache.probe("c");
        assert!(probe.evicted);
        let (_, probe) = cache.probe("a");
        assert!(probe.hit, "refreshed entry survives");
        let (_, probe) = cache.probe("b");
        assert!(!probe.hit, "stale entry was evicted");
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = PlanCache::new(4, 64);
        for key in ["a", "b", "c", "d", "e"] {
            cache.probe(key);
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert_eq!(cache.len(), 0);
        let (_, probe) = cache.probe("a");
        assert!(!probe.hit);
    }
}
