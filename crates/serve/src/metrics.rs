//! Serve-level metrics: a fixed set of counters and histograms built on
//! [`twig_util::metrics`], rendered in the Prometheus text exposition
//! format by `GET /metrics`.
//!
//! The set is fixed (plain struct fields, no dynamic registry): every
//! metric the server can emit is declared here, recording is a single
//! relaxed `fetch_add`, and rendering cannot race with registration.

use std::fmt::Write as _;

use twig_util::metrics::{bucket_bound, Counter, HistogramSnapshot, LogHistogram, LOG_BUCKETS};

/// All metrics the server exposes.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted (admitted or rejected).
    pub connections_total: Counter,
    /// Connections rejected at admission with `503` (pool saturated).
    pub rejected_saturated: Counter,
    /// Requests fully parsed and routed.
    pub requests_total: Counter,
    /// Responses with 2xx status.
    pub responses_2xx: Counter,
    /// Responses with 4xx status.
    pub responses_4xx: Counter,
    /// Responses with 5xx status.
    pub responses_5xx: Counter,
    /// Individual twig estimates computed by `/estimate`.
    pub estimates_total: Counter,
    /// `/estimate` request bodies processed (batch of 1 counts once).
    pub batches_total: Counter,
    /// Successful summary (re)loads via `/admin/reload`.
    pub reloads_total: Counter,
    /// Failed summary (re)loads via `/admin/reload`.
    pub reload_failures_total: Counter,
    /// Worker panics caught by the pool.
    pub worker_panics_total: Counter,
    /// `/estimate` queries whose plan was already cached.
    pub plan_cache_hits_total: Counter,
    /// `/estimate` queries that had to insert a fresh plan.
    pub plan_cache_misses_total: Counter,
    /// Plans evicted from a full plan-cache shard.
    pub plan_cache_evictions_total: Counter,
    /// Wall time per routed request, microseconds.
    pub request_latency_us: LogHistogram,
    /// Wall time per single estimate inside a batch, microseconds.
    pub estimate_latency_us: LogHistogram,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Buckets a response status into the class counters.
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => {}
        }
    }

    /// Renders every metric in the Prometheus text format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let counters: [(&str, &str, &Counter); 14] = [
            ("twig_serve_connections_total", "Connections accepted", &self.connections_total),
            (
                "twig_serve_rejected_saturated_total",
                "Connections rejected with 503 (queue full)",
                &self.rejected_saturated,
            ),
            ("twig_serve_requests_total", "Requests routed", &self.requests_total),
            ("twig_serve_responses_2xx_total", "2xx responses", &self.responses_2xx),
            ("twig_serve_responses_4xx_total", "4xx responses", &self.responses_4xx),
            ("twig_serve_responses_5xx_total", "5xx responses", &self.responses_5xx),
            ("twig_serve_estimates_total", "Individual estimates computed", &self.estimates_total),
            ("twig_serve_batches_total", "Estimate bodies processed", &self.batches_total),
            ("twig_serve_reloads_total", "Successful summary reloads", &self.reloads_total),
            (
                "twig_serve_reload_failures_total",
                "Failed summary reloads",
                &self.reload_failures_total,
            ),
            ("twig_serve_worker_panics_total", "Worker panics caught", &self.worker_panics_total),
            (
                "twig_serve_plan_cache_hits_total",
                "Estimate queries served from a cached plan",
                &self.plan_cache_hits_total,
            ),
            (
                "twig_serve_plan_cache_misses_total",
                "Estimate queries that inserted a fresh plan",
                &self.plan_cache_misses_total,
            ),
            (
                "twig_serve_plan_cache_evictions_total",
                "Plans evicted from a full cache shard",
                &self.plan_cache_evictions_total,
            ),
        ];
        for (name, help, counter) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        render_histogram(
            &mut out,
            "twig_serve_request_latency_us",
            "Request wall time, microseconds",
            &self.request_latency_us.snapshot(),
        );
        render_histogram(
            &mut out,
            "twig_serve_estimate_latency_us",
            "Per-estimate wall time, microseconds",
            &self.estimate_latency_us.snapshot(),
        );
        out
    }
}

fn render_histogram(out: &mut String, name: &str, help: &str, snapshot: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Only buckets that received observations are listed (cumulative
    // counts stay monotone, which is all the exposition format needs);
    // the 40-bucket histogram would otherwise be mostly zeros.
    let mut prev = 0;
    for (index, &cumulative) in snapshot.cumulative.iter().enumerate() {
        if index + 1 == LOG_BUCKETS {
            break; // the terminal bucket is rendered as +Inf below
        }
        if cumulative > prev {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_bound(index));
        }
        prev = cumulative;
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snapshot.count);
    let _ = writeln!(out, "{name}_sum {}", snapshot.sum);
    let _ = writeln!(out, "{name}_count {}", snapshot.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let metrics = ServeMetrics::new();
        metrics.requests_total.add(3);
        metrics.count_status(200);
        metrics.count_status(404);
        metrics.count_status(503);
        metrics.request_latency_us.record(100);
        metrics.request_latency_us.record(900);
        let text = metrics.render_prometheus();
        assert!(text.contains("twig_serve_requests_total 3"), "{text}");
        assert!(text.contains("twig_serve_responses_2xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_responses_4xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_responses_5xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_bucket{le=\"128\"} 1"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_sum 1000"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_count 2"), "{text}");
        // Every line is well-formed exposition: name{labels} value or # comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }
}
