//! Serve-level metrics: a fixed set of counters and histograms built on
//! [`twig_util::metrics`], rendered in the Prometheus text exposition
//! format by `GET /metrics`.
//!
//! The set is fixed (plain struct fields, no dynamic registry): every
//! metric the server can emit is declared here, recording is a single
//! relaxed `fetch_add`, and rendering cannot race with registration.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use twig_util::metrics::{bucket_bound, Counter, HistogramSnapshot, LogHistogram, LOG_BUCKETS};

/// A reactor whose heartbeat is older than this is reported stalled (in
/// `/healthz` and the `twig_serve_reactor_stalled` gauge). The serve
/// loop stamps every iteration and sleeps at most ~100 ms, so five full
/// seconds of silence means the thread is wedged, not merely idle.
pub const REACTOR_STALL_AFTER: Duration = Duration::from_secs(5);

/// Per-reactor instruments, exposed with a `reactor="<index>"` label.
/// The reactor thread updates these single-writer; `/metrics` renders
/// concurrently, so the fields are relaxed atomics (counters with
/// `fetch_add`/`fetch_sub` only, plus one single-writer timestamp stamp
/// — no ordering-sensitive publication).
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Connections this reactor's listener shard accepted.
    pub accepted: AtomicU64,
    /// Connections currently open on this reactor (gauge).
    connections: AtomicU64,
    /// Liveness stamp: milliseconds since the metrics heartbeat epoch at
    /// the reactor's last serve-loop iteration. Single writer (the
    /// reactor thread); readers only compare staleness.
    heartbeat_ms: AtomicU64,
}

impl ReactorStats {
    /// Bumps the accepted-connections counter.
    pub fn accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection opening on this reactor.
    pub fn conn_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closing on this reactor.
    pub fn conn_closed(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Stamps the liveness heartbeat (`now_ms` from
    /// [`ServeMetrics::now_ms`]).
    pub fn beat(&self, now_ms: u64) {
        self.heartbeat_ms.store(now_ms, Ordering::Relaxed);
    }

    /// The last heartbeat stamp, milliseconds since the epoch.
    #[must_use]
    pub fn heartbeat_ms(&self) -> u64 {
        self.heartbeat_ms.load(Ordering::Relaxed)
    }
}

/// Accept-path failures bucketed by errno class, exposed as
/// `twig_serve_accept_errors_total{errno="..."}`. Fixed label set — one
/// counter per class the reactor's taxonomy distinguishes.
#[derive(Debug, Default)]
pub struct AcceptErrorStats {
    emfile: Counter,
    enfile: Counter,
    enomem: Counter,
    eintr: Counter,
    aborted: Counter,
    reset: Counter,
    other: Counter,
}

impl AcceptErrorStats {
    /// Counts one accept failure by its raw OS errno (Linux values:
    /// the only platform with the reactor accept path).
    pub fn count(&self, raw_errno: Option<i32>) {
        match raw_errno {
            Some(24) => self.emfile.inc(),
            Some(23) => self.enfile.inc(),
            Some(12) => self.enomem.inc(),
            Some(4) => self.eintr.inc(),
            Some(103) => self.aborted.inc(),
            Some(104) => self.reset.inc(),
            _ => self.other.inc(),
        }
    }

    /// Label/counter pairs, in render order.
    fn rows(&self) -> [(&'static str, &Counter); 7] {
        [
            ("emfile", &self.emfile),
            ("enfile", &self.enfile),
            ("enomem", &self.enomem),
            ("eintr", &self.eintr),
            ("aborted", &self.aborted),
            ("reset", &self.reset),
            ("other", &self.other),
        ]
    }

    /// Total failures counted under fd-exhaustion errnos.
    #[must_use]
    pub fn fd_exhausted(&self) -> u64 {
        self.emfile.get() + self.enfile.get()
    }

    /// Total failures across every class.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.rows().iter().map(|(_, counter)| counter.get()).sum()
    }
}

/// All metrics the server exposes.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted (admitted or rejected).
    pub connections_total: Counter,
    /// Connections rejected at admission with `503` (pool saturated).
    pub rejected_saturated: Counter,
    /// Requests fully parsed and routed.
    pub requests_total: Counter,
    /// Responses with 2xx status.
    pub responses_2xx: Counter,
    /// Responses with 4xx status.
    pub responses_4xx: Counter,
    /// Responses with 5xx status.
    pub responses_5xx: Counter,
    /// Individual twig estimates computed by `/estimate`.
    pub estimates_total: Counter,
    /// `/estimate` request bodies processed (batch of 1 counts once).
    pub batches_total: Counter,
    /// Successful summary (re)loads via `/admin/reload`.
    pub reloads_total: Counter,
    /// Failed summary (re)loads via `/admin/reload`.
    pub reload_failures_total: Counter,
    /// Worker panics caught by the pool.
    pub worker_panics_total: Counter,
    /// `/estimate` queries whose plan was already cached.
    pub plan_cache_hits_total: Counter,
    /// `/estimate` queries that had to insert a fresh plan.
    pub plan_cache_misses_total: Counter,
    /// Plans evicted from a full plan-cache shard.
    pub plan_cache_evictions_total: Counter,
    /// Requests parsed from a receive buffer that already yielded an
    /// earlier request in the same readiness pass (HTTP/1.1 pipelining).
    pub pipelined_requests_total: Counter,
    /// Idle connections evicted to admit new work under slab pressure.
    pub conns_evicted_total: Counter,
    /// Connections killed for violating the minimum-progress deadline
    /// (slow-read / slow-write abuse).
    pub progress_kills_total: Counter,
    /// Accept-path syscall failures, bucketed by errno class.
    pub accept_errors: AcceptErrorStats,
    /// Wall time per routed request, microseconds.
    pub request_latency_us: LogHistogram,
    /// Wall time per single estimate inside a batch, microseconds.
    pub estimate_latency_us: LogHistogram,
    /// Per-reactor instruments, sized once at reactor spawn.
    reactors: OnceLock<Vec<ReactorStats>>,
    /// Epoch for heartbeat stamps, fixed at first use.
    heartbeat_epoch: OnceLock<Instant>,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Sizes the per-reactor stat set (idempotent; first caller wins).
    /// Each slot starts with a fresh heartbeat so a reactor is not
    /// reported stalled before its first loop iteration.
    pub fn init_reactors(&self, count: usize) {
        let now = self.now_ms();
        let _ = self.reactors.get_or_init(|| {
            (0..count)
                .map(|_| {
                    let stats = ReactorStats::default();
                    stats.beat(now);
                    stats
                })
                .collect()
        });
    }

    /// The stats slot for reactor `index`, if initialized.
    #[must_use]
    pub fn reactor(&self, index: usize) -> Option<&ReactorStats> {
        self.reactors.get().and_then(|stats| stats.get(index))
    }

    /// Every reactor's stats, in index order (empty before reactor spawn).
    #[must_use]
    pub fn reactor_stats(&self) -> &[ReactorStats] {
        self.reactors.get().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Milliseconds since this metric set's heartbeat epoch; the clock
    /// reactors stamp via [`ReactorStats::beat`].
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        let epoch = self.heartbeat_epoch.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// How many reactors have not stamped a heartbeat within
    /// `stall_after`.
    #[must_use]
    pub fn stalled_reactors(&self, stall_after: Duration) -> u64 {
        let now = self.now_ms();
        let horizon = u64::try_from(stall_after.as_millis()).unwrap_or(u64::MAX);
        let stalled = self
            .reactor_stats()
            .iter()
            .filter(|stats| now.saturating_sub(stats.heartbeat_ms()) > horizon)
            .count();
        u64::try_from(stalled).unwrap_or(u64::MAX)
    }

    /// Buckets a response status into the class counters.
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => {}
        }
    }

    /// Renders every metric in the Prometheus text format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let counters: [(&str, &str, &Counter); 17] = [
            ("twig_serve_connections_total", "Connections accepted", &self.connections_total),
            (
                "twig_serve_rejected_saturated_total",
                "Connections rejected with 503 (queue full)",
                &self.rejected_saturated,
            ),
            ("twig_serve_requests_total", "Requests routed", &self.requests_total),
            ("twig_serve_responses_2xx_total", "2xx responses", &self.responses_2xx),
            ("twig_serve_responses_4xx_total", "4xx responses", &self.responses_4xx),
            ("twig_serve_responses_5xx_total", "5xx responses", &self.responses_5xx),
            ("twig_serve_estimates_total", "Individual estimates computed", &self.estimates_total),
            ("twig_serve_batches_total", "Estimate bodies processed", &self.batches_total),
            ("twig_serve_reloads_total", "Successful summary reloads", &self.reloads_total),
            (
                "twig_serve_reload_failures_total",
                "Failed summary reloads",
                &self.reload_failures_total,
            ),
            ("twig_serve_worker_panics_total", "Worker panics caught", &self.worker_panics_total),
            (
                "twig_serve_plan_cache_hits_total",
                "Estimate queries served from a cached plan",
                &self.plan_cache_hits_total,
            ),
            (
                "twig_serve_plan_cache_misses_total",
                "Estimate queries that inserted a fresh plan",
                &self.plan_cache_misses_total,
            ),
            (
                "twig_serve_plan_cache_evictions_total",
                "Plans evicted from a full cache shard",
                &self.plan_cache_evictions_total,
            ),
            (
                "twig_serve_pipelined_requests_total",
                "Requests that arrived pipelined behind another",
                &self.pipelined_requests_total,
            ),
            (
                "twig_serve_conns_evicted_total",
                "Idle connections evicted under slab pressure",
                &self.conns_evicted_total,
            ),
            (
                "twig_serve_progress_kills_total",
                "Connections killed for missing the minimum-progress deadline",
                &self.progress_kills_total,
            ),
        ];
        for (name, help, counter) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        render_histogram(
            &mut out,
            "twig_serve_request_latency_us",
            "Request wall time, microseconds",
            &self.request_latency_us.snapshot(),
        );
        render_histogram(
            &mut out,
            "twig_serve_estimate_latency_us",
            "Per-estimate wall time, microseconds",
            &self.estimate_latency_us.snapshot(),
        );
        let _ = writeln!(
            out,
            "# HELP twig_serve_accept_errors_total Accept-path syscall failures by errno class"
        );
        let _ = writeln!(out, "# TYPE twig_serve_accept_errors_total counter");
        for (label, counter) in self.accept_errors.rows() {
            let _ = writeln!(
                out,
                "twig_serve_accept_errors_total{{errno=\"{label}\"}} {}",
                counter.get()
            );
        }
        let _ = writeln!(
            out,
            "# HELP twig_serve_reactor_stalled Reactors with a heartbeat older than the stall threshold"
        );
        let _ = writeln!(out, "# TYPE twig_serve_reactor_stalled gauge");
        let _ = writeln!(
            out,
            "twig_serve_reactor_stalled {}",
            self.stalled_reactors(REACTOR_STALL_AFTER)
        );
        if let Some(reactors) = self.reactors.get() {
            let _ = writeln!(
                out,
                "# HELP twig_serve_reactor_accepted_total Connections accepted per reactor shard"
            );
            let _ = writeln!(out, "# TYPE twig_serve_reactor_accepted_total counter");
            for (index, stats) in reactors.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "twig_serve_reactor_accepted_total{{reactor=\"{index}\"}} {}",
                    stats.accepted.load(Ordering::Relaxed)
                );
            }
            let _ = writeln!(
                out,
                "# HELP twig_serve_reactor_connections Open connections per reactor shard"
            );
            let _ = writeln!(out, "# TYPE twig_serve_reactor_connections gauge");
            for (index, stats) in reactors.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "twig_serve_reactor_connections{{reactor=\"{index}\"}} {}",
                    stats.connections()
                );
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, help: &str, snapshot: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Only buckets that received observations are listed (cumulative
    // counts stay monotone, which is all the exposition format needs);
    // the 40-bucket histogram would otherwise be mostly zeros.
    let mut prev = 0;
    for (index, &cumulative) in snapshot.cumulative.iter().enumerate() {
        if index + 1 == LOG_BUCKETS {
            break; // the terminal bucket is rendered as +Inf below
        }
        if cumulative > prev {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_bound(index));
        }
        prev = cumulative;
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snapshot.count);
    let _ = writeln!(out, "{name}_sum {}", snapshot.sum);
    let _ = writeln!(out, "{name}_count {}", snapshot.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let metrics = ServeMetrics::new();
        metrics.requests_total.add(3);
        metrics.count_status(200);
        metrics.count_status(404);
        metrics.count_status(503);
        metrics.request_latency_us.record(100);
        metrics.request_latency_us.record(900);
        let text = metrics.render_prometheus();
        assert!(text.contains("twig_serve_requests_total 3"), "{text}");
        assert!(text.contains("twig_serve_responses_2xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_responses_4xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_responses_5xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_bucket{le=\"128\"} 1"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_sum 1000"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_count 2"), "{text}");
        // Every line is well-formed exposition: name{labels} value or # comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn accept_errors_and_stall_gauge_render() {
        let metrics = ServeMetrics::new();
        metrics.init_reactors(2);
        metrics.accept_errors.count(Some(24)); // EMFILE
        metrics.accept_errors.count(Some(23)); // ENFILE
        metrics.accept_errors.count(Some(4)); // EINTR
        metrics.accept_errors.count(Some(999));
        metrics.accept_errors.count(None);
        assert_eq!(metrics.accept_errors.fd_exhausted(), 2);
        assert_eq!(metrics.accept_errors.total(), 5);
        let text = metrics.render_prometheus();
        assert!(text.contains("twig_serve_accept_errors_total{errno=\"emfile\"} 1"), "{text}");
        assert!(text.contains("twig_serve_accept_errors_total{errno=\"enfile\"} 1"), "{text}");
        assert!(text.contains("twig_serve_accept_errors_total{errno=\"eintr\"} 1"), "{text}");
        assert!(text.contains("twig_serve_accept_errors_total{errno=\"other\"} 2"), "{text}");
        assert!(text.contains("twig_serve_conns_evicted_total 0"), "{text}");
        assert!(text.contains("twig_serve_progress_kills_total 0"), "{text}");
        // Fresh heartbeats: nothing is stalled yet.
        assert!(text.contains("twig_serve_reactor_stalled 0"), "{text}");
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn stalled_reactor_detection_uses_heartbeat_age() {
        let metrics = ServeMetrics::new();
        metrics.init_reactors(3);
        // All fresh: none stalled under a generous threshold.
        assert_eq!(metrics.stalled_reactors(Duration::from_secs(3600)), 0);
        // Let the clock advance past a tight threshold, then stamp two
        // of the three reactors fresh: only the silent one is stalled.
        std::thread::sleep(Duration::from_millis(5));
        metrics.reactor(0).unwrap().beat(metrics.now_ms());
        metrics.reactor(2).unwrap().beat(metrics.now_ms());
        assert_eq!(metrics.stalled_reactors(Duration::from_millis(1)), 1);
        // Re-stamping clears the stall.
        metrics.reactor(1).unwrap().beat(metrics.now_ms());
        assert_eq!(metrics.stalled_reactors(Duration::from_millis(1)), 0);
    }

    #[test]
    fn per_reactor_stats_render_labeled_and_well_formed() {
        let metrics = ServeMetrics::new();
        metrics.init_reactors(2);
        let reactor0 = metrics.reactor(0).unwrap();
        reactor0.accept();
        reactor0.conn_opened();
        reactor0.conn_opened();
        reactor0.conn_closed();
        assert_eq!(reactor0.connections(), 1);
        assert!(metrics.reactor(2).is_none());
        let text = metrics.render_prometheus();
        assert!(text.contains("twig_serve_reactor_accepted_total{reactor=\"0\"} 1"), "{text}");
        assert!(text.contains("twig_serve_reactor_accepted_total{reactor=\"1\"} 0"), "{text}");
        assert!(text.contains("twig_serve_reactor_connections{reactor=\"0\"} 1"), "{text}");
        assert!(text.contains("twig_serve_reactor_connections{reactor=\"1\"} 0"), "{text}");
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }
}
