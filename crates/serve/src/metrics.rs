//! Serve-level metrics: a fixed set of counters and histograms built on
//! [`twig_util::metrics`], rendered in the Prometheus text exposition
//! format by `GET /metrics`.
//!
//! The set is fixed (plain struct fields, no dynamic registry): every
//! metric the server can emit is declared here, recording is a single
//! relaxed `fetch_add`, and rendering cannot race with registration.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use twig_util::metrics::{bucket_bound, Counter, HistogramSnapshot, LogHistogram, LOG_BUCKETS};

/// Per-reactor instruments, exposed with a `reactor="<index>"` label.
/// The reactor thread updates these single-writer; `/metrics` renders
/// concurrently, so the fields are relaxed atomics (counters with
/// `fetch_add`/`fetch_sub` only — no ordering-sensitive publication).
#[derive(Debug, Default)]
pub struct ReactorStats {
    /// Connections this reactor's listener shard accepted.
    pub accepted: AtomicU64,
    /// Connections currently open on this reactor (gauge).
    connections: AtomicU64,
}

impl ReactorStats {
    /// Bumps the accepted-connections counter.
    pub fn accept(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection opening on this reactor.
    pub fn conn_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection closing on this reactor.
    pub fn conn_closed(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open connections.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

/// All metrics the server exposes.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted (admitted or rejected).
    pub connections_total: Counter,
    /// Connections rejected at admission with `503` (pool saturated).
    pub rejected_saturated: Counter,
    /// Requests fully parsed and routed.
    pub requests_total: Counter,
    /// Responses with 2xx status.
    pub responses_2xx: Counter,
    /// Responses with 4xx status.
    pub responses_4xx: Counter,
    /// Responses with 5xx status.
    pub responses_5xx: Counter,
    /// Individual twig estimates computed by `/estimate`.
    pub estimates_total: Counter,
    /// `/estimate` request bodies processed (batch of 1 counts once).
    pub batches_total: Counter,
    /// Successful summary (re)loads via `/admin/reload`.
    pub reloads_total: Counter,
    /// Failed summary (re)loads via `/admin/reload`.
    pub reload_failures_total: Counter,
    /// Worker panics caught by the pool.
    pub worker_panics_total: Counter,
    /// `/estimate` queries whose plan was already cached.
    pub plan_cache_hits_total: Counter,
    /// `/estimate` queries that had to insert a fresh plan.
    pub plan_cache_misses_total: Counter,
    /// Plans evicted from a full plan-cache shard.
    pub plan_cache_evictions_total: Counter,
    /// Requests parsed from a receive buffer that already yielded an
    /// earlier request in the same readiness pass (HTTP/1.1 pipelining).
    pub pipelined_requests_total: Counter,
    /// Wall time per routed request, microseconds.
    pub request_latency_us: LogHistogram,
    /// Wall time per single estimate inside a batch, microseconds.
    pub estimate_latency_us: LogHistogram,
    /// Per-reactor instruments, sized once at reactor spawn.
    reactors: OnceLock<Vec<ReactorStats>>,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Sizes the per-reactor stat set (idempotent; first caller wins).
    pub fn init_reactors(&self, count: usize) {
        let _ = self.reactors.get_or_init(|| (0..count).map(|_| ReactorStats::default()).collect());
    }

    /// The stats slot for reactor `index`, if initialized.
    #[must_use]
    pub fn reactor(&self, index: usize) -> Option<&ReactorStats> {
        self.reactors.get().and_then(|stats| stats.get(index))
    }

    /// Buckets a response status into the class counters.
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.responses_2xx.inc(),
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => {}
        }
    }

    /// Renders every metric in the Prometheus text format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let counters: [(&str, &str, &Counter); 15] = [
            ("twig_serve_connections_total", "Connections accepted", &self.connections_total),
            (
                "twig_serve_rejected_saturated_total",
                "Connections rejected with 503 (queue full)",
                &self.rejected_saturated,
            ),
            ("twig_serve_requests_total", "Requests routed", &self.requests_total),
            ("twig_serve_responses_2xx_total", "2xx responses", &self.responses_2xx),
            ("twig_serve_responses_4xx_total", "4xx responses", &self.responses_4xx),
            ("twig_serve_responses_5xx_total", "5xx responses", &self.responses_5xx),
            ("twig_serve_estimates_total", "Individual estimates computed", &self.estimates_total),
            ("twig_serve_batches_total", "Estimate bodies processed", &self.batches_total),
            ("twig_serve_reloads_total", "Successful summary reloads", &self.reloads_total),
            (
                "twig_serve_reload_failures_total",
                "Failed summary reloads",
                &self.reload_failures_total,
            ),
            ("twig_serve_worker_panics_total", "Worker panics caught", &self.worker_panics_total),
            (
                "twig_serve_plan_cache_hits_total",
                "Estimate queries served from a cached plan",
                &self.plan_cache_hits_total,
            ),
            (
                "twig_serve_plan_cache_misses_total",
                "Estimate queries that inserted a fresh plan",
                &self.plan_cache_misses_total,
            ),
            (
                "twig_serve_plan_cache_evictions_total",
                "Plans evicted from a full cache shard",
                &self.plan_cache_evictions_total,
            ),
            (
                "twig_serve_pipelined_requests_total",
                "Requests that arrived pipelined behind another",
                &self.pipelined_requests_total,
            ),
        ];
        for (name, help, counter) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        render_histogram(
            &mut out,
            "twig_serve_request_latency_us",
            "Request wall time, microseconds",
            &self.request_latency_us.snapshot(),
        );
        render_histogram(
            &mut out,
            "twig_serve_estimate_latency_us",
            "Per-estimate wall time, microseconds",
            &self.estimate_latency_us.snapshot(),
        );
        if let Some(reactors) = self.reactors.get() {
            let _ = writeln!(
                out,
                "# HELP twig_serve_reactor_accepted_total Connections accepted per reactor shard"
            );
            let _ = writeln!(out, "# TYPE twig_serve_reactor_accepted_total counter");
            for (index, stats) in reactors.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "twig_serve_reactor_accepted_total{{reactor=\"{index}\"}} {}",
                    stats.accepted.load(Ordering::Relaxed)
                );
            }
            let _ = writeln!(
                out,
                "# HELP twig_serve_reactor_connections Open connections per reactor shard"
            );
            let _ = writeln!(out, "# TYPE twig_serve_reactor_connections gauge");
            for (index, stats) in reactors.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "twig_serve_reactor_connections{{reactor=\"{index}\"}} {}",
                    stats.connections()
                );
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, help: &str, snapshot: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    // Only buckets that received observations are listed (cumulative
    // counts stay monotone, which is all the exposition format needs);
    // the 40-bucket histogram would otherwise be mostly zeros.
    let mut prev = 0;
    for (index, &cumulative) in snapshot.cumulative.iter().enumerate() {
        if index + 1 == LOG_BUCKETS {
            break; // the terminal bucket is rendered as +Inf below
        }
        if cumulative > prev {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_bound(index));
        }
        prev = cumulative;
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snapshot.count);
    let _ = writeln!(out, "{name}_sum {}", snapshot.sum);
    let _ = writeln!(out, "{name}_count {}", snapshot.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let metrics = ServeMetrics::new();
        metrics.requests_total.add(3);
        metrics.count_status(200);
        metrics.count_status(404);
        metrics.count_status(503);
        metrics.request_latency_us.record(100);
        metrics.request_latency_us.record(900);
        let text = metrics.render_prometheus();
        assert!(text.contains("twig_serve_requests_total 3"), "{text}");
        assert!(text.contains("twig_serve_responses_2xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_responses_4xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_responses_5xx_total 1"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_bucket{le=\"128\"} 1"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_sum 1000"), "{text}");
        assert!(text.contains("twig_serve_request_latency_us_count 2"), "{text}");
        // Every line is well-formed exposition: name{labels} value or # comment.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn per_reactor_stats_render_labeled_and_well_formed() {
        let metrics = ServeMetrics::new();
        metrics.init_reactors(2);
        let reactor0 = metrics.reactor(0).unwrap();
        reactor0.accept();
        reactor0.conn_opened();
        reactor0.conn_opened();
        reactor0.conn_closed();
        assert_eq!(reactor0.connections(), 1);
        assert!(metrics.reactor(2).is_none());
        let text = metrics.render_prometheus();
        assert!(text.contains("twig_serve_reactor_accepted_total{reactor=\"0\"} 1"), "{text}");
        assert!(text.contains("twig_serve_reactor_accepted_total{reactor=\"1\"} 0"), "{text}");
        assert!(text.contains("twig_serve_reactor_connections{reactor=\"0\"} 1"), "{text}");
        assert!(text.contains("twig_serve_reactor_connections{reactor=\"1\"} 0"), "{text}");
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "malformed exposition line: {line}"
            );
        }
    }
}
