//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Implements exactly the subset the serve protocol needs, on both the
//! server side (`read_request` / `Response::write_to`) and the client
//! side (`write_request` / `read_response`, used by `loadgen` and the
//! integration tests):
//!
//! - request/status line + headers, terminated by a blank line,
//! - bodies framed by `Content-Length` (the server never sends chunked),
//! - keep-alive by default (HTTP/1.1), `Connection: close` honored,
//! - hard limits on header and body size,
//! - cooperative deadlines: sockets run with a short read timeout and
//!   the read loop polls an externally supplied shutdown flag, so an
//!   idle keep-alive connection never pins a worker during shutdown.
//!
//! Parsing is *incremental*: [`parse_request_bytes`] inspects a receive
//! buffer and either yields one complete request plus the byte count it
//! consumed, or asks for more bytes — it never loses data. That is what
//! makes HTTP/1.1 pipelining work: bytes past one complete request stay
//! in the buffer and frame the next one. The blocking [`read_request`]
//! (used by tests and the portable fallback path) is a thin read loop
//! over the same parser, so blocking and nonblocking servers cannot
//! disagree about what a request means.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Read-side limits and deadlines for one connection.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of declared body.
    pub max_body_bytes: usize,
    /// Deadline for receiving a complete request once its first byte
    /// arrived.
    pub read_deadline: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            read_deadline: Duration::from_secs(10),
            idle_deadline: Duration::from_secs(30),
        }
    }
}

/// Why reading a request (or response) stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Peer closed the connection cleanly before sending anything.
    Closed,
    /// No bytes arrived within the idle deadline.
    IdleTimeout,
    /// A request started arriving but did not complete in time.
    Timeout,
    /// Shutdown was requested while the connection sat idle.
    ShuttingDown,
    /// Head (request line + headers) exceeded `max_head_bytes`.
    HeadTooLarge,
    /// Declared body exceeds `max_body_bytes`.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
    },
    /// The bytes are not parseable HTTP.
    Malformed(&'static str),
    /// Transport error.
    Io(io::Error),
}

impl std::fmt::Display for ReadOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadOutcome::Closed => write!(f, "connection closed"),
            ReadOutcome::IdleTimeout => write!(f, "idle timeout"),
            ReadOutcome::Timeout => write!(f, "request read timed out"),
            ReadOutcome::ShuttingDown => write!(f, "server shutting down"),
            ReadOutcome::HeadTooLarge => write!(f, "request head too large"),
            ReadOutcome::BodyTooLarge { declared } => {
                write!(f, "request body too large ({declared} bytes declared)")
            }
            ReadOutcome::Malformed(what) => write!(f, "malformed request: {what}"),
            ReadOutcome::Io(err) => write!(f, "I/O error: {err}"),
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …) as sent.
    pub method: String,
    /// The request target (path + optional query), as sent.
    pub target: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the connection should be kept open after responding.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(value) => !value.eq_ignore_ascii_case("close"),
            None => true, // HTTP/1.1 default
        }
    }

    /// The path portion of the target (query string stripped).
    #[must_use]
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }
}

/// Granularity of the cooperative read loop: the socket read timeout.
/// Shutdown and deadline checks happen at this cadence.
const POLL_TICK: Duration = Duration::from_millis(50);

/// True when the error is the platform's "read timed out" signal.
fn is_timeout(err: &io::Error) -> bool {
    matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads bytes until `buffer` contains a full head (`\r\n\r\n`),
/// returning the index just past the terminator.
fn read_head(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
    limits: &Limits,
    shutdown: &dyn Fn() -> bool,
) -> Result<usize, ReadOutcome> {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return Err(ReadOutcome::Malformed("cannot set read timeout"));
    }
    let idle_start = Instant::now();
    let mut first_byte_at: Option<Instant> = None;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(done) = find_head_end(buffer) {
            return Ok(done);
        }
        if buffer.len() > limits.max_head_bytes {
            return Err(ReadOutcome::HeadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buffer.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-head")
                });
            }
            Ok(n) => {
                if first_byte_at.is_none() {
                    first_byte_at = Some(Instant::now());
                }
                // A sane `Read` never returns more than the buffer
                // holds; map a broken impl to an error, not a panic.
                match chunk.get(..n) {
                    Some(filled) => buffer.extend_from_slice(filled),
                    None => return Err(ReadOutcome::Malformed("read length out of range")),
                }
            }
            Err(err) if is_timeout(&err) => match first_byte_at {
                Some(started) => {
                    if started.elapsed() > limits.read_deadline {
                        return Err(ReadOutcome::Timeout);
                    }
                }
                None => {
                    if shutdown() {
                        return Err(ReadOutcome::ShuttingDown);
                    }
                    if idle_start.elapsed() > limits.idle_deadline {
                        return Err(ReadOutcome::IdleTimeout);
                    }
                }
            },
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(ReadOutcome::Io(err)),
        }
    }
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n").map(|at| at + 4)
}

/// Whether `buffer` already holds a complete request head (used to
/// distinguish mid-head from mid-body EOF in the reactor).
pub(crate) fn head_complete(buffer: &[u8]) -> bool {
    find_head_end(buffer).is_some()
}

/// Reads body bytes until `buffer` holds `head_end + length` bytes.
fn read_body(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
    head_end: usize,
    length: usize,
    limits: &Limits,
) -> Result<(), ReadOutcome> {
    // `length` is the peer's own content-length claim; unchecked addition
    // here once wrapped on a hostile declaration (the PR 3 overflow bug).
    let want =
        head_end.checked_add(length).ok_or(ReadOutcome::Malformed("content-length overflow"))?;
    let started = Instant::now();
    let mut chunk = [0u8; 16 * 1024];
    while buffer.len() < want {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadOutcome::Malformed("connection closed mid-body")),
            Ok(n) => match chunk.get(..n) {
                Some(filled) => buffer.extend_from_slice(filled),
                None => return Err(ReadOutcome::Malformed("read length out of range")),
            },
            Err(err) if is_timeout(&err) => {
                if started.elapsed() > limits.read_deadline {
                    return Err(ReadOutcome::Timeout);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(ReadOutcome::Io(err)),
        }
    }
    Ok(())
}

/// Outcome of one [`parse_request_bytes`] pass over a receive buffer.
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold one complete request.
    NeedMore,
    /// One complete request; the first `consumed` buffer bytes framed it
    /// (the caller drains them and re-parses — pipelined requests queue
    /// behind them untouched).
    Request {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed (head + body).
        consumed: usize,
    },
}

/// Parses at most one request from the front of `buffer`.
///
/// Incremental: safe to call after every partial read. Limit violations
/// (`HeadTooLarge`, `BodyTooLarge`) are detected as early as the bytes
/// allow — an oversized declared body is rejected from its head alone,
/// before any body byte arrives.
pub fn parse_request_bytes(buffer: &[u8], limits: &Limits) -> Result<Parsed, ReadOutcome> {
    let Some(head_end) = find_head_end(buffer) else {
        if buffer.len() > limits.max_head_bytes {
            return Err(ReadOutcome::HeadTooLarge);
        }
        return Ok(Parsed::NeedMore);
    };
    let head_bytes = buffer
        .get(..head_end.saturating_sub(4))
        .ok_or(ReadOutcome::Malformed("head boundary out of range"))?;
    let head =
        std::str::from_utf8(head_bytes).map_err(|_| ReadOutcome::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadOutcome::Malformed("bad request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadOutcome::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadOutcome::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request =
        Request { method: method.to_owned(), target: target.to_owned(), headers, body: Vec::new() };
    let length = match request.header("content-length") {
        None => 0,
        Some(text) => match text.parse::<usize>() {
            Ok(length) => length,
            Err(_) => return Err(ReadOutcome::Malformed("bad content-length")),
        },
    };
    if length > limits.max_body_bytes {
        return Err(ReadOutcome::BodyTooLarge { declared: length });
    }
    if request.header("transfer-encoding").is_some() {
        return Err(ReadOutcome::Malformed("transfer-encoding not supported"));
    }
    let body_end =
        head_end.checked_add(length).ok_or(ReadOutcome::Malformed("content-length overflow"))?;
    if buffer.len() < body_end {
        return Ok(Parsed::NeedMore);
    }
    request.body = buffer
        .get(head_end..body_end)
        .ok_or(ReadOutcome::Malformed("body shorter than content-length"))?
        .to_vec();
    Ok(Parsed::Request { request, consumed: body_end })
}

/// Reads one request from `stream`. `shutdown` is polled while the
/// connection is idle so shutdown never waits out a full idle deadline.
///
/// This is the blocking read loop over [`parse_request_bytes`]; the
/// nonblocking reactor uses the parser directly.
pub fn read_request(
    stream: &mut TcpStream,
    limits: &Limits,
    shutdown: &dyn Fn() -> bool,
) -> Result<Request, ReadOutcome> {
    if let Some(fault) = twig_util::failpoint!("http.read") {
        return Err(match fault {
            twig_util::failpoint::Fault::Error => ReadOutcome::Io(injected("http.read")),
            twig_util::failpoint::Fault::Errno(code) => {
                ReadOutcome::Io(io::Error::from_raw_os_error(code))
            }
            // A torn read looks like the peer vanishing mid-request.
            twig_util::failpoint::Fault::Partial(_) => ReadOutcome::Malformed("injected torn read"),
        });
    }
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return Err(ReadOutcome::Malformed("cannot set read timeout"));
    }
    let idle_start = Instant::now();
    let mut first_byte_at: Option<Instant> = None;
    let mut buffer = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match parse_request_bytes(&buffer, limits)? {
            Parsed::Request { request, .. } => return Ok(request),
            Parsed::NeedMore => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if buffer.is_empty() {
                    ReadOutcome::Closed
                } else if find_head_end(&buffer).is_none() {
                    ReadOutcome::Malformed("connection closed mid-head")
                } else {
                    ReadOutcome::Malformed("connection closed mid-body")
                });
            }
            Ok(n) => {
                if first_byte_at.is_none() {
                    first_byte_at = Some(Instant::now());
                }
                // A sane `Read` never returns more than the buffer
                // holds; map a broken impl to an error, not a panic.
                match chunk.get(..n) {
                    Some(filled) => buffer.extend_from_slice(filled),
                    None => return Err(ReadOutcome::Malformed("read length out of range")),
                }
            }
            Err(err) if is_timeout(&err) => match first_byte_at {
                Some(started) => {
                    if started.elapsed() > limits.read_deadline {
                        return Err(ReadOutcome::Timeout);
                    }
                }
                None => {
                    if shutdown() {
                        return Err(ReadOutcome::ShuttingDown);
                    }
                    if idle_start.elapsed() > limits.idle_deadline {
                        return Err(ReadOutcome::IdleTimeout);
                    }
                }
            },
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(ReadOutcome::Io(err)),
        }
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length` and `Connection`
    /// are emitted automatically).
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// MIME type of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, value: &crate::json::Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: value.render().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }

    /// Renders the head (status line through blank line) as a string.
    fn head_string(&self, close: bool) -> String {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        head
    }

    /// Appends just the head's wire form to `out` (the reactor's write
    /// queue splices large bodies in as their own vectored segment).
    pub(crate) fn encode_head_into(&self, out: &mut Vec<u8>, close: bool) {
        out.extend_from_slice(self.head_string(close).as_bytes());
    }

    /// Appends the full wire form (head + body) to `out`.
    ///
    /// The reactor serializes every response into a reusable
    /// per-connection write buffer and flushes on writability; pipelined
    /// responses simply append in order.
    pub fn encode_into(&self, out: &mut Vec<u8>, close: bool) {
        out.extend_from_slice(self.head_string(close).as_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Serializes the response to `stream`. `close` controls the
    /// `Connection` header.
    pub fn write_to(&self, stream: &mut TcpStream, close: bool) -> io::Result<()> {
        let head = self.head_string(close);
        if let Some(fault) = twig_util::failpoint!("http.write") {
            if let twig_util::failpoint::Fault::Partial(keep_percent) = fault {
                // Write a prefix of the head, then fail: the client
                // sees a torn response on a closed socket.
                let bytes = head.as_bytes();
                let cap = usize::try_from(keep_percent).unwrap_or(100).min(100);
                if let Some((torn, _rest)) = bytes.split_at_checked(bytes.len() * cap / 100) {
                    let _ = stream.write_all(torn);
                }
            }
            return Err(injected("http.write"));
        }
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The error value injected by `http.*` failpoints; compiled in default
/// builds too (the failpoint arms fold to unreachable code there).
fn injected(point: &str) -> io::Error {
    io::Error::other(format!("injected fault at {point}"))
}

/// Reason phrase for the status codes the server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

// ---------------------------------------------------------------------
// Client side (loadgen, tests)
// ---------------------------------------------------------------------

/// Appends one encoded client request (head + body) to `out` without
/// touching the socket — callers batch several into one write when
/// pipelining.
pub fn encode_request(out: &mut Vec<u8>, method: &str, target: &str, body: &[u8]) {
    use std::io::Write as _;
    // Writing into a Vec cannot fail.
    let _ = write!(
        out,
        "{method} {target} HTTP/1.1\r\nhost: twig-serve\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body);
}

/// Writes one client request with an optional body (a single syscall:
/// head and body go out together).
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    let mut wire = Vec::with_capacity(96 + body.len());
    encode_request(&mut wire, method, target, body);
    stream.write_all(&wire)?;
    stream.flush()
}

/// A parsed client-side response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lowercase).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from `stream` (client side). Any bytes read past
/// the response are discarded with the internal buffer, so this is only
/// correct when at most one response is in flight on the connection;
/// pipelined clients must use [`read_response_pipelined`].
pub fn read_response(
    stream: &mut TcpStream,
    limits: &Limits,
) -> Result<ClientResponse, ReadOutcome> {
    read_response_pipelined(stream, &mut Vec::new(), limits)
}

/// Reads one response from a connection that may carry several
/// (HTTP/1.1 pipelining): a single socket read can deliver the tail of
/// response N together with the head of response N+1, so the caller
/// owns `buffer` for the connection's lifetime and exactly one
/// response's bytes are drained from it per call. Reset the buffer on
/// reconnect.
pub fn read_response_pipelined(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
    limits: &Limits,
) -> Result<ClientResponse, ReadOutcome> {
    let never_shutdown = || false;
    let head_end = read_head(stream, buffer, limits, &never_shutdown)?;
    // Same discipline as the server side: the response bytes are peer
    // input, so the head boundary is checked rather than trusted.
    let head_bytes = buffer
        .get(..head_end.saturating_sub(4))
        .ok_or(ReadOutcome::Malformed("head boundary out of range"))?;
    let head =
        std::str::from_utf8(head_bytes).map_err(|_| ReadOutcome::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.split(' ');
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => {
            code.parse::<u16>().map_err(|_| ReadOutcome::Malformed("bad status code"))?
        }
        _ => return Err(ReadOutcome::Malformed("bad status line")),
    };
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadOutcome::Malformed("bad header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if length > limits.max_body_bytes {
        return Err(ReadOutcome::BodyTooLarge { declared: length });
    }
    read_body(stream, buffer, head_end, length, limits)?;
    let body_end =
        head_end.checked_add(length).ok_or(ReadOutcome::Malformed("content-length overflow"))?;
    let body = buffer
        .get(head_end..body_end)
        .ok_or(ReadOutcome::Malformed("body shorter than content-length"))?
        .to_vec();
    // Consume exactly this response; pipelined successors stay queued.
    buffer.drain(..body_end);
    Ok(ClientResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Loopback pair: returns (client, server) connected streams.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn tight_limits() -> Limits {
        Limits {
            max_head_bytes: 1024,
            max_body_bytes: 64,
            read_deadline: Duration::from_millis(400),
            idle_deadline: Duration::from_millis(400),
        }
    }

    #[test]
    fn parses_request_with_body_and_keepalive() {
        let (mut client, mut server) = pair();
        write_request(&mut client, "POST", "/estimate?x=1", b"{\"a\":1}").unwrap();
        let request = read_request(&mut server, &tight_limits(), &|| false).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.target, "/estimate?x=1");
        assert_eq!(request.path(), "/estimate");
        assert_eq!(request.body, b"{\"a\":1}");
        assert!(request.keep_alive());
        assert_eq!(request.header("host"), Some("twig-serve"));
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let (mut client, mut server) = pair();
        let response = Response::text(200, "hello").with_header("retry-after", "1".into());
        response.write_to(&mut server, false).unwrap();
        let parsed = read_response(&mut client, &tight_limits()).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.body_text(), "hello");
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
    }

    #[test]
    fn oversized_body_rejected_before_reading_it() {
        let (mut client, mut server) = pair();
        use std::io::Write as _;
        client.write_all(b"POST /estimate HTTP/1.1\r\ncontent-length: 999999\r\n\r\n").unwrap();
        match read_request(&mut server, &tight_limits(), &|| false) {
            Err(ReadOutcome::BodyTooLarge { declared }) => assert_eq!(declared, 999_999),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_and_closed_and_idle() {
        // Garbage head.
        let (mut client, mut server) = pair();
        use std::io::Write as _;
        client.write_all(b"NOT HTTP\r\n\r\n").unwrap();
        assert!(matches!(
            read_request(&mut server, &tight_limits(), &|| false),
            Err(ReadOutcome::Malformed(_))
        ));

        // Clean close before any byte.
        let (client, mut server) = pair();
        drop(client);
        assert!(matches!(
            read_request(&mut server, &tight_limits(), &|| false),
            Err(ReadOutcome::Closed)
        ));

        // Idle client times out.
        let (_client, mut server) = pair();
        assert!(matches!(
            read_request(&mut server, &tight_limits(), &|| false),
            Err(ReadOutcome::IdleTimeout)
        ));

        // Shutdown interrupts an idle wait quickly.
        let (_client2, mut server) = pair();
        let started = Instant::now();
        let generous = Limits { idle_deadline: Duration::from_secs(30), ..tight_limits() };
        assert!(matches!(
            read_request(&mut server, &generous, &|| true),
            Err(ReadOutcome::ShuttingDown)
        ));
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn partial_request_times_out() {
        let (mut client, mut server) = pair();
        use std::io::Write as _;
        client.write_all(b"GET /healthz HT").unwrap();
        let started = Instant::now();
        assert!(matches!(
            read_request(&mut server, &tight_limits(), &|| false),
            Err(ReadOutcome::Timeout)
        ));
        assert!(started.elapsed() < Duration::from_secs(3));
    }
}
