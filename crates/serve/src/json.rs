//! A minimal, dependency-free JSON codec for the serve API.
//!
//! The workspace builds offline (no `serde`), and the serve protocol only
//! needs a small, strict subset of JSON: objects with string keys,
//! arrays, strings, finite numbers, booleans and null. The parser is a
//! plain recursive-descent over bytes with a depth limit; the serializer
//! emits numbers through `f64`'s `Display`, which prints the shortest
//! decimal that round-trips — this is what makes served estimates
//! *bit-identical* to offline `twig estimate` values after the client
//! parses them back.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used to serialize non-finite floats, which JSON
    /// cannot represent).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a static message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting beyond this depth is rejected (stack-overflow guard: the
/// parser is recursive and the input is attacker-controlled).
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses `text` as a single JSON value (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), at: 0 };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.at != parser.bytes.len() {
            return Err(parser.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Object member lookup; `None` for missing keys and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor: a string value.
    #[must_use]
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(self, &mut out);
        out
    }
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.is_finite() {
                // Display prints the shortest round-tripping decimal.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (index, item) in items.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (index, (key, member)) in members.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                escape_into(key, out);
                out.push(':');
                render_into(member, out);
            }
            out.push('}');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { at: self.at, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.at + literal.len();
        if self.bytes.get(self.at..end) == Some(literal.as_bytes()) {
            self.at = end;
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 character (input is &str, so the
                    // boundaries are valid by construction).
                    let start = self.at;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..end]) {
                        out.push_str(chunk);
                    }
                    self.at = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following low surrogate
    /// when needed); `self.at` points at the first hex digit on entry and
    /// one past the escape on successful exit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: must be followed by \uDC00..DFFF.
            if self.bytes.get(self.at) == Some(&b'\\') && self.bytes.get(self.at + 1) == Some(&b'u')
            {
                self.at += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid code point"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&high) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid unicode escape")),
            };
            code = code * 16 + digit;
            self.at += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits_start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let frac_start = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            let exp_start = self.at;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
            if self.at == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if value.is_finite() {
            Ok(Json::Num(value))
        } else {
            Err(self.err("number out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_subset() {
        let value = Json::parse(
            r#"{"summary":"default","queries":["a(b(\"x\"))","c"],"batch":2.5,"ok":true,"nil":null}"#,
        )
        .unwrap();
        assert_eq!(value.get("summary").unwrap().as_str(), Some("default"));
        let queries = value.get("queries").unwrap().as_array().unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].as_str(), Some(r#"a(b("x"))"#));
        assert_eq!(value.get("batch").unwrap().as_f64(), Some(2.5));
        assert_eq!(value.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(value.get("nil"), Some(&Json::Null));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn roundtrips_numbers_bit_exactly() {
        for n in [0.0, 1.5, -2.25, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, f64::MIN_POSITIVE] {
            let rendered = Json::Num(n).render();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.as_f64().map(f64::to_bits), Some(n.to_bits()), "{rendered}");
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "quote \" backslash \\ newline \n tab \t unicode ☃ control \u{1}";
        let rendered = Json::str(original).render();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // Standard escape forms parse too.
        let parsed = Json::parse(r#""\u2603 \ud83d\ude00 \/""#).unwrap();
        assert_eq!(parsed.as_str(), Some("☃ 😀 /"));
    }

    #[test]
    fn hostile_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "]",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "nul",
            "tru",
            "\"unterminated",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "1.",
            ".5",
            "1e",
            "-",
            "1 2",
            "{\"a\":1}x",
            "1e999",
            "\u{1}",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb is rejected, not a stack overflow.
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn renders_compact_objects() {
        let value = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b".into(), Json::Bool(false)),
        ]);
        assert_eq!(value.render(), r#"{"a":[1,null],"b":false}"#);
    }
}
