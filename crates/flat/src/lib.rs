//! Zero-copy flat summaries: the `TWIGFLT1` on-disk format and its
//! mmap-backed query view.
//!
//! The owned [`Cst`] deserializer (`TWIGCST`) allocates per node; a host
//! serving *many* summaries pays that cost at every load and reload.
//! This crate trades a one-time packing step for O(1) loads:
//!
//! - [`writer::pack`] lays a built summary out as one page-aligned,
//!   little-endian, offset-based byte range (header + section table +
//!   CSR arrays + signature words + label table, each section carrying
//!   an FNV-1a checksum);
//! - [`FlatCst`] maps that range read-only (heap fallback) and
//!   implements the [`Summary`] trait, so all six estimation algorithms
//!   of the paper run *in place* over the mapped bytes — no per-node
//!   allocation, bit-identical estimates (the estimators execute the
//!   same float-op sequence either way; see the seed-sweep tests);
//! - [`AnySummary`] unifies owned and flat summaries behind one value,
//!   sniffing the magic bytes on load, so the serving layer hot-swaps
//!   formats per file: a reload becomes a map-swap, with the old
//!   generation unmapped when the last in-flight request drops its
//!   `Arc`.
//!
//! # Example
//!
//! ```
//! use twig_core::{Algorithm, CountKind, Cst, CstConfig};
//! use twig_flat::{writer, FlatCst};
//! use twig_tree::{DataTree, Twig};
//!
//! let xml = "<dblp><book><author>Knuth</author></book></dblp>";
//! let tree = DataTree::from_xml(xml).unwrap();
//! let cst = Cst::build(&tree, &CstConfig::default()).unwrap();
//! let flat = FlatCst::from_bytes(writer::pack(&cst).unwrap()).unwrap();
//! let query = Twig::parse(r#"book(author("Knuth"))"#).unwrap();
//! let a = Algorithm::Mosh;
//! let owned = cst.estimate(&query, a, CountKind::Presence);
//! let mapped = flat.estimate(&query, a, CountKind::Presence);
//! assert_eq!(owned.to_bits(), mapped.to_bits());
//! ```

pub mod error;
pub mod format;
mod mmap;
pub mod reader;
pub mod writer;

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::Read;
use std::path::Path;

use twig_core::serialize::ReadError;
use twig_core::{
    estimate_raw_summary, estimate_summary, sibling_discount_summary, Algorithm, CountKind, Cst,
    QueryPlan, SignatureFallback, Summary, TrieAccess,
};
use twig_pst::{EdgeKey, PathToken, PrunedTrie, TrieNodeId};
use twig_sethash::SigView;
use twig_tree::Twig;
use twig_util::Symbol;

pub use error::FlatError;
pub use reader::{FlatCst, FlatTrie, SectionInfo};

/// Why a summary file (of either format) failed to load.
#[derive(Debug)]
pub enum LoadError {
    /// The owned (`TWIGCST`) deserializer rejected the input.
    Owned(ReadError),
    /// The flat (`TWIGFLT1`) validator rejected the input.
    Flat(FlatError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Owned(err) => write!(formatter, "owned summary: {err}"),
            LoadError::Flat(err) => write!(formatter, "flat summary: {err}"),
        }
    }
}

impl Error for LoadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadError::Owned(err) => Some(err),
            LoadError::Flat(err) => Some(err),
        }
    }
}

/// An owned or flat summary behind one value — the type the serving
/// layer hosts, so both formats share registries, plans and handlers.
///
/// The size skew between variants is deliberate: summaries live behind
/// an `Arc` in the registry, never in collections of `AnySummary`, so
/// boxing the flat variant would buy nothing and cost an indirection on
/// the zero-copy read path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnySummary {
    /// Heap-resident owned summary (`TWIGCST`).
    Owned(Cst),
    /// Zero-copy flat summary (`TWIGFLT1`), mapped or heap-backed.
    Flat(FlatCst),
}

impl AnySummary {
    /// Loads a summary file of either format, deciding by magic bytes.
    /// Flat files are memory-mapped; owned files are deserialized.
    pub fn load_file(path: &Path) -> Result<Self, LoadError> {
        let mut magic = [0u8; 8];
        let sniffed =
            File::open(path).and_then(|mut file| file.read_exact(&mut magic)).map(|()| magic);
        match sniffed {
            Ok(bytes) if &bytes == format::MAGIC => {
                FlatCst::open(path).map(AnySummary::Flat).map_err(LoadError::Flat)
            }
            _ => Cst::load_file(path).map(AnySummary::Owned).map_err(LoadError::Owned),
        }
    }

    /// Adopts in-memory summary bytes of either format (e.g. a payload
    /// recovered from a snapshot container).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, LoadError> {
        if bytes.get(..8) == Some(format::MAGIC) {
            FlatCst::from_bytes(bytes).map(AnySummary::Flat).map_err(LoadError::Flat)
        } else {
            Cst::from_bytes(&bytes).map(AnySummary::Owned).map_err(LoadError::Owned)
        }
    }

    /// Short format tag for diagnostics: `owned`, `flat+mmap`, or
    /// `flat+heap`.
    pub fn format_name(&self) -> &'static str {
        match self {
            AnySummary::Owned(_) => "owned",
            AnySummary::Flat(flat) if flat.is_mapped() => "flat+mmap",
            AnySummary::Flat(_) => "flat+heap",
        }
    }

    /// Number of kept trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        match self {
            AnySummary::Owned(cst) => cst.node_count(),
            AnySummary::Flat(flat) => flat.node_count(),
        }
    }

    /// Accounted summary size in bytes under the CST cost model.
    pub fn size_bytes(&self) -> u64 {
        match self {
            AnySummary::Owned(cst) => twig_util::cast::size_to_u64(cst.size_bytes()),
            AnySummary::Flat(flat) => flat.size_bytes(),
        }
    }

    /// Number of data tree element nodes (`n` of the formulae).
    pub fn n(&self) -> u64 {
        match self {
            AnySummary::Owned(cst) => cst.n(),
            AnySummary::Flat(flat) => flat.n(),
        }
    }

    /// The prune threshold the summary was built with.
    pub fn threshold(&self) -> u32 {
        match self {
            AnySummary::Owned(cst) => cst.threshold(),
            AnySummary::Flat(flat) => flat.threshold(),
        }
    }

    /// Min-hash signature length (components per signature).
    pub fn signature_len(&self) -> usize {
        match self {
            AnySummary::Owned(cst) => cst.signature_len(),
            AnySummary::Flat(flat) => flat.signature_len(),
        }
    }

    /// The flat container bytes when this summary is flat (mapped or
    /// heap): the exact payload a snapshot store should persist. Owned
    /// summaries return `None` — their payload is the `TWIGCST` file the
    /// caller already read.
    pub fn flat_bytes(&self) -> Option<&[u8]> {
        match self {
            AnySummary::Owned(_) => None,
            AnySummary::Flat(flat) => Some(flat.as_bytes()),
        }
    }

    /// Estimate with MO sibling discounting.
    pub fn estimate(&self, twig: &Twig, algorithm: Algorithm, kind: CountKind) -> f64 {
        estimate_summary(self, twig, algorithm, kind)
    }

    /// Raw (undiscounted) estimate, optionally through a cached plan.
    pub fn estimate_raw(
        &self,
        twig: &Twig,
        algorithm: Algorithm,
        kind: CountKind,
        plan: Option<&QueryPlan>,
    ) -> f64 {
        estimate_raw_summary(self, twig, algorithm, kind, plan)
    }

    /// The MO sibling discount factor.
    pub fn sibling_discount(&self, twig: &Twig) -> f64 {
        sibling_discount_summary(self, twig)
    }
}

/// The borrowed trie view of an [`AnySummary`].
#[derive(Clone, Copy)]
pub enum AnyTrie<'a> {
    /// View over the owned trie.
    Owned(&'a PrunedTrie),
    /// View over the mapped CSR arrays.
    Flat(FlatTrie<'a>),
}

impl TrieAccess for AnyTrie<'_> {
    fn child(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId> {
        match self {
            AnyTrie::Owned(trie) => trie.child(node, edge),
            AnyTrie::Flat(trie) => trie.child(node, edge),
        }
    }

    fn parent(&self, node: TrieNodeId) -> Option<TrieNodeId> {
        match self {
            AnyTrie::Owned(trie) => trie.parent(node),
            AnyTrie::Flat(trie) => trie.parent(node),
        }
    }

    fn tokens_of(&self, node: TrieNodeId) -> Vec<PathToken> {
        match self {
            AnyTrie::Owned(trie) => trie.tokens_of(node),
            AnyTrie::Flat(trie) => trie.tokens_of(node),
        }
    }
}

impl Summary for AnySummary {
    type Trie<'a> = AnyTrie<'a>;

    fn trie(&self) -> AnyTrie<'_> {
        match self {
            AnySummary::Owned(cst) => AnyTrie::Owned(cst.trie()),
            AnySummary::Flat(flat) => AnyTrie::Flat(Summary::trie(flat)),
        }
    }

    fn n(&self) -> u64 {
        match self {
            AnySummary::Owned(cst) => cst.n(),
            AnySummary::Flat(flat) => flat.n(),
        }
    }

    fn signature_len(&self) -> usize {
        match self {
            AnySummary::Owned(cst) => cst.signature_len(),
            AnySummary::Flat(flat) => flat.signature_len(),
        }
    }

    fn fallback(&self) -> SignatureFallback {
        match self {
            AnySummary::Owned(cst) => cst.fallback(),
            AnySummary::Flat(flat) => flat.fallback(),
        }
    }

    fn symbol(&self, label: &str) -> Option<Symbol> {
        match self {
            AnySummary::Owned(cst) => cst.symbol(label),
            AnySummary::Flat(flat) => flat.symbol(label),
        }
    }

    fn lookup(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        match self {
            AnySummary::Owned(cst) => cst.lookup(tokens),
            AnySummary::Flat(flat) => flat.lookup(tokens),
        }
    }

    fn presence(&self, node: TrieNodeId) -> u64 {
        match self {
            AnySummary::Owned(cst) => cst.presence(node),
            AnySummary::Flat(flat) => flat.presence(node),
        }
    }

    fn occurrence(&self, node: TrieNodeId) -> u64 {
        match self {
            AnySummary::Owned(cst) => cst.occurrence(node),
            AnySummary::Flat(flat) => flat.occurrence(node),
        }
    }

    fn signature(&self, node: TrieNodeId) -> Option<SigView<'_>> {
        match self {
            AnySummary::Owned(cst) => Summary::signature(cst, node),
            AnySummary::Flat(flat) => FlatCst::signature(flat, node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_core::CstConfig;
    use twig_tree::DataTree;

    fn small_cst() -> Cst {
        let xml = r#"<dblp>
            <book><author>Suciu</author><year>1999</year></book>
            <book><author>Korn</author><year>1999</year></book>
            <article><author>Muthukrishnan</author></article>
        </dblp>"#;
        let tree = DataTree::from_xml(xml).unwrap();
        Cst::build(&tree, &CstConfig::default()).unwrap()
    }

    #[test]
    fn pack_open_roundtrip_preserves_structure() {
        let cst = small_cst();
        let bytes = writer::pack(&cst).unwrap();
        let flat = FlatCst::from_bytes(bytes).unwrap();
        assert_eq!(flat.node_count(), cst.node_count());
        assert_eq!(flat.n(), cst.n());
        assert_eq!(flat.signature_len(), cst.signature_len());
        assert_eq!(flat.threshold(), cst.threshold());
        assert_eq!(flat.total_paths(), cst.trie().total_paths());
        assert_eq!(flat.seed(), cst.seed());
        flat.verify().unwrap();
        assert!(flat.integrity_error().is_none());
        // Per-node counts and flags agree.
        for node in cst.trie().node_ids() {
            assert_eq!(flat.presence(node), cst.presence(node));
            assert_eq!(flat.occurrence(node), cst.occurrence(node));
            assert_eq!(flat.path_count(node), cst.trie().path_count(node));
            assert_eq!(flat.label_rooted(node), cst.trie().label_rooted(node));
            assert_eq!(
                flat.signature(node).is_some(),
                cst.signature(node).is_some(),
                "signature presence differs at {node:?}"
            );
        }
        // Vocabulary agrees both ways.
        assert_eq!(flat.symbol("book"), cst.symbol("book"));
        assert_eq!(flat.symbol("no-such-label"), None);
        // Trie navigation agrees: every node's token path resolves back.
        for node in cst.trie().node_ids() {
            let tokens = cst.trie().tokens_of(node);
            assert_eq!(flat.lookup(&tokens), Some(node));
            assert_eq!(Summary::trie(&flat).tokens_of(node), tokens);
        }
    }

    #[test]
    fn file_roundtrip_uses_mmap() {
        let cst = small_cst();
        let dir = std::env::temp_dir().join("twig-flat-lib-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.flt");
        writer::write_file(&cst, &path).unwrap();
        let flat = FlatCst::open(&path).unwrap();
        #[cfg(unix)]
        assert!(flat.is_mapped());
        flat.verify().unwrap();
        assert_eq!(flat.node_count(), cst.node_count());

        let any = AnySummary::load_file(&path).unwrap();
        assert!(matches!(any, AnySummary::Flat(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_summary_sniffs_owned_format() {
        let cst = small_cst();
        let mut owned_bytes = Vec::new();
        cst.write_to(&mut owned_bytes).unwrap();
        let any = AnySummary::from_bytes(owned_bytes).unwrap();
        assert!(matches!(any, AnySummary::Owned(_)));
        assert_eq!(any.format_name(), "owned");
        assert_eq!(any.node_count(), cst.node_count());

        let flat_bytes = writer::pack(&cst).unwrap();
        let any = AnySummary::from_bytes(flat_bytes).unwrap();
        assert_eq!(any.format_name(), "flat+heap");
        assert_eq!(any.node_count(), cst.node_count());
    }
}
