//! Typed errors for the flat summary format.
//!
//! Every malformed-input path in this crate reports through
//! [`FlatError`]; hostile bytes must never panic or over-read (the
//! hostility suite sweeps truncations and bit flips over every section
//! asserting exactly that).

use std::error::Error;
use std::fmt;
use std::io;

/// Why a flat summary could not be opened, validated, or trusted.
#[derive(Debug)]
pub enum FlatError {
    /// The underlying file could not be read or mapped.
    Io(io::Error),
    /// The input ends before the fixed header and section table.
    TooShort,
    /// The input does not start with the `TWIGFLT1` magic.
    BadMagic,
    /// The header carries a format version this build does not speak.
    BadVersion(u32),
    /// A structural invariant of the header or section table failed
    /// (bad alignment, overlap, out-of-bounds or inconsistent sizes).
    Malformed(&'static str),
    /// A section's FNV-1a checksum did not match on first touch.
    Checksum {
        /// Name of the failing section.
        section: &'static str,
    },
}

impl fmt::Display for FlatError {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::Io(err) => write!(formatter, "flat summary I/O: {err}"),
            FlatError::TooShort => {
                write!(formatter, "flat summary truncated before the section table")
            }
            FlatError::BadMagic => write!(formatter, "not a TWIGFLT1 flat summary"),
            FlatError::BadVersion(version) => {
                write!(formatter, "unsupported flat format version {version}")
            }
            FlatError::Malformed(what) => write!(formatter, "malformed flat summary: {what}"),
            FlatError::Checksum { section } => {
                write!(formatter, "flat summary checksum mismatch in section {section}")
            }
        }
    }
}

impl Error for FlatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlatError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for FlatError {
    fn from(err: io::Error) -> Self {
        FlatError::Io(err)
    }
}
