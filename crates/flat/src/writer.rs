//! Packing an owned [`Cst`] into the `TWIGFLT1` flat layout.
//!
//! [`pack`] lays the summary out exactly as `format.rs` documents —
//! fixed header, section table, 64-byte-aligned little-endian sections —
//! and [`write_file`] lands it crash-safely (temp file, `fsync`, atomic
//! rename, directory `fsync`), with a `flat.pack` failpoint for the
//! chaos harness to tear mid-write.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use twig_core::Cst;
use twig_util::cast::size_to_u64;
use twig_util::fnv1a64;

use crate::error::FlatError;
use crate::format::{
    Header, SectionKind, HEADER_LEN, MAX_REASONABLE, SECTION_ALIGN, SECTION_COUNT, TABLE_ENTRY_LEN,
    TABLE_OFFSET,
};

/// Serializes `cst` into a complete in-memory flat summary.
///
/// Infallible for any summary this workspace can build; the `Err` arms
/// guard the format's `u32` count fields against absurd inputs.
pub fn pack(cst: &Cst) -> Result<Vec<u8>, FlatError> {
    let trie = cst.trie();
    let node_count = trie.node_count();
    let count32 =
        u32::try_from(node_count).map_err(|_| FlatError::Malformed("node table exceeds u32"))?;
    if count32 == 0 || count32 > MAX_REASONABLE {
        return Err(FlatError::Malformed("node count out of range"));
    }
    let nodes = trie.export_nodes();

    // Per-node columns.
    let mut parents = Vec::with_capacity(node_count * 4);
    let mut edges = Vec::with_capacity(node_count * 4);
    let mut pcs = Vec::with_capacity(node_count * 4);
    let mut presences = Vec::with_capacity(node_count * 4);
    let mut occurrences = Vec::with_capacity(node_count * 4);
    let mut flags = Vec::with_capacity(node_count);
    for node in &nodes {
        parents.extend_from_slice(&node.parent.to_le_bytes());
        edges.extend_from_slice(&node.edge.to_le_bytes());
        pcs.extend_from_slice(&node.path_count.to_le_bytes());
        presences.extend_from_slice(&node.presence.to_le_bytes());
        occurrences.extend_from_slice(&node.occurrence.to_le_bytes());
        flags.push(u8::from(node.label_rooted));
    }

    // CSR child arrays: (parent, edge) → child, edge-sorted per row.
    let mut triples: Vec<(u32, u32, u32)> = Vec::with_capacity(node_count.saturating_sub(1));
    for (id, node) in nodes.iter().enumerate().skip(1) {
        let id32 = u32::try_from(id).map_err(|_| FlatError::Malformed("node table exceeds u32"))?;
        triples.push((node.parent, node.edge, id32));
    }
    triples.sort_unstable();
    let mut row_counts = vec![0u32; node_count];
    for &(parent, _, _) in &triples {
        let slot = row_counts
            .get_mut(parent as usize)
            .ok_or(FlatError::Malformed("parent out of range"))?;
        *slot = slot.checked_add(1).ok_or(FlatError::Malformed("child count overflow"))?;
    }
    let mut child_start = Vec::with_capacity((node_count + 1) * 4);
    let mut running = 0u32;
    child_start.extend_from_slice(&running.to_le_bytes());
    for count in &row_counts {
        running =
            running.checked_add(*count).ok_or(FlatError::Malformed("child count overflow"))?;
        child_start.extend_from_slice(&running.to_le_bytes());
    }
    let mut child_edge = Vec::with_capacity(triples.len() * 4);
    let mut child_target = Vec::with_capacity(triples.len() * 4);
    for &(_, edge, child) in &triples {
        child_edge.extend_from_slice(&edge.to_le_bytes());
        child_target.extend_from_slice(&child.to_le_bytes());
    }

    // Signature slots and words.
    let mut sig_index = Vec::with_capacity(node_count * 4);
    let mut sig_words = Vec::new();
    let mut sig_count = 0u32;
    for id in trie.node_ids() {
        match cst.signature(id) {
            Some(sig) => {
                sig_index.extend_from_slice(&sig_count.to_le_bytes());
                for &word in sig.components() {
                    sig_words.extend_from_slice(&word.to_le_bytes());
                }
                sig_count = sig_count
                    .checked_add(1)
                    .ok_or(FlatError::Malformed("signature count overflow"))?;
            }
            None => sig_index.extend_from_slice(&u32::MAX.to_le_bytes()),
        }
    }

    // Label table, in symbol order.
    let mut str_offsets = Vec::new();
    let mut str_bytes = Vec::new();
    let mut offset = 0u32;
    str_offsets.extend_from_slice(&offset.to_le_bytes());
    for label in cst.labels() {
        let len =
            u32::try_from(label.len()).map_err(|_| FlatError::Malformed("label exceeds u32"))?;
        offset = offset.checked_add(len).ok_or(FlatError::Malformed("label table exceeds u32"))?;
        str_bytes.extend_from_slice(label.as_bytes());
        str_offsets.extend_from_slice(&offset.to_le_bytes());
    }

    let header = Header {
        n: cst.n(),
        source_bytes: size_to_u64(cst.source_bytes()),
        size_bytes: size_to_u64(cst.size_bytes()),
        seed: cst.seed(),
        signature_len: u32::try_from(cst.signature_len())
            .map_err(|_| FlatError::Malformed("signature length exceeds u32"))?,
        threshold: trie.threshold(),
        total_paths: trie.total_paths(),
        node_count: count32,
        fallback: match cst.fallback() {
            twig_core::SignatureFallback::ConditionalIndependence => 0,
            twig_core::SignatureFallback::Zero => 1,
        },
    };

    let sections: [(SectionKind, Vec<u8>); SECTION_COUNT] = [
        (SectionKind::NodeParent, parents),
        (SectionKind::NodeEdge, edges),
        (SectionKind::NodePc, pcs),
        (SectionKind::NodePresence, presences),
        (SectionKind::NodeOccurrence, occurrences),
        (SectionKind::NodeFlags, flags),
        (SectionKind::ChildStart, child_start),
        (SectionKind::ChildEdge, child_edge),
        (SectionKind::ChildTarget, child_target),
        (SectionKind::SigIndex, sig_index),
        (SectionKind::SigWords, sig_words),
        (SectionKind::StrOffsets, str_offsets),
        (SectionKind::StrBytes, str_bytes),
    ];
    assemble(&header, &sections)
}

/// Lays out header + table + aligned sections into one byte vector.
fn assemble(
    header: &Header,
    sections: &[(SectionKind, Vec<u8>); SECTION_COUNT],
) -> Result<Vec<u8>, FlatError> {
    let mut cursor = HEADER_LEN
        .checked_add(SECTION_COUNT * TABLE_ENTRY_LEN)
        .ok_or(FlatError::Malformed("layout overflow"))?;
    let mut placed = Vec::with_capacity(SECTION_COUNT);
    for (kind, bytes) in sections {
        cursor = align_up(cursor).ok_or(FlatError::Malformed("layout overflow"))?;
        placed.push((*kind, cursor, bytes));
        cursor = cursor.checked_add(bytes.len()).ok_or(FlatError::Malformed("layout overflow"))?;
    }

    let mut out = vec![0u8; cursor];
    put(&mut out, 0, &header.encode());
    for (index, (kind, offset, bytes)) in placed.iter().enumerate() {
        let mut entry = Vec::with_capacity(TABLE_ENTRY_LEN);
        entry.extend_from_slice(&kind.id().to_le_bytes());
        entry.extend_from_slice(&0u32.to_le_bytes());
        entry.extend_from_slice(&size_to_u64(*offset).to_le_bytes());
        entry.extend_from_slice(&size_to_u64(bytes.len()).to_le_bytes());
        entry.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
        put(&mut out, TABLE_OFFSET + index * TABLE_ENTRY_LEN, &entry);
        put(&mut out, *offset, bytes);
    }
    Ok(out)
}

/// Rounds `cursor` up to the next section boundary.
fn align_up(cursor: usize) -> Option<usize> {
    let rem = cursor % SECTION_ALIGN;
    if rem == 0 {
        Some(cursor)
    } else {
        cursor.checked_add(SECTION_ALIGN - rem)
    }
}

/// Copies `src` into `out` at `offset`; the caller sized `out` to fit,
/// so the guard only defends against arithmetic bugs (silently skipping
/// would corrupt the file — checksums would catch it — but never panic).
fn put(out: &mut [u8], offset: usize, src: &[u8]) {
    if let Some(dst) = offset.checked_add(src.len()).and_then(|end| out.get_mut(offset..end)) {
        for (to, from) in dst.iter_mut().zip(src) {
            *to = *from;
        }
    }
}

/// The error injected by the `flat.pack` failpoint, recognizable in
/// tests by its message prefix.
fn injected(message: &'static str) -> io::Error {
    io::Error::other(message)
}

/// Packs `cst` and lands it at `path` crash-safely: write to
/// `<path>.tmp`, `fsync`, rename over `path`, `fsync` the directory.
/// A reader never observes a torn target file — at worst a stale target
/// plus an orphaned `.tmp`.
pub fn write_file(cst: &Cst, path: &Path) -> Result<(), FlatError> {
    let bytes = pack(cst)?;
    write_atomic(&bytes, path).map_err(FlatError::Io)
}

/// The crash-safe landing described on [`write_file`], with the
/// `flat.pack` failpoint: `error` fails before any byte is written;
/// `partial(p)` leaves a torn `.tmp` behind and errors before rename.
fn write_atomic(bytes: &[u8], path: &Path) -> io::Result<()> {
    let mut keep = bytes.len();
    let mut tear = false;
    if let Some(fault) = twig_util::failpoint!("flat.pack") {
        match fault {
            twig_util::failpoint::Fault::Error => {
                return Err(injected("injected fault at flat.pack"));
            }
            twig_util::failpoint::Fault::Errno(code) => {
                return Err(io::Error::from_raw_os_error(code));
            }
            twig_util::failpoint::Fault::Partial(percent) => {
                keep = bytes
                    .len()
                    .checked_mul(usize::try_from(percent.min(100)).unwrap_or(100))
                    .map_or(bytes.len(), |scaled| scaled / 100);
                tear = true;
            }
        }
    }
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    file.write_all(bytes.get(..keep).unwrap_or(bytes))?;
    file.sync_all()?;
    drop(file);
    if tear {
        return Err(injected("injected fault at flat.pack"));
    }
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// `<path>.tmp`, preserving the full file name (not replacing the
/// extension, so `a.flt` tears to `a.flt.tmp`).
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Durably records the rename in the parent directory.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => File::open(dir)?.sync_all(),
        _ => Ok(()),
    }
}
