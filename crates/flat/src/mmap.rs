//! Read-only file mapping with a heap fallback — the workspace's single
//! `unsafe` boundary.
//!
//! The shim keeps the unsafe surface as small as it can be: two FFI
//! calls (`mmap`, `munmap` — libstd already links libc, so no new
//! dependency), one `from_raw_parts` over the mapping, and the
//! `Send`/`Sync` assertions those need. Everything else in the crate is
//! safe code over the `&[u8]` this module hands out.
//!
//! Why this is sound:
//!
//! - The region is mapped `PROT_READ | MAP_PRIVATE`: the kernel rejects
//!   writes through it, and writes to the underlying file by others are
//!   not guaranteed to be visible but cannot cause memory unsafety for
//!   byte-wise reads (every access copies out via `from_le_bytes`; no
//!   references into the mapping outlive the [`Mapping`]).
//! - `len` is the mapped length captured at creation; `munmap` runs
//!   exactly once, in `Drop`, with that same pointer and length.
//! - A read-only mapping owned by value is safe to move and share
//!   across threads, hence the `Send`/`Sync` impls.
//!
//! When `mmap` is unavailable (non-unix) or fails (e.g. a pseudo-file),
//! the shim silently degrades to reading the file into a `Vec<u8>` —
//! identical semantics, one copy of the bytes.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::{self, Read};

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub(super) const PROT_READ: i32 = 1;
    pub(super) const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub(super) fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// An owned, immutable byte range: either a kernel mapping of a file or
/// plain heap memory. All format code reads through [`Mapping::bytes`].
pub(crate) enum Mapping {
    /// A live `mmap` region (unmapped on drop).
    #[cfg(unix)]
    Mapped(MmapRegion),
    /// Heap-resident bytes (the portable fallback, and the path for
    /// in-memory payloads such as snapshot recovery).
    Heap(Vec<u8>),
}

/// A `PROT_READ`/`MAP_PRIVATE` region; invariant: `ptr` came from a
/// successful `mmap` of exactly `len > 0` bytes and is unmapped only by
/// `Drop`.
#[cfg(unix)]
pub(crate) struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the region is immutable (PROT_READ) for its whole lifetime and
// freed exactly once by the owner; shared `&self` access only ever reads.
#[cfg(unix)]
unsafe impl Send for MmapRegion {}
// SAFETY: same invariant — PROT_READ mapping, no interior mutability, so
// concurrent `&self` reads from any thread are sound.
#[cfg(unix)]
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len are the exact values returned by mmap; this is
        // the only munmap call for them (Drop runs once).
        let _ = unsafe { sys::munmap(self.ptr.cast_mut().cast(), self.len) };
    }
}

impl Mapping {
    /// The mapped or owned bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: ptr is valid for len bytes for the region's whole
            // lifetime (invariant above) and the returned slice borrows
            // `self`, so it cannot outlive the mapping.
            Mapping::Mapped(region) => unsafe {
                std::slice::from_raw_parts(region.ptr, region.len)
            },
            Mapping::Heap(bytes) => bytes,
        }
    }

    /// True when the bytes live in a kernel mapping (vs the heap).
    pub(crate) fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mapping::Mapped(_) => true,
            Mapping::Heap(_) => false,
        }
    }

    /// Maps `file` read-only, falling back to a heap read when mapping
    /// is unsupported or refused. Empty files always take the heap path
    /// (`mmap` rejects zero-length maps).
    pub(crate) fn map_file(file: &mut File) -> io::Result<Mapping> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file exceeds address space"))?;
        #[cfg(unix)]
        {
            if len > 0 {
                if let Some(region) = platform_map(file, len) {
                    return Ok(Mapping::Mapped(region));
                }
            }
        }
        #[cfg(not(unix))]
        let _ = len;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(Mapping::Heap(buf))
    }
}

#[cfg(unix)]
fn platform_map(file: &File, len: usize) -> Option<MmapRegion> {
    use std::os::fd::AsRawFd;
    // SAFETY: a fresh anonymous-address read-only private mapping of an
    // open fd; the kernel validates fd and length, and we check for
    // MAP_FAILED before trusting the pointer.
    let ptr = unsafe {
        sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, sys::MAP_PRIVATE, file.as_raw_fd(), 0)
    };
    if ptr == sys::map_failed() || ptr.is_null() {
        return None;
    }
    Some(MmapRegion { ptr: ptr.cast_const().cast(), len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_a_real_file_and_reads_it_back() {
        let dir = std::env::temp_dir().join("twig-flat-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0u32..1000).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();

        let mut file = File::open(&path).unwrap();
        let mapping = Mapping::map_file(&mut file).unwrap();
        assert_eq!(mapping.bytes(), &payload[..]);
        #[cfg(unix)]
        assert!(mapping.is_mapped(), "expected a kernel mapping on unix");
        drop(mapping); // munmap must not fault
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_takes_heap_path() {
        let dir = std::env::temp_dir().join("twig-flat-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let mut file = File::open(&path).unwrap();
        let mapping = Mapping::map_file(&mut file).unwrap();
        assert!(!mapping.is_mapped());
        assert!(mapping.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
