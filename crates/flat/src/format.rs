//! The `TWIGFLT1` on-disk layout: constants, section registry, header
//! codec, and panic-free little-endian readers.
//!
//! A flat summary is one contiguous byte range:
//!
//! ```text
//! [ header (72 B) ][ section table (13 × 32 B) ][ sections … ]
//! ```
//!
//! Every multi-byte value is little-endian, read via `from_le_bytes` —
//! never by transmuting — so alignment is a *format* invariant (each
//! section starts on a 64-byte boundary, friendly to page-cache and
//! vector loads), not a memory-safety requirement. Offsets are absolute
//! from the start of the file and validated with checked arithmetic
//! before anything else is touched; section payloads are guarded by
//! lazy FNV-1a checksums (see `FlatCst`).
//!
//! Section inventory (all fixed-width arrays indexed by dense node id,
//! mirroring the owned `PrunedTrie`):
//!
//! | section        | element                    | count            |
//! |----------------|----------------------------|------------------|
//! | `NODE_PARENT`  | `u32` (`u32::MAX` = root)  | node_count       |
//! | `NODE_EDGE`    | packed `EdgeKey::raw`      | node_count       |
//! | `NODE_PC`      | `pc(α)`                    | node_count       |
//! | `NODE_PRESENCE`| `Cp(α)`                    | node_count       |
//! | `NODE_OCC`     | `Co(α)`                    | node_count       |
//! | `NODE_FLAGS`   | `u8` (bit 0 label-rooted)  | node_count       |
//! | `CHILD_START`  | CSR row starts             | node_count + 1   |
//! | `CHILD_EDGE`   | edge keys, sorted per row  | child_count      |
//! | `CHILD_TARGET` | child node ids             | child_count      |
//! | `SIG_INDEX`    | `u32` (`u32::MAX` = none)  | node_count       |
//! | `SIG_WORDS`    | `u32` × L per signature    | sig_count × L    |
//! | `STR_OFFSETS`  | label byte offsets         | label_count + 1  |
//! | `STR_BYTES`    | UTF-8 label bytes          | —                |

use crate::error::FlatError;

/// File magic: the first eight bytes of every flat summary.
pub const MAGIC: &[u8; 8] = b"TWIGFLT1";

/// Format version this build reads and writes.
pub const VERSION: u32 = 1;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 72;

/// One section-table entry: kind `u32`, reserved `u32`, offset `u64`,
/// length `u64`, FNV-1a checksum `u64`.
pub const TABLE_ENTRY_LEN: usize = 32;

/// Sections start on this alignment (offsets are multiples of it).
pub const SECTION_ALIGN: usize = 64;

/// Number of sections a version-1 file carries — exactly one of each
/// [`SectionKind`].
pub const SECTION_COUNT: usize = 13;

/// Byte offset of the first section table entry.
pub const TABLE_OFFSET: usize = HEADER_LEN;

/// Byte offset where section payloads may begin.
pub const PAYLOAD_OFFSET: usize = HEADER_LEN + SECTION_COUNT * TABLE_ENTRY_LEN;

/// Upper bound on declared node counts — far above any real summary,
/// low enough that hostile headers cannot provoke huge allocations.
pub const MAX_REASONABLE: u32 = 1 << 28;

/// The thirteen section kinds of a version-1 flat summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Parent node ids (`u32::MAX` for the root).
    NodeParent,
    /// Packed edge keys from the parent (`u32::MAX` for the root).
    NodeEdge,
    /// Path counts `pc(α)`.
    NodePc,
    /// Presence counts `Cp(α)`.
    NodePresence,
    /// Occurrence counts `Co(α)`.
    NodeOccurrence,
    /// Per-node flag bytes (bit 0: label-rooted).
    NodeFlags,
    /// CSR row starts into the child arrays.
    ChildStart,
    /// Child edge keys, sorted within each row.
    ChildEdge,
    /// Child target node ids, parallel to `ChildEdge`.
    ChildTarget,
    /// Per-node signature slot (`u32::MAX` = no signature).
    SigIndex,
    /// Concatenated signature words, `L` per slot.
    SigWords,
    /// Label byte offsets into `StrBytes` (count + 1 entries).
    StrOffsets,
    /// Concatenated UTF-8 label bytes, in symbol order.
    StrBytes,
}

impl SectionKind {
    /// All kinds, in file order.
    pub const ALL: [SectionKind; SECTION_COUNT] = [
        SectionKind::NodeParent,
        SectionKind::NodeEdge,
        SectionKind::NodePc,
        SectionKind::NodePresence,
        SectionKind::NodeOccurrence,
        SectionKind::NodeFlags,
        SectionKind::ChildStart,
        SectionKind::ChildEdge,
        SectionKind::ChildTarget,
        SectionKind::SigIndex,
        SectionKind::SigWords,
        SectionKind::StrOffsets,
        SectionKind::StrBytes,
    ];

    /// Stable on-disk id (1-based; 0 is reserved as "absent").
    pub fn id(self) -> u32 {
        match self {
            SectionKind::NodeParent => 1,
            SectionKind::NodeEdge => 2,
            SectionKind::NodePc => 3,
            SectionKind::NodePresence => 4,
            SectionKind::NodeOccurrence => 5,
            SectionKind::NodeFlags => 6,
            SectionKind::ChildStart => 7,
            SectionKind::ChildEdge => 8,
            SectionKind::ChildTarget => 9,
            SectionKind::SigIndex => 10,
            SectionKind::SigWords => 11,
            SectionKind::StrOffsets => 12,
            SectionKind::StrBytes => 13,
        }
    }

    /// Dense index `0..SECTION_COUNT` (id − 1).
    pub fn index(self) -> usize {
        (self.id() as usize).saturating_sub(1)
    }

    /// Decodes a stable on-disk id.
    pub fn from_id(id: u32) -> Option<SectionKind> {
        let idx = (id as usize).checked_sub(1)?;
        SectionKind::ALL.get(idx).copied()
    }

    /// Human-readable name (for `twig inspect` and error messages).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::NodeParent => "NODE_PARENT",
            SectionKind::NodeEdge => "NODE_EDGE",
            SectionKind::NodePc => "NODE_PC",
            SectionKind::NodePresence => "NODE_PRESENCE",
            SectionKind::NodeOccurrence => "NODE_OCC",
            SectionKind::NodeFlags => "NODE_FLAGS",
            SectionKind::ChildStart => "CHILD_START",
            SectionKind::ChildEdge => "CHILD_EDGE",
            SectionKind::ChildTarget => "CHILD_TARGET",
            SectionKind::SigIndex => "SIG_INDEX",
            SectionKind::SigWords => "SIG_WORDS",
            SectionKind::StrOffsets => "STR_OFFSETS",
            SectionKind::StrBytes => "STR_BYTES",
        }
    }
}

/// Reads a little-endian `u32` at byte `offset`, or `None` past the end.
pub fn read_u32(bytes: &[u8], offset: usize) -> Option<u32> {
    let end = offset.checked_add(4)?;
    bytes.get(offset..end).and_then(|chunk| chunk.try_into().ok()).map(u32::from_le_bytes)
}

/// Reads a little-endian `u64` at byte `offset`, or `None` past the end.
pub fn read_u64(bytes: &[u8], offset: usize) -> Option<u64> {
    let end = offset.checked_add(8)?;
    bytes.get(offset..end).and_then(|chunk| chunk.try_into().ok()).map(u64::from_le_bytes)
}

/// The decoded fixed header (everything but the magic, version and
/// section count, which the decoder consumes as envelope).
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Number of data tree element nodes (`n` of the formulae).
    pub n: u64,
    /// Size of the XML source the tree was parsed from.
    pub source_bytes: u64,
    /// Accounted summary size under the CST cost model.
    pub size_bytes: u64,
    /// Min-hash family seed.
    pub seed: u64,
    /// Signature length `L`.
    pub signature_len: u32,
    /// Prune threshold the budget search selected.
    pub threshold: u32,
    /// Total root-to-leaf paths in the data tree.
    pub total_paths: u32,
    /// Number of kept trie nodes (including the root).
    pub node_count: u32,
    /// Below-resolution fallback mode (0 = conditional independence,
    /// 1 = zero).
    pub fallback: u8,
}

impl Header {
    /// Encodes the fixed header (including magic, version and the
    /// implied section count).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.source_bytes.to_le_bytes());
        out.extend_from_slice(&self.size_bytes.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.signature_len.to_le_bytes());
        out.extend_from_slice(&self.threshold.to_le_bytes());
        out.extend_from_slice(&self.total_paths.to_le_bytes());
        out.extend_from_slice(&self.node_count.to_le_bytes());
        out.push(self.fallback);
        out.resize(HEADER_LEN, 0);
        out
    }

    /// Decodes and validates the fixed header, returning the header and
    /// the declared section count.
    pub fn decode(bytes: &[u8]) -> Result<(Header, u32), FlatError> {
        let magic = bytes.get(..8).ok_or(FlatError::TooShort)?;
        if magic != MAGIC {
            return Err(FlatError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(FlatError::TooShort);
        }
        let version = read_u32(bytes, 8).ok_or(FlatError::TooShort)?;
        if version != VERSION {
            return Err(FlatError::BadVersion(version));
        }
        let section_count = read_u32(bytes, 12).ok_or(FlatError::TooShort)?;
        let header = Header {
            n: read_u64(bytes, 16).ok_or(FlatError::TooShort)?,
            source_bytes: read_u64(bytes, 24).ok_or(FlatError::TooShort)?,
            size_bytes: read_u64(bytes, 32).ok_or(FlatError::TooShort)?,
            seed: read_u64(bytes, 40).ok_or(FlatError::TooShort)?,
            signature_len: read_u32(bytes, 48).ok_or(FlatError::TooShort)?,
            threshold: read_u32(bytes, 52).ok_or(FlatError::TooShort)?,
            total_paths: read_u32(bytes, 56).ok_or(FlatError::TooShort)?,
            node_count: read_u32(bytes, 60).ok_or(FlatError::TooShort)?,
            fallback: bytes.get(64).copied().ok_or(FlatError::TooShort)?,
        };
        if header.fallback > 1 {
            return Err(FlatError::Malformed("unknown fallback mode"));
        }
        Ok((header, section_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let header = Header {
            n: 12,
            source_bytes: 34,
            size_bytes: 56,
            seed: 0x5eed,
            signature_len: 8,
            threshold: 2,
            total_paths: 99,
            node_count: 7,
            fallback: 1,
        };
        let bytes = header.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        let (decoded, count) = Header::decode(&bytes).unwrap();
        assert_eq!(count as usize, SECTION_COUNT);
        assert_eq!(decoded.n, 12);
        assert_eq!(decoded.seed, 0x5eed);
        assert_eq!(decoded.node_count, 7);
        assert_eq!(decoded.fallback, 1);
    }

    #[test]
    fn decode_rejects_bad_envelope() {
        assert!(matches!(Header::decode(b"TWIG"), Err(FlatError::TooShort)));
        assert!(matches!(Header::decode(&[0u8; 72]), Err(FlatError::BadMagic)));
        let mut bytes = Header {
            n: 0,
            source_bytes: 0,
            size_bytes: 0,
            seed: 0,
            signature_len: 0,
            threshold: 0,
            total_paths: 0,
            node_count: 1,
            fallback: 0,
        }
        .encode();
        bytes[8] = 9; // version
        assert!(matches!(Header::decode(&bytes), Err(FlatError::BadVersion(9))));
        bytes[8] = 1;
        bytes[64] = 7; // fallback
        assert!(matches!(Header::decode(&bytes), Err(FlatError::Malformed(_))));
    }

    #[test]
    fn section_ids_roundtrip() {
        for kind in SectionKind::ALL {
            assert_eq!(SectionKind::from_id(kind.id()), Some(kind));
            assert_eq!(SectionKind::ALL.get(kind.index()).copied(), Some(kind));
        }
        assert_eq!(SectionKind::from_id(0), None);
        assert_eq!(SectionKind::from_id(14), None);
    }

    #[test]
    fn le_readers_bounds_checked() {
        let bytes = [1u8, 0, 0, 0, 2, 0, 0, 0];
        assert_eq!(read_u32(&bytes, 0), Some(1));
        assert_eq!(read_u32(&bytes, 4), Some(2));
        assert_eq!(read_u32(&bytes, 5), None);
        assert_eq!(read_u64(&bytes, 0), Some(1 | (2 << 32)));
        assert_eq!(read_u64(&bytes, 1), None);
        assert_eq!(read_u32(&bytes, usize::MAX), None);
    }
}
