//! [`FlatCst`]: a zero-copy, queryable view over a `TWIGFLT1` byte
//! range (memory-mapped file or heap buffer).
//!
//! # Validation policy
//!
//! Opening is O(1) in the summary size: [`FlatCst::open`] eagerly
//! validates only the fixed header and the section table — magic,
//! version, every offset/length in bounds via checked arithmetic,
//! 64-byte alignment, no overlap, exactly one section of each kind,
//! and cross-checked element counts. Section *payloads* are verified
//! lazily: the first touch of a section hashes it (FNV-1a 64) against
//! the table's checksum. On mismatch the section is pinned empty, every
//! accessor over it degrades to safe defaults (counts 0, no children,
//! no signature), and [`FlatCst::integrity_error`] reports the typed
//! error; [`FlatCst::verify`] forces all checks eagerly (used by
//! `twig inspect` and the hostility suite).
//!
//! Accessors are panic-free under arbitrary bytes: every read is
//! bounds-checked, parent pointers must strictly decrease (so corrupt
//! data cannot loop a root-ward walk), and child/signature indices are
//! range-checked before use.

use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use twig_core::{
    estimate_raw_summary, estimate_summary, sibling_discount_summary, Algorithm, CountKind,
    QueryPlan, SignatureFallback, Summary, TrieAccess,
};
use twig_pst::{EdgeKey, PathToken, TrieNodeId};
use twig_sethash::SigView;
use twig_tree::Twig;
use twig_util::{fnv1a64, Symbol};

use crate::error::FlatError;
use crate::format::{
    read_u32, read_u64, Header, SectionKind, MAX_REASONABLE, PAYLOAD_OFFSET, SECTION_ALIGN,
    SECTION_COUNT, TABLE_ENTRY_LEN, TABLE_OFFSET,
};
use crate::mmap::Mapping;

/// Resolved location of one section inside the file.
#[derive(Debug, Clone, Copy, Default)]
struct Section {
    start: usize,
    end: usize,
    checksum: u64,
}

/// Lazy checksum states; 0 (the `AtomicU8` default) means unchecked.
const CHECKED_OK: u8 = 1;
const CHECKED_BAD: u8 = 2;

/// A flat summary, queryable in place. Implements the same
/// [`Summary`] surface as the owned `Cst`, so all six estimation
/// algorithms run over it unmodified and bit-identically.
pub struct FlatCst {
    data: Mapping,
    header: Header,
    fallback: SignatureFallback,
    sections: [Section; SECTION_COUNT],
    state: [AtomicU8; SECTION_COUNT],
    integrity: OnceLock<FlatError>,
}

/// Location and checksum of one section, for `twig inspect`.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Section name (as in the format docs).
    pub name: &'static str,
    /// Absolute byte offset.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Stored FNV-1a checksum.
    pub checksum: u64,
}

impl FlatCst {
    /// Maps `path` read-only (heap fallback) and validates the envelope.
    pub fn open(path: &Path) -> Result<Self, FlatError> {
        let mut file = File::open(path)?;
        let data = Mapping::map_file(&mut file)?;
        Self::from_mapping(data)
    }

    /// Adopts an in-memory flat summary (e.g. recovered snapshot bytes).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, FlatError> {
        Self::from_mapping(Mapping::Heap(bytes))
    }

    #[inline]
    fn from_mapping(data: Mapping) -> Result<Self, FlatError> {
        let bytes = data.bytes();
        let (header, section_count) = Header::decode(bytes)?;
        if section_count as usize != SECTION_COUNT {
            return Err(FlatError::Malformed("section count mismatch"));
        }
        if header.node_count == 0 {
            return Err(FlatError::Malformed("empty node table"));
        }
        if header.node_count > MAX_REASONABLE {
            return Err(FlatError::Malformed("node count out of range"));
        }
        let table = bytes.get(TABLE_OFFSET..PAYLOAD_OFFSET).ok_or(FlatError::TooShort)?;

        let mut sections = [Section::default(); SECTION_COUNT];
        let mut seen = [false; SECTION_COUNT];
        for entry in 0..SECTION_COUNT {
            let base = entry * TABLE_ENTRY_LEN;
            let kind_id = read_u32(table, base).ok_or(FlatError::TooShort)?;
            let kind = SectionKind::from_id(kind_id)
                .ok_or(FlatError::Malformed("unknown section kind"))?;
            let offset = usize::try_from(read_u64(table, base + 8).ok_or(FlatError::TooShort)?)
                .map_err(|_| FlatError::Malformed("section offset exceeds address space"))?;
            let len = usize::try_from(read_u64(table, base + 16).ok_or(FlatError::TooShort)?)
                .map_err(|_| FlatError::Malformed("section length exceeds address space"))?;
            let checksum = read_u64(table, base + 24).ok_or(FlatError::TooShort)?;
            if offset % SECTION_ALIGN != 0 {
                return Err(FlatError::Malformed("misaligned section"));
            }
            if offset < PAYLOAD_OFFSET {
                return Err(FlatError::Malformed("section overlaps header"));
            }
            let end =
                offset.checked_add(len).ok_or(FlatError::Malformed("section length overflow"))?;
            if end > bytes.len() {
                return Err(FlatError::Malformed("section out of bounds"));
            }
            let slot =
                seen.get_mut(kind.index()).ok_or(FlatError::Malformed("unknown section kind"))?;
            if *slot {
                return Err(FlatError::Malformed("duplicate section"));
            }
            *slot = true;
            if let Some(section) = sections.get_mut(kind.index()) {
                *section = Section { start: offset, end, checksum };
            }
        }

        // No two sections may share bytes.
        let mut spans: Vec<(usize, usize)> =
            sections.iter().map(|section| (section.start, section.end)).collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if let [(_, first_end), (second_start, _)] = pair {
                if first_end > second_start {
                    return Err(FlatError::Malformed("overlapping sections"));
                }
            }
        }

        let flat = Self {
            header,
            fallback: if header.fallback == 0 {
                SignatureFallback::ConditionalIndependence
            } else {
                SignatureFallback::Zero
            },
            sections,
            state: Default::default(),
            integrity: OnceLock::new(),
            data,
        };
        flat.validate_element_counts()?;
        Ok(flat)
    }

    /// Cross-checks every fixed-width section's length against the
    /// header's counts (still O(1): lengths only, no payload reads).
    #[inline]
    fn validate_element_counts(&self) -> Result<(), FlatError> {
        let nc = self.header.node_count as usize;
        let word_len = |count: usize| count.checked_mul(4);
        let len_of = |kind: SectionKind| {
            self.sections.get(kind.index()).map_or(0, |section| section.end - section.start)
        };
        let per_node = word_len(nc).ok_or(FlatError::Malformed("node count overflow"))?;
        for kind in [
            SectionKind::NodeParent,
            SectionKind::NodeEdge,
            SectionKind::NodePc,
            SectionKind::NodePresence,
            SectionKind::NodeOccurrence,
            SectionKind::SigIndex,
        ] {
            if len_of(kind) != per_node {
                return Err(FlatError::Malformed("node section size mismatch"));
            }
        }
        if len_of(SectionKind::NodeFlags) != nc {
            return Err(FlatError::Malformed("flags section size mismatch"));
        }
        let starts = word_len(nc + 1).ok_or(FlatError::Malformed("node count overflow"))?;
        if len_of(SectionKind::ChildStart) != starts {
            return Err(FlatError::Malformed("child index size mismatch"));
        }
        let edge_len = len_of(SectionKind::ChildEdge);
        if edge_len % 4 != 0 || edge_len != len_of(SectionKind::ChildTarget) {
            return Err(FlatError::Malformed("child arrays size mismatch"));
        }
        let sig_len = len_of(SectionKind::SigWords);
        let lane = self.header.signature_len as usize;
        match word_len(lane) {
            Some(0) => {
                if sig_len != 0 {
                    return Err(FlatError::Malformed("signature words without length"));
                }
            }
            Some(stride) => {
                if sig_len % stride != 0 {
                    return Err(FlatError::Malformed("signature words size mismatch"));
                }
            }
            None => return Err(FlatError::Malformed("signature length overflow")),
        }
        let offsets_len = len_of(SectionKind::StrOffsets);
        if offsets_len < 4 || offsets_len % 4 != 0 {
            return Err(FlatError::Malformed("label offsets size mismatch"));
        }
        Ok(())
    }

    /// The section's bytes, verified lazily on first touch. A failed
    /// checksum pins the section empty and records the error.
    #[inline]
    fn section(&self, kind: SectionKind) -> &[u8] {
        let index = kind.index();
        let (Some(section), Some(state)) = (self.sections.get(index), self.state.get(index)) else {
            return &[];
        };
        let bytes = self.data.bytes().get(section.start..section.end).unwrap_or(&[]);
        match state.load(Ordering::Acquire) {
            CHECKED_OK => bytes,
            CHECKED_BAD => &[],
            _ => {
                if fnv1a64(bytes) == section.checksum {
                    state.store(CHECKED_OK, Ordering::Release);
                    bytes
                } else {
                    state.store(CHECKED_BAD, Ordering::Release);
                    let _ = self.integrity.set(FlatError::Checksum { section: kind.name() });
                    &[]
                }
            }
        }
    }

    /// Eagerly verifies every section checksum (first failure wins).
    pub fn verify(&self) -> Result<(), FlatError> {
        for kind in SectionKind::ALL {
            if self.section(kind).is_empty()
                && self
                    .sections
                    .get(kind.index())
                    .is_some_and(|section| section.end > section.start)
            {
                return Err(FlatError::Checksum { section: kind.name() });
            }
        }
        Ok(())
    }

    /// The first integrity failure observed by a lazy check, if any.
    pub fn integrity_error(&self) -> Option<&FlatError> {
        self.integrity.get()
    }

    /// True when the bytes are kernel-mapped (vs heap-resident).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Total size of the underlying byte range.
    pub fn file_len(&self) -> usize {
        self.data.bytes().len()
    }

    /// The complete underlying byte range (mapped or heap) — the flat
    /// container itself, e.g. for persisting into a snapshot store
    /// without re-packing.
    pub fn as_bytes(&self) -> &[u8] {
        self.data.bytes()
    }

    /// Section locations and checksums, in file order (`twig inspect`).
    pub fn sections(&self) -> Vec<SectionInfo> {
        SectionKind::ALL
            .iter()
            .map(|&kind| {
                let section = self.sections.get(kind.index()).copied().unwrap_or_default();
                SectionInfo {
                    name: kind.name(),
                    offset: section.start,
                    len: section.end - section.start,
                    checksum: section.checksum,
                }
            })
            .collect()
    }

    /// One `u32` element of a fixed-width node section.
    #[inline]
    fn node_u32(&self, kind: SectionKind, index: usize) -> Option<u32> {
        read_u32(self.section(kind), index.checked_mul(4)?)
    }

    /// Number of kept trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.header.node_count as usize
    }

    /// Number of data tree element nodes (`n` of the formulae).
    pub fn n(&self) -> u64 {
        self.header.n
    }

    /// Accounted summary size under the CST cost model.
    pub fn size_bytes(&self) -> u64 {
        self.header.size_bytes
    }

    /// Size of the XML source the summarized tree was parsed from.
    pub fn source_bytes(&self) -> u64 {
        self.header.source_bytes
    }

    /// Min-hash family seed.
    pub fn seed(&self) -> u64 {
        self.header.seed
    }

    /// Signature length `L`.
    pub fn signature_len(&self) -> usize {
        self.header.signature_len as usize
    }

    /// The prune threshold the budget search selected.
    pub fn threshold(&self) -> u32 {
        self.header.threshold
    }

    /// Total root-to-leaf paths in the data tree.
    pub fn total_paths(&self) -> u32 {
        self.header.total_paths
    }

    /// The below-resolution fallback mode.
    pub fn fallback(&self) -> SignatureFallback {
        self.fallback
    }

    /// Overrides the fallback mode (a query-time choice; the mapped
    /// bytes are untouched).
    pub fn set_fallback(&mut self, fallback: SignatureFallback) {
        self.fallback = fallback;
    }

    /// Presence count `Cp(α)` of a trie node.
    pub fn presence(&self, node: TrieNodeId) -> u64 {
        u64::from(self.node_u32(SectionKind::NodePresence, node.index()).unwrap_or(0))
    }

    /// Occurrence count `Co(α)` of a trie node.
    pub fn occurrence(&self, node: TrieNodeId) -> u64 {
        u64::from(self.node_u32(SectionKind::NodeOccurrence, node.index()).unwrap_or(0))
    }

    /// Path count `pc(α)` of a trie node.
    pub fn path_count(&self, node: TrieNodeId) -> u32 {
        self.node_u32(SectionKind::NodePc, node.index()).unwrap_or(0)
    }

    /// True when the subpath at `node` starts with an element label.
    pub fn label_rooted(&self, node: TrieNodeId) -> bool {
        self.section(SectionKind::NodeFlags).get(node.index()).is_some_and(|flag| flag & 1 != 0)
    }

    /// The child of `node` along `edge`, by binary search over the
    /// node's CSR row.
    #[inline]
    fn child_of(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId> {
        if node.index() >= self.node_count() {
            return None;
        }
        let starts = self.section(SectionKind::ChildStart);
        let mut lo = read_u32(starts, node.index().checked_mul(4)?)? as usize;
        let mut hi = read_u32(starts, node.index().checked_add(1)?.checked_mul(4)?)? as usize;
        if lo > hi {
            return None;
        }
        let edges = self.section(SectionKind::ChildEdge);
        let raw = edge.raw();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let probe = read_u32(edges, mid.checked_mul(4)?)?;
            if probe < raw {
                lo = mid + 1;
            } else if probe > raw {
                hi = mid;
            } else {
                let target = read_u32(self.section(SectionKind::ChildTarget), mid.checked_mul(4)?)?;
                return ((target as usize) < self.node_count()).then_some(TrieNodeId(target));
            }
        }
        None
    }

    /// The parent of `node`, or `None` for the root. Corrupt parent
    /// pointers (id not strictly below the child's) read as `None`, so
    /// root-ward walks always terminate.
    #[inline]
    fn parent_of(&self, node: TrieNodeId) -> Option<TrieNodeId> {
        let raw = self.node_u32(SectionKind::NodeParent, node.index())?;
        (raw != u32::MAX && (raw as usize) < node.index()).then_some(TrieNodeId(raw))
    }

    /// The token sequence spelled by the root-to-`node` path (empty for
    /// the root, and for unreadable or corrupt node chains).
    #[inline]
    fn tokens_of_node(&self, node: TrieNodeId) -> Vec<PathToken> {
        let mut reversed = Vec::new();
        let mut cursor = node;
        while cursor.index() != 0 {
            if cursor.index() >= self.node_count() {
                return Vec::new();
            }
            let Some(edge_raw) = self.node_u32(SectionKind::NodeEdge, cursor.index()) else {
                return Vec::new();
            };
            reversed.push(EdgeKey::from_raw(edge_raw).token());
            match self.parent_of(cursor) {
                Some(parent) => cursor = parent,
                None => return Vec::new(),
            }
        }
        reversed.reverse();
        reversed
    }

    /// Looks up the trie node for a token sequence, if fully present.
    pub fn lookup(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        let mut node = TrieNodeId(0);
        for token in tokens {
            node = self.child_of(node, token.edge())?;
        }
        Some(node)
    }

    /// Resolves a query label against the packed vocabulary (linear
    /// scan; query labels are few and short).
    pub fn symbol(&self, label: &str) -> Option<Symbol> {
        let offsets = self.section(SectionKind::StrOffsets);
        let bytes = self.section(SectionKind::StrBytes);
        let count = (offsets.len() / 4).saturating_sub(1);
        for index in 0..count {
            let start = read_u32(offsets, index.checked_mul(4)?)? as usize;
            let end = read_u32(offsets, index.checked_add(1)?.checked_mul(4)?)? as usize;
            if start <= end && bytes.get(start..end) == Some(label.as_bytes()) {
                return u32::try_from(index).ok().map(Symbol);
            }
        }
        None
    }

    /// Signature of the subpath at `node`, if stored — a borrowed view
    /// straight over the mapped little-endian words.
    pub fn signature(&self, node: TrieNodeId) -> Option<SigView<'_>> {
        let slot = self.node_u32(SectionKind::SigIndex, node.index())?;
        if slot == u32::MAX {
            return None;
        }
        let stride = self.signature_len().checked_mul(4)?;
        let start = (slot as usize).checked_mul(stride)?;
        let end = start.checked_add(stride)?;
        self.section(SectionKind::SigWords).get(start..end).map(SigView::Bytes)
    }

    /// Estimate with MO sibling discounting — `Cst::estimate`, over the
    /// mapped bytes.
    pub fn estimate(&self, twig: &Twig, algorithm: Algorithm, kind: CountKind) -> f64 {
        estimate_summary(self, twig, algorithm, kind)
    }

    /// Raw (undiscounted) estimate, optionally through a cached plan —
    /// `Cst::estimate_raw`, over the mapped bytes.
    pub fn estimate_raw(
        &self,
        twig: &Twig,
        algorithm: Algorithm,
        kind: CountKind,
        plan: Option<&QueryPlan>,
    ) -> f64 {
        estimate_raw_summary(self, twig, algorithm, kind, plan)
    }

    /// The MO sibling discount factor — `Cst::sibling_discount`, over
    /// the mapped bytes.
    pub fn sibling_discount(&self, twig: &Twig) -> f64 {
        sibling_discount_summary(self, twig)
    }
}

impl std::fmt::Debug for FlatCst {
    #[inline]
    fn fmt(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        formatter
            .debug_struct("FlatCst")
            .field("node_count", &self.header.node_count)
            .field("n", &self.header.n)
            .field("signature_len", &self.header.signature_len)
            .field("mapped", &self.is_mapped())
            .finish_non_exhaustive()
    }
}

/// The borrowed trie view of a [`FlatCst`].
#[derive(Clone, Copy)]
pub struct FlatTrie<'a> {
    cst: &'a FlatCst,
}

impl TrieAccess for FlatTrie<'_> {
    #[inline]
    fn child(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId> {
        self.cst.child_of(node, edge)
    }

    #[inline]
    fn parent(&self, node: TrieNodeId) -> Option<TrieNodeId> {
        self.cst.parent_of(node)
    }

    #[inline]
    fn tokens_of(&self, node: TrieNodeId) -> Vec<PathToken> {
        self.cst.tokens_of_node(node)
    }
}

impl Summary for FlatCst {
    type Trie<'a> = FlatTrie<'a>;

    #[inline]
    fn trie(&self) -> FlatTrie<'_> {
        FlatTrie { cst: self }
    }

    #[inline]
    fn n(&self) -> u64 {
        FlatCst::n(self)
    }

    #[inline]
    fn signature_len(&self) -> usize {
        FlatCst::signature_len(self)
    }

    #[inline]
    fn fallback(&self) -> SignatureFallback {
        FlatCst::fallback(self)
    }

    #[inline]
    fn symbol(&self, label: &str) -> Option<Symbol> {
        FlatCst::symbol(self, label)
    }

    #[inline]
    fn lookup(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        FlatCst::lookup(self, tokens)
    }

    #[inline]
    fn presence(&self, node: TrieNodeId) -> u64 {
        FlatCst::presence(self, node)
    }

    #[inline]
    fn occurrence(&self, node: TrieNodeId) -> u64 {
        FlatCst::occurrence(self, node)
    }

    #[inline]
    fn signature(&self, node: TrieNodeId) -> Option<SigView<'_>> {
        FlatCst::signature(self, node)
    }
}
