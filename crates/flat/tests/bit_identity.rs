//! Satellite: the mapped view is not "approximately" the owned summary
//! — it IS the owned summary, bit for bit.
//!
//! Seed sweep over generated DBLP and SPROT corpora: pack each owned
//! `Cst` into the flat layout, then compare `FlatCst` against the owned
//! structure across all six algorithms, both count kinds, with and
//! without a cached `QueryPlan` — every estimate compared by
//! `f64::to_bits`. The estimators run the identical float-op sequence
//! over both storages (signatures are read through `SigView`), so any
//! divergence is a format or reader bug, not rounding.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, QueryPlan, SpaceBudget};
use twig_datagen::{
    generate_dblp, generate_sprot, negative_query_candidates, positive_queries, trivial_queries,
    DblpConfig, SprotConfig, WorkloadConfig,
};
use twig_flat::{writer, AnySummary, FlatCst};
use twig_tree::{DataTree, Twig};

fn workload(tree: &DataTree, seed: u64) -> Vec<Twig> {
    let cfg = WorkloadConfig { count: 12, seed, ..WorkloadConfig::default() };
    let mut queries = positive_queries(tree, &cfg);
    queries.extend(negative_query_candidates(tree, &cfg));
    queries.extend(trivial_queries(tree, &WorkloadConfig { count: 4, seed, ..cfg }));
    assert!(!queries.is_empty(), "workload generation produced no queries");
    queries
}

fn assert_bit_identical(cst: &Cst, flat: &FlatCst, queries: &[Twig], context: &str) {
    for twig in queries {
        let plan = QueryPlan::new();
        for algorithm in Algorithm::ALL {
            for kind in [CountKind::Presence, CountKind::Occurrence] {
                let owned = cst.estimate(twig, algorithm, kind);
                let mapped = flat.estimate(twig, algorithm, kind);
                assert_eq!(
                    owned.to_bits(),
                    mapped.to_bits(),
                    "{context}: flat diverges: {twig} {algorithm} {kind:?} \
                     owned={owned} flat={mapped}"
                );
                let owned_raw = cst.estimate_raw(twig, algorithm, kind, None);
                let cold = flat.estimate_raw(twig, algorithm, kind, Some(&plan));
                let warm = flat.estimate_raw(twig, algorithm, kind, Some(&plan));
                assert_eq!(
                    owned_raw.to_bits(),
                    cold.to_bits(),
                    "{context}: cold plan over flat diverges: {twig} {algorithm} {kind:?}"
                );
                assert_eq!(
                    owned_raw.to_bits(),
                    warm.to_bits(),
                    "{context}: warm plan over flat diverges: {twig} {algorithm} {kind:?}"
                );
            }
        }
        let owned_discount = cst.sibling_discount(twig);
        let flat_discount = flat.sibling_discount(twig);
        assert_eq!(
            owned_discount.to_bits(),
            flat_discount.to_bits(),
            "{context}: sibling discount diverges: {twig}"
        );
    }
}

/// DBLP-shaped corpora across thresholds and signature lengths.
#[test]
fn dblp_sweep_owned_vs_flat_bit_identical() {
    for seed in [0xF1A7_0001u64, 0xF1A7_0002] {
        let xml =
            generate_dblp(&DblpConfig { target_bytes: 50_000, seed, ..DblpConfig::default() });
        let tree = DataTree::from_xml(&xml).expect("generated DBLP parses");
        for (threshold, signature_len) in [(1, 8), (3, 32)] {
            let cst = Cst::build(
                &tree,
                &CstConfig {
                    budget: SpaceBudget::Threshold(threshold),
                    signature_len,
                    ..CstConfig::default()
                },
            )
            .expect("CST builds");
            let flat = FlatCst::from_bytes(writer::pack(&cst).expect("packs")).expect("flat opens");
            flat.verify().expect("checksums verify");
            let queries = workload(&tree, seed ^ 0x51);
            assert_bit_identical(
                &cst,
                &flat,
                &queries,
                &format!("dblp seed {seed:#x} t{threshold} L{signature_len}"),
            );
        }
    }
}

/// SPROT-shaped corpus (deep values, character edges).
#[test]
fn sprot_sweep_owned_vs_flat_bit_identical() {
    let seed = 0xF1A7_0005u64;
    let xml = generate_sprot(&SprotConfig { target_bytes: 50_000, seed });
    let tree = DataTree::from_xml(&xml).expect("generated SPROT parses");
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.2), ..CstConfig::default() },
    )
    .expect("CST builds");
    let flat = FlatCst::from_bytes(writer::pack(&cst).expect("packs")).expect("flat opens");
    let queries = workload(&tree, seed);
    assert_bit_identical(&cst, &flat, &queries, "sprot");
}

/// The `AnySummary` dispatch layer must not perturb results either —
/// both variants, same bits; mmap-backed and heap-backed flat agree.
#[test]
fn any_summary_and_mmap_path_bit_identical() {
    let xml = generate_dblp(&DblpConfig {
        target_bytes: 40_000,
        seed: 0xF1A7_0009,
        ..DblpConfig::default()
    });
    let tree = DataTree::from_xml(&xml).expect("generated DBLP parses");
    let cst = Cst::build(&tree, &CstConfig::default()).expect("CST builds");

    let dir = std::env::temp_dir().join("twig-flat-bit-identity");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sweep.flt");
    writer::write_file(&cst, &path).expect("flat file lands");
    let mapped = AnySummary::load_file(&path).expect("flat file loads");
    #[cfg(unix)]
    assert_eq!(mapped.format_name(), "flat+mmap");

    let heap = AnySummary::from_bytes(writer::pack(&cst).expect("packs")).expect("heap flat");
    let owned = AnySummary::Owned(cst);

    for twig in workload(&tree, 0x1d) {
        let plan_mapped = QueryPlan::new();
        let plan_heap = QueryPlan::new();
        for algorithm in Algorithm::ALL {
            for kind in [CountKind::Presence, CountKind::Occurrence] {
                let baseline = owned.estimate(&twig, algorithm, kind);
                for (any, plan, name) in
                    [(&mapped, &plan_mapped, "mmap"), (&heap, &plan_heap, "heap")]
                {
                    let direct = any.estimate(&twig, algorithm, kind);
                    assert_eq!(
                        baseline.to_bits(),
                        direct.to_bits(),
                        "{name}: AnySummary diverges: {twig} {algorithm} {kind:?}"
                    );
                    let planned = any.estimate_raw(&twig, algorithm, kind, Some(plan))
                        * any.sibling_discount(&twig);
                    assert_eq!(
                        baseline.to_bits(),
                        planned.to_bits(),
                        "{name}: planned product diverges: {twig} {algorithm} {kind:?}"
                    );
                }
            }
        }
    }
    std::fs::remove_file(&path).ok();
}
