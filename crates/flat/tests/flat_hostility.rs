//! Satellite: hostile-input sweeps for the `TWIGFLT1` reader, mirroring
//! the owned deserializer's suite.
//!
//! The flat path raises the stakes over `TWIGCST`: sections are read
//! *lazily*, so a corrupt payload is not necessarily rejected at open —
//! the contract is layered instead:
//!
//! 1. Structural damage (truncation, bad table arithmetic, misaligned
//!    or overlapping sections) is a typed [`FlatError`] at open.
//! 2. Payload damage that survives open is caught by the per-section
//!    checksum on first touch: accessors degrade to safe defaults,
//!    estimates stay finite, `integrity_error()` reports the section.
//! 3. Nothing ever panics or over-reads, for *any* input bytes.
//!
//! All sweeps are deterministic (SplitMix64-seeded).

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_flat::format::{HEADER_LEN, PAYLOAD_OFFSET, SECTION_COUNT, TABLE_ENTRY_LEN, TABLE_OFFSET};
use twig_flat::{writer, FlatCst, FlatError};
use twig_tree::{DataTree, Twig};
use twig_util::SplitMix64;

fn sample_flat_bytes() -> Vec<u8> {
    let tree = DataTree::from_xml(concat!(
        "<dblp>",
        "<book><author>Anna</author><year>1999</year><title>TreeQL</title></book>",
        "<book><author>Bo</author><year>2000</year></book>",
        "<article><author>Cy</author><title>Twigs</title></article>",
        "</dblp>"
    ))
    .expect("sample XML parses");
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("sample CST builds");
    writer::pack(&cst).expect("sample packs")
}

fn sample_query() -> Twig {
    Twig::parse(r#"book(author("A"),year("19"))"#).expect("query parses")
}

/// Estimation over a possibly-degraded summary must stay finite and
/// non-negative, and must never panic.
fn assert_estimates_sane(flat: &FlatCst, context: &str) {
    let query = sample_query();
    for algorithm in Algorithm::ALL {
        for kind in [CountKind::Presence, CountKind::Occurrence] {
            let estimate = flat.estimate(&query, algorithm, kind);
            assert!(
                estimate.is_finite() && estimate >= 0.0,
                "{context}: poisoned {algorithm} {kind:?}: {estimate}"
            );
        }
    }
}

/// Every prefix truncation is a typed error at open — the header and
/// section table are validated before any payload is trusted, and a cut
/// anywhere inside the payload area shrinks some section out of bounds.
#[test]
fn every_truncation_is_a_structured_error() {
    let bytes = sample_flat_bytes();
    for cut in 0..bytes.len() {
        match FlatCst::from_bytes(bytes[..cut].to_vec()) {
            Err(
                FlatError::TooShort
                | FlatError::BadMagic
                | FlatError::BadVersion(_)
                | FlatError::Malformed(_),
            ) => {}
            Err(other) => panic!("truncation at {cut}: unexpected error class {other}"),
            Ok(_) => panic!("truncation at {cut}/{} accepted", bytes.len()),
        }
    }
    assert!(FlatCst::from_bytes(bytes).is_ok());
}

/// Truncation exactly at every section boundary (start and end) — the
/// interesting cuts a torn write produces.
#[test]
fn truncation_at_every_section_boundary_rejected() {
    let bytes = sample_flat_bytes();
    let flat = FlatCst::from_bytes(bytes.clone()).expect("sample opens");
    let mut cuts = vec![0, HEADER_LEN, TABLE_OFFSET, PAYLOAD_OFFSET];
    for info in flat.sections() {
        cuts.push(info.offset);
        cuts.push(info.offset + info.len);
    }
    cuts.sort_unstable();
    cuts.dedup();
    drop(flat);
    for cut in cuts {
        if cut >= bytes.len() {
            continue;
        }
        assert!(
            FlatCst::from_bytes(bytes[..cut].to_vec()).is_err(),
            "boundary truncation at {cut} accepted"
        );
    }
}

/// Bit flips in the header/section-table region: either rejected at
/// open, or (e.g. a checksum byte itself) surfaced lazily — never a
/// panic, never a wild read.
#[test]
fn header_and_table_bit_flips_never_panic() {
    let bytes = sample_flat_bytes();
    let mut rng = SplitMix64::new(0xF1A7_F11B);
    for round in 0..800 {
        let mut mutated = bytes.clone();
        let position = rng.index(PAYLOAD_OFFSET.min(mutated.len()));
        let bit = rng.next_below(8) as u8;
        mutated[position] ^= 1 << bit;
        match FlatCst::from_bytes(mutated) {
            Err(_) => {}
            Ok(flat) => {
                let _ = flat.verify();
                assert_estimates_sane(&flat, &format!("round {round} flip@{position}.{bit}"));
            }
        }
    }
}

/// Bit flips anywhere in the payload: open usually succeeds (lazy
/// policy), the touched section's checksum must then catch the damage —
/// `verify()` errs, accessors stay safe, estimates stay finite.
#[test]
fn payload_bit_flips_caught_by_lazy_checksums() {
    let bytes = sample_flat_bytes();
    let mut rng = SplitMix64::new(0xF1A7_C4EC);
    let mut caught = 0u32;
    for round in 0..600 {
        let mut mutated = bytes.clone();
        let span = mutated.len() - PAYLOAD_OFFSET;
        let position = PAYLOAD_OFFSET + rng.index(span);
        let bit = rng.next_below(8) as u8;
        mutated[position] ^= 1 << bit;
        match FlatCst::from_bytes(mutated) {
            Err(_) => {}
            Ok(flat) => {
                let verdict = flat.verify();
                // A flip inside a stored section must fail verification
                // (gap bytes between aligned sections are unprotected).
                let in_section = flat
                    .sections()
                    .iter()
                    .any(|info| position >= info.offset && position < info.offset + info.len);
                if in_section {
                    assert!(
                        verdict.is_err(),
                        "round {round}: flip@{position}.{bit} escaped checksums"
                    );
                    caught += 1;
                    assert!(
                        flat.integrity_error().is_some(),
                        "round {round}: checksum failure not recorded"
                    );
                }
                assert_estimates_sane(&flat, &format!("round {round} flip@{position}.{bit}"));
            }
        }
    }
    assert!(caught > 100, "sweep never hit a protected section ({caught})");
}

/// Hostile section tables: misaligned offsets, overlaps, offsets into
/// the header, out-of-bounds ends, duplicate and unknown kinds — all
/// typed `Malformed` errors.
#[test]
fn hostile_section_tables_rejected() {
    let bytes = sample_flat_bytes();
    let entry = |index: usize| TABLE_OFFSET + index * TABLE_ENTRY_LEN;

    // Misalign the first section's offset (+1 also moves it off 64).
    let mut misaligned = bytes.clone();
    let off = entry(0) + 8;
    let old = u64::from_le_bytes(misaligned[off..off + 8].try_into().unwrap());
    misaligned[off..off + 8].copy_from_slice(&(old + 1).to_le_bytes());
    assert!(matches!(
        FlatCst::from_bytes(misaligned),
        Err(FlatError::Malformed(_) | FlatError::Checksum { .. })
    ));

    // Point the second section at the first (overlap, still aligned).
    let mut overlapping = bytes.clone();
    let first_off = entry(0) + 8;
    let second_off = entry(1) + 8;
    let first = u64::from_le_bytes(overlapping[first_off..first_off + 8].try_into().unwrap());
    overlapping[second_off..second_off + 8].copy_from_slice(&first.to_le_bytes());
    assert!(matches!(FlatCst::from_bytes(overlapping), Err(FlatError::Malformed(_))));

    // Send a section into the header area.
    let mut into_header = bytes.clone();
    into_header[first_off..first_off + 8].copy_from_slice(&0u64.to_le_bytes());
    assert!(matches!(FlatCst::from_bytes(into_header), Err(FlatError::Malformed(_))));

    // Length that runs past the end of the file.
    let mut oob = bytes.clone();
    let len_off = entry(0) + 16;
    oob[len_off..len_off + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(matches!(FlatCst::from_bytes(oob), Err(FlatError::Malformed(_))));

    // Length so large offset+len overflows usize.
    let mut wrap = bytes.clone();
    wrap[len_off..len_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(FlatCst::from_bytes(wrap), Err(FlatError::Malformed(_))));

    // Duplicate kind: relabel entry 1 as entry 0's kind.
    let mut duplicate = bytes.clone();
    let kind0 = duplicate[entry(0)];
    duplicate[entry(1)] = kind0;
    assert!(matches!(FlatCst::from_bytes(duplicate), Err(FlatError::Malformed(_))));

    // Unknown kind id.
    let mut unknown = bytes.clone();
    unknown[entry(0)] = 200;
    assert!(matches!(FlatCst::from_bytes(unknown), Err(FlatError::Malformed(_))));

    // Wrong declared section count.
    let mut miscounted = bytes;
    miscounted[12..16].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(FlatCst::from_bytes(miscounted), Err(FlatError::Malformed(_))));
}

/// Garbage and tiny inputs: typed errors, no panic, no huge allocation.
#[test]
fn garbage_inputs_rejected() {
    assert!(matches!(FlatCst::from_bytes(Vec::new()), Err(FlatError::TooShort)));
    assert!(matches!(FlatCst::from_bytes(b"TWIG".to_vec()), Err(FlatError::TooShort)));
    assert!(matches!(
        FlatCst::from_bytes(vec![0u8; 4096]),
        Err(FlatError::BadMagic | FlatError::TooShort)
    ));
    // Valid magic, hostile node_count: must not allocate proportionally.
    let mut hostile = vec![0u8; HEADER_LEN + SECTION_COUNT * TABLE_ENTRY_LEN];
    hostile[..8].copy_from_slice(b"TWIGFLT1");
    hostile[8..12].copy_from_slice(&1u32.to_le_bytes());
    hostile[12..16].copy_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    hostile[60..64].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(FlatCst::from_bytes(hostile), Err(FlatError::Malformed(_))));
}

/// A corrupt parent chain (cycle bait) must not hang or panic a
/// root-ward walk: parents must strictly decrease, so the reader treats
/// a forward pointer as corruption and returns an empty token path.
#[test]
fn corrupt_parent_pointers_cannot_loop() {
    let bytes = sample_flat_bytes();
    let flat = FlatCst::from_bytes(bytes.clone()).expect("sample opens");
    let parent_info = flat
        .sections()
        .into_iter()
        .find(|info| info.name == "NODE_PARENT")
        .expect("parent section present");
    drop(flat);
    let mut mutated = bytes;
    // Make node 1 its own parent — and refresh nothing else, so the
    // checksum trips; then ALSO test the pre-checksum guard by reading
    // through a reader that never touched the section yet.
    let off = parent_info.offset + 4;
    mutated[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
    let flat = FlatCst::from_bytes(mutated).expect("structurally fine");
    assert_estimates_sane(&flat, "self-parent node");
    assert!(flat.verify().is_err(), "parent corruption escaped checksums");
}

/// Orphaned `.tmp` files from a torn pack never shadow the target: the
/// failpoint tears the temp file, the target keeps its old (or no)
/// contents, and a subsequent clean pack lands atomically.
#[test]
fn torn_pack_leaves_target_recoverable() {
    let tree = DataTree::from_xml("<a><b>x</b><b>y</b></a>").expect("xml parses");
    let cst = Cst::build(&tree, &CstConfig::default()).expect("builds");
    let dir = std::env::temp_dir().join("twig-flat-torn-pack");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("summary.flt");
    std::fs::remove_file(&path).ok();

    twig_util::failpoint::configure("flat.pack=1*partial(37),off", 0x7ea5)
        .expect("failpoint spec parses");
    let torn = writer::write_file(&cst, &path);
    assert!(torn.is_err(), "torn pack must report the injected error");
    assert!(!path.exists(), "torn pack must not materialize the target");
    let tmp = dir.join("summary.flt.tmp");
    assert!(tmp.exists(), "torn pack leaves the temp file for inspection");

    // Second attempt (failpoint exhausted) lands cleanly over the wreck.
    writer::write_file(&cst, &path).expect("clean pack lands");
    twig_util::failpoint::clear_all();
    let flat = FlatCst::open(&path).expect("packed file opens");
    flat.verify().expect("packed file verifies");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&tmp).ok();
}
