//! Integration coverage of the suffix trie: counts on structured corpora
//! and budget-pruning behavior.

use twig_pst::{build_suffix_trie, NodeCostInfo, PathToken, TrieConfig};
use twig_tree::DataTree;

fn tokens(tree: &DataTree, labels: &[&str], value: &str) -> Vec<PathToken> {
    let mut out: Vec<PathToken> =
        labels.iter().map(|l| PathToken::Element(tree.symbol(l).expect("known label"))).collect();
    out.extend(value.bytes().map(PathToken::Char));
    out
}

/// A corpus where `author` occurs under two parents (cite blocks),
/// exercising the multi-parent count semantics.
fn multiparent_tree() -> DataTree {
    let mut xml = String::from("<dblp>");
    for i in 0..10 {
        xml.push_str(&format!(
            "<article><author>Alan</author><cite><author>Bea</author></cite><year>19{:02}</year></article>",
            80 + (i % 5)
        ));
    }
    xml.push_str("</dblp>");
    DataTree::from_xml(&xml).unwrap()
}

#[test]
fn multi_parent_labels_counted_separately() {
    let tree = multiparent_tree();
    let trie = build_suffix_trie(&tree, &TrieConfig::default());
    let direct = trie.find(&tokens(&tree, &["article", "author"], "")).unwrap();
    let cited = trie.find(&tokens(&tree, &["cite", "author"], "")).unwrap();
    let any = trie.find(&tokens(&tree, &["author"], "")).unwrap();
    assert_eq!(trie.presence(direct), 10);
    assert_eq!(trie.presence(cited), 10);
    assert_eq!(trie.presence(any), 20, "author occurrences from both contexts");
    // Value prefixes are context-sensitive too.
    let direct_a = trie.find(&tokens(&tree, &["article", "author"], "Alan")).unwrap();
    let any_b = trie.find(&tokens(&tree, &["author"], "Bea")).unwrap();
    assert_eq!(trie.presence(direct_a), 10);
    assert_eq!(trie.presence(any_b), 10);
    assert!(trie.find(&tokens(&tree, &["article", "author"], "Bea")).is_none());
}

#[test]
fn budget_pruning_strict_monotone_nested() {
    let tree = multiparent_tree();
    let trie = build_suffix_trie(&tree, &TrieConfig::default());
    let cost = |info: NodeCostInfo| if info.label_rooted { 100 } else { 20 };
    let mut last_count = usize::MAX;
    for budget in [100_000usize, 10_000, 2_000, 400, 0] {
        let pruned = trie.prune_to_budget(budget, cost);
        assert!(pruned.node_count() <= last_count, "budget {budget}");
        last_count = pruned.node_count();
        // Every kept node's pc meets the threshold.
        for node in pruned.node_ids().skip(1) {
            assert!(pruned.path_count(node) >= pruned.threshold());
        }
    }
}

#[test]
fn signature_pass_visits_each_rooting_node() {
    use twig_pst::builder::for_each_rooted_subpath;
    let tree = multiparent_tree();
    let config = TrieConfig::default();
    let trie = build_suffix_trie(&tree, &config);
    let pruned = trie.prune(1);
    // Collect distinct (start, node) pairs; the count per trie node must
    // equal its presence count.
    use std::collections::HashSet;
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for_each_rooted_subpath(&tree, &pruned, &config, |start, node| {
        seen.insert((start.0, node.0));
    });
    for node in pruned.node_ids().skip(1) {
        if !pruned.label_rooted(node) {
            continue;
        }
        let distinct_starts = seen.iter().filter(|&&(_, n)| n == node.0).count();
        assert_eq!(distinct_starts, pruned.presence(node) as usize, "node {node:?}");
    }
}

#[test]
fn deep_chain_counts() {
    let tree =
        DataTree::from_xml("<a><b><c><d><e>xyz</e></d></c></b><b><c><d><e>xyz</e></d></c></b></a>")
            .unwrap();
    let trie = build_suffix_trie(&tree, &TrieConfig::default());
    for (labels, presence) in [
        (vec!["a"], 1),
        (vec!["a", "b"], 1),
        (vec!["b", "c", "d"], 2),
        (vec!["c", "d", "e"], 2),
        (vec!["a", "b", "c", "d", "e"], 1),
    ] {
        let node = trie.find(&tokens(&tree, &labels, "")).unwrap();
        assert_eq!(trie.presence(node), presence, "{labels:?}");
    }
    // Occurrence of a.b is 2 (two b-instances), presence 1.
    let ab = trie.find(&tokens(&tree, &["a", "b"], "")).unwrap();
    assert_eq!(trie.occurrence(ab), 2);
}

#[test]
fn empty_values_and_whitespace_handling() {
    // Elements with no text; the parser drops whitespace-only runs.
    let tree = DataTree::from_xml("<a>\n  <b>  </b>\n  <c>x</c>\n</a>").unwrap();
    let trie = build_suffix_trie(&tree, &TrieConfig::default());
    assert_eq!(trie.total_paths(), 2); // b (childless) and c.x
    let b = trie.find(&tokens(&tree, &["a", "b"], "")).unwrap();
    assert_eq!(trie.presence(b), 1);
}

#[test]
fn export_import_roundtrip_preserves_structure() {
    use twig_pst::PrunedTrie;
    let tree = multiparent_tree();
    let trie = build_suffix_trie(&tree, &TrieConfig::default());
    let pruned = trie.prune(3);
    let exported = pruned.export_nodes();
    let rebuilt = PrunedTrie::from_exported(exported, pruned.total_paths(), pruned.threshold());
    assert_eq!(rebuilt.node_count(), pruned.node_count());
    for node in pruned.node_ids() {
        assert_eq!(rebuilt.presence(node), pruned.presence(node));
        assert_eq!(rebuilt.occurrence(node), pruned.occurrence(node));
        assert_eq!(rebuilt.tokens_of(node), pruned.tokens_of(node));
    }
}
