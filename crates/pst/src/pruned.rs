//! Pruning the suffix trie to a threshold or a byte budget.

use twig_util::FxHashMap;

use crate::trie::{EdgeKey, PathToken, SuffixTrie, TrieNodeId};

/// Per-node payload of the pruned trie (dedup stamps dropped).
#[derive(Debug, Clone)]
struct PrunedNode {
    parent: u32,
    edge: u32,
    path_count: u32,
    presence: u32,
    occurrence: u32,
    label_rooted: bool,
}

/// The pruned subpath tree `T'` — the structural part of the CST.
///
/// Nodes are renumbered densely in depth-first order from the root (the
/// root keeps id 0, [`TrieNodeId::ROOT`]); parents always precede their
/// children, and a unary chain gets consecutive ids.
///
/// Child transitions are stored in CSR (compressed sparse row) form:
/// node `k`'s outgoing entries live in
/// `children[child_start[k]..child_start[k+1]]`, sorted by edge key.
/// Each entry carries the *target's* own CSR window alongside the edge,
/// so a root-to-leaf walk resolves every step from the one contiguous
/// `children` array — one dependent memory region per step instead of
/// an extra `child_start` indirection, which is what makes cold
/// (cache-miss-bound) walks cheaper than a global transition hashmap.
/// A hashmap is used only while *building* tries, never for serving
/// reads.
#[derive(Debug)]
pub struct PrunedTrie {
    nodes: Vec<PrunedNode>,
    /// `len() == nodes.len() + 1`; prefix offsets into `children`.
    child_start: Vec<u32>,
    /// Transition entries, edge-sorted within each node's range.
    children: Vec<ChildEntry>,
    total_paths: u32,
    threshold: u32,
}

/// One CSR transition: the edge key, the child it leads to, and the
/// child's own `children` window (start + length), embedded so walks
/// never have to consult `child_start` between steps.
#[derive(Debug, Clone, Copy)]
struct ChildEntry {
    edge: u32,
    target: u32,
    target_start: u32,
    target_len: u32,
}

/// Branch-free lower-bound search of one node's edge-sorted transition
/// slice: wide nodes (the root) are first narrowed by a halving search
/// whose select compiles to a conditional move, then the surviving
/// window of at most 16 entries is resolved by a fixed-trip count that
/// vectorizes — no data-dependent branch is taken until the final
/// hit/miss test.
#[inline]
fn search(entries: &[ChildEntry], wanted: u32) -> Option<&ChildEntry> {
    let mut lo = 0usize;
    let mut len = entries.len();
    while len > 16 {
        let half = len / 2;
        lo = if entries[lo + half].edge <= wanted { lo + half } else { lo };
        len -= half;
    }
    let mut below = 0usize;
    for entry in &entries[lo..lo + len] {
        below += usize::from(entry.edge < wanted);
    }
    entries.get(lo + below).filter(|entry| entry.edge == wanted)
}

/// Second build pass: once `child_start` is final, stamp every entry
/// with its target's transition window.
fn backfill_windows(child_start: &[u32], children: &mut [ChildEntry]) {
    for entry in children {
        let target = entry.target as usize;
        entry.target_start = child_start[target];
        entry.target_len = child_start[target + 1] - child_start[target];
    }
}

/// The information the per-node cost model receives when pruning to a byte
/// budget. Label-rooted nodes carry a set-hash signature in the CST and
/// therefore cost more.
#[derive(Debug, Clone, Copy)]
pub struct NodeCostInfo {
    /// True when the subpath begins with an element label (signature-bearing).
    pub label_rooted: bool,
    /// True when the incoming edge is an element label (vs a value byte).
    pub element_edge: bool,
}

impl SuffixTrie {
    /// Keeps exactly the nodes with `pc(α) ≥ threshold` (plus the root).
    ///
    /// Because `pc` is monotone non-increasing along trie edges in *both*
    /// directions (a path containing α contains every sub-subpath of α),
    /// threshold pruning preserves the monotonicity property of Sec. 3.7:
    /// every sub-subpath of a kept subpath is kept.
    pub fn prune(&self, threshold: u32) -> PrunedTrie {
        let threshold = threshold.max(1);
        let mut nodes = vec![PrunedNode {
            parent: u32::MAX,
            edge: u32::MAX,
            path_count: self.total_paths,
            presence: 0,
            occurrence: 0,
            label_rooted: false,
        }];
        // Old trie children are only reachable through the global map; walk
        // all edges grouped by parent. Build a per-parent adjacency pass
        // first to avoid scanning the whole map per node.
        let mut adjacency: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        for (&(parent, edge), &child) in &self.children {
            if self.nodes[child as usize].path_count >= threshold {
                adjacency.entry(parent).or_default().push((edge, child));
            }
        }
        // Depth-first renumbering: siblings get consecutive ids in edge
        // order, and a node's subtree is numbered before its next
        // sibling's. CSR regions are laid out in id order, so a unary
        // chain — the common shape, one value byte per node — occupies
        // *adjacent* regions and a downward walk streams sequentially
        // through `children` instead of striding across BFS levels.
        let mut kids: Vec<Vec<(u32, u32)>> = vec![Vec::new()];
        let mut stack: Vec<(u32, u32)> = vec![(0, 0)];
        while let Some((old_id, new_id)) = stack.pop() {
            let Some(edges) = adjacency.get(&old_id) else {
                continue;
            };
            // Deterministic ordering for reproducible node ids.
            let mut edges = edges.clone();
            edges.sort_unstable();
            let mut assigned: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
            for &(edge, old_child) in &edges {
                let data = &self.nodes[old_child as usize];
                let new_child = u32::try_from(nodes.len()).expect("pruned trie too large");
                nodes.push(PrunedNode {
                    parent: new_id,
                    edge,
                    path_count: data.path_count,
                    presence: data.presence,
                    occurrence: data.occurrence,
                    label_rooted: data.label_rooted,
                });
                kids[new_id as usize].push((edge, new_child));
                kids.push(Vec::new());
                assigned.push((old_child, new_child));
            }
            // LIFO stack: push in reverse so the smallest edge's subtree
            // is numbered first.
            for &entry in assigned.iter().rev() {
                stack.push(entry);
            }
        }
        let mut child_start: Vec<u32> = Vec::with_capacity(nodes.len() + 1);
        let mut children: Vec<ChildEntry> = Vec::with_capacity(nodes.len().saturating_sub(1));
        for list in &kids {
            child_start.push(children.len() as u32);
            for &(edge, target) in list {
                children.push(ChildEntry { edge, target, target_start: 0, target_len: 0 });
            }
        }
        child_start.push(children.len() as u32);
        backfill_windows(&child_start, &mut children);
        PrunedTrie { nodes, child_start, children, total_paths: self.total_paths, threshold }
    }

    /// Finds the smallest threshold whose pruned trie fits in
    /// `budget_bytes` under `cost` and returns that pruned trie.
    ///
    /// `cost` is charged per kept node (the root is free). A budget too
    /// small for even the most frequent subpaths yields a root-only trie.
    pub fn prune_to_budget(
        &self,
        budget_bytes: usize,
        cost: impl Fn(NodeCostInfo) -> usize,
    ) -> PrunedTrie {
        // Group per-node costs by pc value.
        let mut by_pc: FxHashMap<u32, usize> = FxHashMap::default();
        for data in self.nodes.iter().skip(1) {
            let info = NodeCostInfo {
                label_rooted: data.label_rooted,
                element_edge: EdgeKey::from_raw(data.edge).is_element(),
            };
            *by_pc.entry(data.path_count).or_insert(0) += cost(info);
        }
        let mut groups: Vec<(u32, usize)> = by_pc.into_iter().collect();
        groups.sort_unstable_by_key(|&(pc, _)| std::cmp::Reverse(pc));
        let mut cumulative = 0usize;
        let mut threshold = u32::MAX; // root-only if nothing fits
        for (pc, group_cost) in groups {
            if cumulative + group_cost > budget_bytes {
                break;
            }
            cumulative += group_cost;
            threshold = pc;
        }
        self.prune(threshold)
    }
}

impl PrunedTrie {
    /// Number of kept nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The pruning threshold that produced this trie.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Number of root-to-leaf data paths the original trie was built from.
    pub fn total_paths(&self) -> u32 {
        self.total_paths
    }

    /// Child of `node` along `edge`, if kept ([`search`] over the
    /// node's CSR transition slice).
    #[inline]
    pub fn child(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId> {
        let start = self.child_start[node.index()] as usize;
        let end = self.child_start[node.index() + 1] as usize;
        search(&self.children[start..end], edge.raw()).map(|entry| TrieNodeId(entry.target))
    }

    /// `pc(α)`.
    pub fn path_count(&self, node: TrieNodeId) -> u32 {
        self.nodes[node.index()].path_count
    }

    /// `Cp(α)` — the presence count used by the estimators.
    pub fn presence(&self, node: TrieNodeId) -> u32 {
        self.nodes[node.index()].presence
    }

    /// `Co(α)` — the occurrence count used in multiset mode.
    pub fn occurrence(&self, node: TrieNodeId) -> u32 {
        self.nodes[node.index()].occurrence
    }

    /// True when the subpath begins with an element label.
    pub fn label_rooted(&self, node: TrieNodeId) -> bool {
        self.nodes[node.index()].label_rooted
    }

    /// Parent of `node`, or `None` for the root.
    pub fn parent(&self, node: TrieNodeId) -> Option<TrieNodeId> {
        let p = self.nodes[node.index()].parent;
        (p != u32::MAX).then_some(TrieNodeId(p))
    }

    /// The edge from the parent, or `None` for the root.
    pub fn edge(&self, node: TrieNodeId) -> Option<EdgeKey> {
        (node != TrieNodeId::ROOT).then(|| EdgeKey::from_raw(self.nodes[node.index()].edge))
    }

    /// Walks `tokens` from the root; returns the deepest node and tokens
    /// consumed. Carries each step's embedded target window forward, so
    /// the whole walk reads only the `children` array — `child_start` is
    /// consulted once, for the root.
    pub fn walk(&self, tokens: &[PathToken]) -> (TrieNodeId, usize) {
        let mut node = TrieNodeId::ROOT;
        let mut start = self.child_start[0] as usize;
        let mut len = (self.child_start[1] - self.child_start[0]) as usize;
        for (i, token) in tokens.iter().enumerate() {
            match search(&self.children[start..start + len], token.edge().raw()) {
                Some(entry) => {
                    node = TrieNodeId(entry.target);
                    start = entry.target_start as usize;
                    len = entry.target_len as usize;
                }
                None => return (node, i),
            }
        }
        (node, tokens.len())
    }

    /// Node for exactly `tokens`, if present.
    pub fn find(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        let (node, consumed) = self.walk(tokens);
        (consumed == tokens.len()).then_some(node)
    }

    /// Reconstructs the token sequence of `node` (root → node).
    pub fn tokens_of(&self, node: TrieNodeId) -> Vec<PathToken> {
        let mut depth = 0usize;
        let mut cursor = node;
        while let Some(parent) = self.parent(cursor) {
            depth += 1;
            cursor = parent;
        }
        let mut out = Vec::with_capacity(depth);
        let mut cursor = node;
        while let Some(edge) = self.edge(cursor) {
            out.push(match edge.as_element() {
                Some(sym) => PathToken::Element(sym),
                None => PathToken::Char(edge.as_char().expect("edge is element or char")),
            });
            cursor = self.parent(cursor).expect("non-root has parent");
        }
        out.reverse();
        out
    }

    /// Iterates all node ids (including the root).
    pub fn node_ids(&self) -> impl Iterator<Item = TrieNodeId> {
        (0..self.nodes.len() as u32).map(TrieNodeId)
    }

    /// Exports the node table for serialization (root included, id order).
    pub fn export_nodes(&self) -> Vec<ExportedNode> {
        let mut out = Vec::with_capacity(self.nodes.len());
        out.extend(self.nodes.iter().map(|n| ExportedNode {
            parent: n.parent,
            edge: n.edge,
            path_count: n.path_count,
            presence: n.presence,
            occurrence: n.occurrence,
            label_rooted: n.label_rooted,
        }));
        out
    }

    /// Rebuilds a pruned trie from exported parts (inverse of
    /// [`export_nodes`](Self::export_nodes)).
    ///
    /// # Panics
    /// Panics when the node table is empty, the first entry is not a
    /// root, or a parent reference is out of range / not smaller than the
    /// child id (nodes must arrive in an order where parents precede
    /// children, which [`export_nodes`](Self::export_nodes) guarantees).
    pub fn from_exported(nodes: Vec<ExportedNode>, total_paths: u32, threshold: u32) -> Self {
        assert!(!nodes.is_empty(), "empty node table");
        assert_eq!(nodes[0].parent, u32::MAX, "first entry must be the root");
        // Rebuild the CSR transition arrays: gather (parent, edge, child)
        // triples, sort them (grouped by parent, edge-sorted within), and
        // lay them out contiguously. Export order already satisfies both
        // groupings, so the sort is a no-op pass in practice.
        let mut triples: Vec<(u32, u32, u32)> = Vec::with_capacity(nodes.len().saturating_sub(1));
        for (id, node) in nodes.iter().enumerate().skip(1) {
            assert!(
                (node.parent as usize) < id,
                "parent {} of node {id} out of order",
                node.parent
            );
            triples.push((node.parent, node.edge, id as u32));
        }
        triples.sort_unstable();
        let mut child_start = Vec::with_capacity(nodes.len() + 1);
        let mut children = Vec::with_capacity(triples.len());
        for (parent, edge, id) in triples {
            while child_start.len() <= parent as usize {
                child_start.push(children.len() as u32);
            }
            children.push(ChildEntry { edge, target: id, target_start: 0, target_len: 0 });
        }
        while child_start.len() <= nodes.len() {
            child_start.push(children.len() as u32);
        }
        backfill_windows(&child_start, &mut children);
        let nodes = nodes
            .into_iter()
            .map(|n| PrunedNode {
                parent: n.parent,
                edge: n.edge,
                path_count: n.path_count,
                presence: n.presence,
                occurrence: n.occurrence,
                label_rooted: n.label_rooted,
            })
            .collect();
        PrunedTrie { nodes, child_start, children, total_paths, threshold }
    }
}

/// A serializable view of one pruned-trie node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportedNode {
    /// Parent id (`u32::MAX` for the root).
    pub parent: u32,
    /// Packed edge key from the parent.
    pub edge: u32,
    /// `pc(α)`.
    pub path_count: u32,
    /// `Cp(α)`.
    pub presence: u32,
    /// `Co(α)`.
    pub occurrence: u32,
    /// Signature-bearing flag.
    pub label_rooted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_suffix_trie, TrieConfig};
    use twig_tree::DataTree;

    fn sample_tree() -> DataTree {
        DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><year>Y1</year></book>",
            "<book><author>A1</author><year>Y1</year></book>",
            "<book><author>A2</author><year>Y2</year></book>",
            "</dblp>"
        ))
        .unwrap()
    }

    fn tokens(tree: &DataTree, labels: &[&str], value: &str) -> Vec<PathToken> {
        let mut out: Vec<PathToken> = labels
            .iter()
            .map(|l| PathToken::Element(tree.symbol(l).expect("known label")))
            .collect();
        out.extend(value.bytes().map(PathToken::Char));
        out
    }

    #[test]
    fn prune_keeps_frequent_drops_rare() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        // "book.author" appears on 3 paths; "year.Y2" on 1.
        let pruned = trie.prune(2);
        assert!(pruned.find(&tokens(&tree, &["book", "author"], "")).is_some());
        assert!(pruned.find(&tokens(&tree, &["year"], "Y2")).is_none());
        assert!(pruned.find(&tokens(&tree, &["year"], "Y1")).is_some());
    }

    #[test]
    fn prune_preserves_counts() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(2);
        let ba_full = trie.find(&tokens(&tree, &["book", "author"], "")).unwrap();
        let ba_pruned = pruned.find(&tokens(&tree, &["book", "author"], "")).unwrap();
        assert_eq!(trie.presence(ba_full), pruned.presence(ba_pruned));
        assert_eq!(trie.occurrence(ba_full), pruned.occurrence(ba_pruned));
        assert_eq!(trie.path_count(ba_full), pruned.path_count(ba_pruned));
    }

    #[test]
    fn prune_preserves_prefix_and_suffix_closure() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        for threshold in 1..=6 {
            let pruned = trie.prune(threshold);
            for node in pruned.node_ids().skip(1) {
                let toks = pruned.tokens_of(node);
                // prefix closure: parent exists by construction; check
                // suffix closure: dropping the first token stays in trie.
                if toks.len() > 1 {
                    assert!(
                        pruned.find(&toks[1..]).is_some(),
                        "suffix of kept subpath missing at threshold {threshold}"
                    );
                }
            }
        }
    }

    #[test]
    fn prune_threshold_one_keeps_everything() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(1);
        assert_eq!(pruned.node_count(), trie.node_count());
    }

    #[test]
    fn prune_huge_threshold_keeps_only_root() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(u32::MAX);
        assert_eq!(pruned.node_count(), 1);
        assert!(pruned.find(&tokens(&tree, &["book"], "")).is_none());
    }

    #[test]
    fn budget_pruning_monotone_in_budget() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let cost = |_: NodeCostInfo| 10usize;
        let small = trie.prune_to_budget(50, cost);
        let large = trie.prune_to_budget(5_000, cost);
        assert!(small.node_count() <= large.node_count());
        // Budget is respected.
        assert!((small.node_count() - 1) * 10 <= 50);
    }

    #[test]
    fn budget_pruning_prefers_frequent_nodes() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        // Enough for a handful of nodes: the most frequent subpaths
        // ("dblp", "book", "dblp.book", ... with pc=6) must win.
        let pruned = trie.prune_to_budget(200, |_| 10);
        if pruned.node_count() > 1 {
            for node in pruned.node_ids().skip(1) {
                assert!(pruned.path_count(node) >= 3);
            }
        }
    }

    #[test]
    fn zero_budget_gives_root_only() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune_to_budget(0, |_| 10);
        assert_eq!(pruned.node_count(), 1);
    }

    #[test]
    fn from_exported_roundtrips_root_only_trie() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(u32::MAX);
        assert_eq!(pruned.node_count(), 1);
        let rebuilt = PrunedTrie::from_exported(
            pruned.export_nodes(),
            pruned.total_paths(),
            pruned.threshold(),
        );
        assert_eq!(rebuilt.node_count(), 1);
        assert_eq!(rebuilt.total_paths(), pruned.total_paths());
        assert_eq!(rebuilt.find(&[]), Some(TrieNodeId::ROOT));
        assert!(rebuilt.find(&tokens(&tree, &["book"], "")).is_none());
        assert!(rebuilt.parent(TrieNodeId::ROOT).is_none());
        assert!(rebuilt.tokens_of(TrieNodeId::ROOT).is_empty());
    }

    #[test]
    fn from_exported_matches_original_child_transitions() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        for threshold in [1, 2, 3] {
            let pruned = trie.prune(threshold);
            let rebuilt = PrunedTrie::from_exported(
                pruned.export_nodes(),
                pruned.total_paths(),
                pruned.threshold(),
            );
            assert_eq!(rebuilt.node_count(), pruned.node_count());
            for node in pruned.node_ids() {
                let toks = pruned.tokens_of(node);
                assert_eq!(rebuilt.find(&toks), Some(node));
                assert_eq!(rebuilt.tokens_of(node), toks);
            }
        }
    }

    #[test]
    fn tokens_of_roundtrip() {
        let tree = sample_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let pruned = trie.prune(1);
        for node in pruned.node_ids() {
            let toks = pruned.tokens_of(node);
            assert_eq!(pruned.find(&toks), Some(node));
        }
    }
}
