//! Path suffix trie construction, counting and pruning (Sec. 3.1).
//!
//! The CST summary is built from the set of all root-to-leaf *paths* of the
//! data tree: sequences of element labels optionally ending in a leaf text
//! value. Following the paper, non-leaf labels are atomic tokens while leaf
//! values decompose into characters, so the trie contains three subpath
//! shapes (the paper's `dblp.book.author.Suciu` example):
//!
//! 1. label-only subpaths (`book.author`),
//! 2. label subpaths extended by a *prefix* of a leaf value (`author.Su`),
//! 3. pure string fragments — any substring of a leaf value (`uciu`).
//!
//! Forms like `author.uciu` (label followed by a mid-string fragment)
//! deliberately do **not** occur, exactly as in the paper.
//!
//! Each trie node carries three counts:
//!
//! - `pc(α)` — *path appearance count*: number of root-to-leaf paths
//!   containing α as a subpath. Pruning thresholds this count (pruning on
//!   rooting-node counts would throw away the root, see the paper's fn. 5).
//! - `Cp(α)` — *presence count*: number of distinct data nodes at which α
//!   is rooted (for pure string fragments: distinct `(leaf, offset)`
//!   start positions).
//! - `Co(α)` — *occurrence count*: number of distinct downward instances
//!   of α (deduplicated by the instance's end node).
//!
//! All three are exact under the documented precondition that no
//! root-to-leaf path matches the same subpath starting at two distinct
//! nodes (in particular whenever no label repeats along a vertical chain —
//! true of DBLP, SWISS-PROT and the synthetic corpora). For pathological
//! periodic trees the counts degrade gracefully to slight overcounts; see
//! the count tests and property tests.
//!
//! [`SuffixTrie::prune`] thresholds on `pc`, preserving the monotonicity
//! property the estimators rely on (every sub-subpath of a kept subpath is
//! kept); [`SuffixTrie::prune_to_budget`] searches the threshold under a
//! caller-supplied per-node cost model so the summary lands within a byte
//! budget.

pub mod builder;
pub mod pruned;
pub mod trie;

pub use builder::{build_suffix_trie, TrieConfig};
pub use pruned::{ExportedNode, NodeCostInfo, PrunedTrie};
pub use trie::{EdgeKey, PathToken, SuffixTrie, TrieNodeId};
