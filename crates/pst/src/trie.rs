//! The mutable suffix trie: node arena, edges and counts.

use twig_util::{FxHashMap, Symbol};

/// Index of a node in a [`SuffixTrie`] (or a `PrunedTrie`). The root —
/// the empty subpath — is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrieNodeId(pub u32);

impl TrieNodeId {
    /// The root node (empty subpath).
    pub const ROOT: TrieNodeId = TrieNodeId(0);

    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A trie edge label packed into 32 bits: element symbols and value
/// characters share one key space (`symbol << 1` vs `char << 1 | 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeKey(u32);

impl EdgeKey {
    /// Edge for an element label.
    #[inline]
    pub fn element(sym: Symbol) -> Self {
        debug_assert!(sym.0 < (1 << 30), "symbol space exhausted");
        EdgeKey(sym.0 << 1)
    }

    /// Edge for one byte of a leaf value.
    #[inline]
    pub fn ch(byte: u8) -> Self {
        EdgeKey((u32::from(byte) << 1) | 1)
    }

    /// True when this edge carries an element label.
    #[inline]
    pub fn is_element(self) -> bool {
        self.0 & 1 == 0
    }

    /// The element symbol, if this is an element edge.
    pub fn as_element(self) -> Option<Symbol> {
        self.is_element().then_some(Symbol(self.0 >> 1))
    }

    /// The value byte, if this is a character edge.
    pub fn as_char(self) -> Option<u8> {
        (!self.is_element()).then_some((self.0 >> 1) as u8)
    }

    /// Raw packed value (for the global child map and the on-disk flat
    /// format — the packing `sym << 1 | is_char` is a stable, persisted
    /// encoding, not an implementation detail).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds an `EdgeKey` from a value produced by [`EdgeKey::raw`].
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        EdgeKey(raw)
    }

    /// Decodes the raw value into the token it transports.
    #[inline]
    pub fn token(self) -> PathToken {
        match self.as_element() {
            Some(sym) => PathToken::Element(sym),
            None => PathToken::Char((self.0 >> 1) as u8),
        }
    }
}

/// One token of a parsed query path, mirroring the two edge kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathToken {
    /// An element label.
    Element(Symbol),
    /// One byte of a leaf value.
    Char(u8),
}

impl PathToken {
    /// The trie edge this token follows.
    #[inline]
    pub fn edge(self) -> EdgeKey {
        match self {
            PathToken::Element(sym) => EdgeKey::element(sym),
            PathToken::Char(byte) => EdgeKey::ch(byte),
        }
    }
}

/// Per-node payload of the full (unpruned) trie.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeData {
    pub parent: u32,
    pub edge: u32,
    /// pc(α): # root-to-leaf paths containing α.
    pub path_count: u32,
    /// Cp(α): # distinct rooting nodes / start positions.
    pub presence: u32,
    /// Co(α): # distinct instances.
    pub occurrence: u32,
    /// Dedup stamps (only live during construction).
    pub last_path: u32,
    pub last_start: u64,
    pub last_end: u64,
    /// True when the first edge on the subpath is an element label.
    pub label_rooted: bool,
}

/// The full path suffix trie with exact counts, before pruning.
///
/// Children are kept in one global `(node, edge) → child` hash map rather
/// than per-node maps: the full trie can reach millions of nodes and
/// per-node allocations dominate otherwise.
#[derive(Debug)]
pub struct SuffixTrie {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) children: FxHashMap<(u32, u32), u32>,
    pub(crate) total_paths: u32,
}

impl SuffixTrie {
    pub(crate) fn new() -> Self {
        let nodes = vec![NodeData { parent: u32::MAX, edge: u32::MAX, ..NodeData::default() }];
        Self { nodes, children: FxHashMap::default(), total_paths: 0 }
    }

    /// Total number of trie nodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of root-to-leaf paths the trie was built from.
    pub fn total_paths(&self) -> u32 {
        self.total_paths
    }

    /// Child of `node` along `edge`, if present.
    #[inline]
    pub fn child(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId> {
        self.children.get(&(node.0, edge.raw())).map(|&c| TrieNodeId(c))
    }

    pub(crate) fn child_or_insert(&mut self, node: TrieNodeId, edge: EdgeKey) -> TrieNodeId {
        if let Some(&c) = self.children.get(&(node.0, edge.raw())) {
            return TrieNodeId(c);
        }
        let id = u32::try_from(self.nodes.len()).expect("trie too large");
        let label_rooted = if node == TrieNodeId::ROOT {
            edge.is_element()
        } else {
            self.nodes[node.index()].label_rooted
        };
        self.nodes.push(NodeData {
            parent: node.0,
            edge: edge.raw(),
            last_path: u32::MAX,
            last_start: u64::MAX,
            last_end: u64::MAX,
            label_rooted,
            ..NodeData::default()
        });
        self.children.insert((node.0, edge.raw()), id);
        TrieNodeId(id)
    }

    /// `pc(α)` for the subpath at `node`.
    pub fn path_count(&self, node: TrieNodeId) -> u32 {
        self.nodes[node.index()].path_count
    }

    /// `Cp(α)` for the subpath at `node`.
    pub fn presence(&self, node: TrieNodeId) -> u32 {
        self.nodes[node.index()].presence
    }

    /// `Co(α)` for the subpath at `node`.
    pub fn occurrence(&self, node: TrieNodeId) -> u32 {
        self.nodes[node.index()].occurrence
    }

    /// True when the subpath at `node` begins with an element label (the
    /// nodes that carry set-hash signatures in the CST).
    pub fn label_rooted(&self, node: TrieNodeId) -> bool {
        self.nodes[node.index()].label_rooted
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: TrieNodeId) -> Option<TrieNodeId> {
        let p = self.nodes[node.index()].parent;
        (p != u32::MAX).then_some(TrieNodeId(p))
    }

    /// The edge from `node`'s parent to `node`, or `None` for the root.
    pub fn edge(&self, node: TrieNodeId) -> Option<EdgeKey> {
        (node != TrieNodeId::ROOT).then(|| EdgeKey(self.nodes[node.index()].edge))
    }

    /// Walks token sequence `tokens` from the root, returning the deepest
    /// node reached and how many tokens were consumed.
    pub fn walk(&self, tokens: &[PathToken]) -> (TrieNodeId, usize) {
        let mut node = TrieNodeId::ROOT;
        for (i, token) in tokens.iter().enumerate() {
            match self.child(node, token.edge()) {
                Some(next) => node = next,
                None => return (node, i),
            }
        }
        (node, tokens.len())
    }

    /// Finds the node for exactly `tokens`, if the full sequence exists.
    pub fn find(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        let (node, consumed) = self.walk(tokens);
        (consumed == tokens.len()).then_some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_roundtrip() {
        let sym = Symbol(1234);
        let e = EdgeKey::element(sym);
        assert!(e.is_element());
        assert_eq!(e.as_element(), Some(sym));
        assert_eq!(e.as_char(), None);

        let c = EdgeKey::ch(b'x');
        assert!(!c.is_element());
        assert_eq!(c.as_char(), Some(b'x'));
        assert_eq!(c.as_element(), None);
    }

    #[test]
    fn element_and_char_keys_disjoint() {
        // symbol 0 and byte 0 must not collide
        assert_ne!(EdgeKey::element(Symbol(0)), EdgeKey::ch(0));
        assert_ne!(EdgeKey::element(Symbol(b'a' as u32)), EdgeKey::ch(b'a'));
    }

    #[test]
    fn child_or_insert_is_idempotent() {
        let mut trie = SuffixTrie::new();
        let a = trie.child_or_insert(TrieNodeId::ROOT, EdgeKey::element(Symbol(0)));
        let a2 = trie.child_or_insert(TrieNodeId::ROOT, EdgeKey::element(Symbol(0)));
        assert_eq!(a, a2);
        assert_eq!(trie.node_count(), 2);
    }

    #[test]
    fn label_rooted_propagates() {
        let mut trie = SuffixTrie::new();
        let a = trie.child_or_insert(TrieNodeId::ROOT, EdgeKey::element(Symbol(0)));
        let a_s = trie.child_or_insert(a, EdgeKey::ch(b'S'));
        assert!(trie.label_rooted(a));
        assert!(trie.label_rooted(a_s), "value extension of a label path is label-rooted");
        let s = trie.child_or_insert(TrieNodeId::ROOT, EdgeKey::ch(b'S'));
        assert!(!trie.label_rooted(s), "pure string fragment is not label-rooted");
    }

    #[test]
    fn walk_stops_at_mismatch() {
        let mut trie = SuffixTrie::new();
        let a = trie.child_or_insert(TrieNodeId::ROOT, EdgeKey::element(Symbol(0)));
        let _b = trie.child_or_insert(a, EdgeKey::element(Symbol(1)));
        let tokens = [
            PathToken::Element(Symbol(0)),
            PathToken::Element(Symbol(1)),
            PathToken::Element(Symbol(2)),
        ];
        let (node, consumed) = trie.walk(&tokens);
        assert_eq!(consumed, 2);
        assert_eq!(trie.parent(node), Some(a));
        assert!(trie.find(&tokens).is_none());
        assert!(trie.find(&tokens[..2]).is_some());
    }
}
