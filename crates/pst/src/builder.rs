//! Single-pass suffix trie construction with exact counts.

use twig_tree::{DataTree, NodeId};

use crate::trie::{EdgeKey, SuffixTrie, TrieNodeId};
use crate::PrunedTrie;

/// Construction caps.
///
/// The full path suffix tree of an `n`-node document is quadratic in path
/// length; the estimators never need subpaths longer than a query path, so
/// bounding subpath depth keeps construction linear in practice without
/// changing any experiment (query paths in the paper's workloads have ≤ 4
/// internal nodes and ≤ 4 value characters).
#[derive(Debug, Clone)]
pub struct TrieConfig {
    /// Maximum number of element labels in a subpath.
    pub max_label_depth: usize,
    /// Maximum leaf-value prefix length appended after the labels.
    pub max_value_prefix: usize,
    /// Maximum length of pure string fragments.
    pub max_string_suffix: usize,
}

impl Default for TrieConfig {
    fn default() -> Self {
        Self { max_label_depth: 8, max_value_prefix: 8, max_string_suffix: 12 }
    }
}

impl TrieConfig {
    fn validate(&self) {
        assert!(self.max_label_depth >= 1, "max_label_depth must be >= 1");
    }
}

/// Tag bit distinguishing `(leaf, offset)` string starts from element-node
/// starts in the presence dedup stamp.
const STRING_START_TAG: u64 = 1 << 63;

#[inline]
fn string_start_id(leaf: NodeId, offset: usize) -> u64 {
    STRING_START_TAG | (u64::from(leaf.0) << 24) | (offset as u64 & 0xff_ffff)
}

/// Builds the full path suffix trie for `tree` (Sec. 3.1).
///
/// Counts are exact under the precondition documented at the crate root
/// (no subpath matches a single root-to-leaf path at two distinct starts).
pub fn build_suffix_trie(tree: &DataTree, config: &TrieConfig) -> SuffixTrie {
    config.validate();
    let mut trie = SuffixTrie::new();
    let mut path_id: u32 = 0;

    tree.for_each_root_to_leaf_path(|path| {
        insert_path(&mut trie, tree, path, path_id, config);
        path_id += 1;
    });
    trie.total_paths = path_id;
    trie
}

fn insert_path(
    trie: &mut SuffixTrie,
    tree: &DataTree,
    path: &[NodeId],
    path_id: u32,
    config: &TrieConfig,
) {
    // Split into the element chain and the optional trailing text leaf.
    let (elements, value): (&[NodeId], Option<(NodeId, &str)>) = match path.split_last() {
        Some((&last, init)) if tree.text(last).is_some() => {
            (init, Some((last, tree.text(last).expect("checked"))))
        }
        _ => (path, None),
    };

    // Label-start suffixes: every start position i in the element chain.
    for i in 0..elements.len() {
        let start = u64::from(elements[i].0);
        let mut node = TrieNodeId::ROOT;
        let depth_end = (i + config.max_label_depth).min(elements.len());
        for (j, &element) in elements.iter().enumerate().take(depth_end).skip(i) {
            let sym = tree.element_symbol(element).expect("element chain");
            node = trie.child_or_insert(node, EdgeKey::element(sym));
            stamp(trie, node, path_id, start, u64::from(elements[j].0));
        }
        // Value-prefix extension, only when the chain from i reached the
        // last element (otherwise the subpath is not contiguous).
        if depth_end == elements.len() {
            if let Some((leaf, text)) = value {
                let end = u64::from(leaf.0);
                for &byte in text.as_bytes().iter().take(config.max_value_prefix) {
                    node = trie.child_or_insert(node, EdgeKey::ch(byte));
                    stamp(trie, node, path_id, start, end);
                }
            }
        }
    }

    // Pure string fragments: suffixes starting inside the value.
    if let Some((leaf, text)) = value {
        let bytes = text.as_bytes();
        for offset in 0..bytes.len() {
            let id = string_start_id(leaf, offset);
            let mut node = TrieNodeId::ROOT;
            for &byte in bytes[offset..].iter().take(config.max_string_suffix) {
                node = trie.child_or_insert(node, EdgeKey::ch(byte));
                stamp(trie, node, path_id, id, id);
            }
        }
    }
}

#[inline]
fn stamp(trie: &mut SuffixTrie, node: TrieNodeId, path_id: u32, start: u64, end: u64) {
    let data = &mut trie.nodes[node.index()];
    if data.last_path != path_id {
        data.path_count += 1;
        data.last_path = path_id;
    }
    if data.last_start != start {
        data.presence += 1;
        data.last_start = start;
    }
    if data.last_end != end {
        data.occurrence += 1;
        data.last_end = end;
    }
}

/// Re-walks the data tree against a pruned trie, invoking `visit` for every
/// `(start node, label-rooted CST node)` pair — the pass that builds the
/// set-hash signatures (the set `S_α` of Sec. 3.4 is exactly the start
/// nodes passed for trie node α; duplicates are harmless because min-hash
/// insertion is idempotent).
pub fn for_each_rooted_subpath<F: FnMut(NodeId, TrieNodeId)>(
    tree: &DataTree,
    pruned: &PrunedTrie,
    config: &TrieConfig,
    visit: F,
) {
    for_each_rooted_subpath_sharded(tree, pruned, config, 0, 1, visit);
}

/// Sharded variant of [`for_each_rooted_subpath`]: processes only the
/// root-to-leaf paths of top-level-subtree shard `shard` of `of`. The
/// shards partition the visits up to duplicates of root-started subpaths
/// (each shard re-walks them for its own paths) — harmless for the
/// min-hash insertions this feeds, which are idempotent.
pub fn for_each_rooted_subpath_sharded<F: FnMut(NodeId, TrieNodeId)>(
    tree: &DataTree,
    pruned: &PrunedTrie,
    config: &TrieConfig,
    shard: usize,
    of: usize,
    mut visit: F,
) {
    tree.for_each_root_to_leaf_path_sharded(shard, of, |path| {
        let (elements, value): (&[NodeId], Option<&str>) = match path.split_last() {
            Some((&last, init)) if tree.text(last).is_some() => (init, tree.text(last)),
            _ => (path, None),
        };
        for i in 0..elements.len() {
            let start = elements[i];
            let mut node = TrieNodeId::ROOT;
            let depth_end = (i + config.max_label_depth).min(elements.len());
            let mut complete = true;
            for &element in &elements[i..depth_end] {
                let sym = tree.element_symbol(element).expect("element chain");
                match pruned.child(node, EdgeKey::element(sym)) {
                    Some(next) => {
                        node = next;
                        visit(start, next);
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete && depth_end == elements.len() {
                if let Some(text) = value {
                    for &byte in text.as_bytes().iter().take(config.max_value_prefix) {
                        match pruned.child(node, EdgeKey::ch(byte)) {
                            Some(next) => {
                                node = next;
                                visit(start, next);
                            }
                            None => break,
                        }
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::PathToken;
    use twig_tree::DataTree;

    fn tokens(tree: &DataTree, labels: &[&str], value: &str) -> Vec<PathToken> {
        let mut out: Vec<PathToken> = labels
            .iter()
            .map(|l| PathToken::Element(tree.symbol(l).expect("known label")))
            .collect();
        out.extend(value.bytes().map(PathToken::Char));
        out
    }

    fn figure1_tree() -> DataTree {
        DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><title>T2</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><author>A3</author><title>T3</title><year>Y2</year></book>",
            "</dblp>"
        ))
        .unwrap()
    }

    #[test]
    fn presence_vs_occurrence_on_multiset_siblings() {
        let tree = figure1_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        // book.author: 3 books root it (presence), 6 author instances.
        let ba = trie.find(&tokens(&tree, &["book", "author"], "")).unwrap();
        assert_eq!(trie.presence(ba), 3);
        assert_eq!(trie.occurrence(ba), 6);
        // author alone: presence = occurrence = 6.
        let a = trie.find(&tokens(&tree, &["author"], "")).unwrap();
        assert_eq!(trie.presence(a), 6);
        assert_eq!(trie.occurrence(a), 6);
    }

    #[test]
    fn path_counts_count_paths_not_instances() {
        let tree = figure1_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        // Every one of the 12 root-to-leaf paths passes through dblp.book.
        let db = trie.find(&tokens(&tree, &["dblp", "book"], "")).unwrap();
        assert_eq!(trie.path_count(db), 12);
        assert_eq!(trie.presence(db), 1, "only the dblp node roots dblp.book");
        assert_eq!(trie.occurrence(db), 3);
        assert_eq!(trie.total_paths(), 12);
    }

    #[test]
    fn value_prefixes_present_with_counts() {
        let tree = figure1_tree();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let ba_a1 = trie.find(&tokens(&tree, &["book", "author"], "A1")).unwrap();
        assert_eq!(trie.presence(ba_a1), 3, "all three books have an A1 author");
        assert_eq!(trie.occurrence(ba_a1), 3);
        let y_y1 = trie.find(&tokens(&tree, &["year"], "Y1")).unwrap();
        assert_eq!(trie.presence(y_y1), 2);
    }

    #[test]
    fn pure_string_fragments_present() {
        let tree = DataTree::from_xml("<r><a>Suciu</a><a>Sudarshan</a></r>").unwrap();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        // "Su" occurs at the start of both values.
        let su = trie.find(&[PathToken::Char(b'S'), PathToken::Char(b'u')]).unwrap();
        assert_eq!(trie.presence(su), 2);
        assert!(!trie.label_rooted(su));
        // "u" occurs at offsets 1,3 of Suciu and 1 of Sudarshan.
        let u = trie.find(&[PathToken::Char(b'u')]).unwrap();
        assert_eq!(trie.presence(u), 3);
        // mid-string fragment: "uciu"
        let uciu: Vec<PathToken> = "uciu".bytes().map(PathToken::Char).collect();
        assert!(trie.find(&uciu).is_some());
    }

    #[test]
    fn label_then_midstring_fragment_absent() {
        // The paper's invariant: "author.uciu" must not occur.
        let tree = DataTree::from_xml("<r><author>Suciu</author></r>").unwrap();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let mut bad = tokens(&tree, &["author"], "");
        bad.extend("uciu".bytes().map(PathToken::Char));
        assert!(trie.find(&bad).is_none());
        let good = tokens(&tree, &["author"], "Suciu");
        assert!(trie.find(&good).is_some());
    }

    #[test]
    fn depth_caps_respected() {
        let tree = DataTree::from_xml("<a><b><c><d>xyz</d></c></b></a>").unwrap();
        let config = TrieConfig { max_label_depth: 2, max_value_prefix: 2, max_string_suffix: 2 };
        let trie = build_suffix_trie(&tree, &config);
        assert!(trie.find(&tokens(&tree, &["a", "b"], "")).is_some());
        assert!(trie.find(&tokens(&tree, &["a", "b", "c"], "")).is_none());
        assert!(trie.find(&tokens(&tree, &["d"], "xy")).is_some());
        assert!(trie.find(&tokens(&tree, &["d"], "xyz")).is_none());
        let xy: Vec<PathToken> = "xy".bytes().map(PathToken::Char).collect();
        assert!(trie.find(&xy).is_some());
        let xyz: Vec<PathToken> = "xyz".bytes().map(PathToken::Char).collect();
        assert!(trie.find(&xyz).is_none());
    }

    #[test]
    fn value_prefix_requires_full_chain() {
        // With max_label_depth 2 the chain a.b.c cannot be completed from
        // start `a`, so no value extension may appear under a.b.
        let tree = DataTree::from_xml("<a><b><c>zz</c></b></a>").unwrap();
        let config = TrieConfig { max_label_depth: 2, max_value_prefix: 8, max_string_suffix: 4 };
        let trie = build_suffix_trie(&tree, &config);
        let mut ab_z = tokens(&tree, &["a", "b"], "");
        ab_z.push(PathToken::Char(b'z'));
        assert!(trie.find(&ab_z).is_none());
        // From start `b` the chain b.c completes, so b.c.z exists.
        let bc_z = tokens(&tree, &["b", "c"], "z");
        assert!(trie.find(&bc_z).is_some());
    }

    #[test]
    fn childless_element_paths_counted() {
        let tree = DataTree::from_xml("<a><b/><b/><c>x</c></a>").unwrap();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        assert_eq!(trie.total_paths(), 3);
        let ab = trie.find(&tokens(&tree, &["a", "b"], "")).unwrap();
        assert_eq!(trie.presence(ab), 1);
        assert_eq!(trie.occurrence(ab), 2);
        assert_eq!(trie.path_count(ab), 2);
    }

    #[test]
    fn repeated_value_in_one_leaf_paths_deduped() {
        // "abab": fragment "ab" occurs at offsets 0 and 2 of one path.
        let tree = DataTree::from_xml("<r><v>abab</v></r>").unwrap();
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        let ab = trie.find(&[PathToken::Char(b'a'), PathToken::Char(b'b')]).unwrap();
        assert_eq!(trie.path_count(ab), 1, "one path contains it");
        assert_eq!(trie.presence(ab), 2, "two start offsets");
    }
}
