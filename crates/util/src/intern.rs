//! String interning for element labels.
//!
//! A data tree over a 50 MB XML document has millions of nodes but only a
//! handful of distinct element names. Interning maps each name to a dense
//! [`Symbol`] (`u32`) so nodes, trie edges and query nodes compare and hash
//! in one instruction.

use crate::hash::FxHashMap;

/// A dense handle to an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; two interners assign ids independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    lookup: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.lookup.insert(boxed, sym);
        sym
    }

    /// Returns the symbol for `s` without inserting, if it was interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let a = interner.intern("book");
        let b = interner.intern("book");
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_resolve() {
        let mut interner = Interner::new();
        let a = interner.intern("book");
        let b = interner.intern("author");
        let c = interner.intern("year");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(interner.resolve(b), "author");
    }

    #[test]
    fn get_does_not_insert() {
        let mut interner = Interner::new();
        assert_eq!(interner.get("book"), None);
        let sym = interner.intern("book");
        assert_eq!(interner.get("book"), Some(sym));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut interner = Interner::new();
        interner.intern("a");
        interner.intern("b");
        let collected: Vec<_> = interner.iter().map(|(s, t)| (s.0, t.to_owned())).collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
