//! Shared low-level utilities for the twig selectivity estimation workspace.
//!
//! This crate deliberately has no external dependencies. It provides:
//!
//! - [`hash`]: an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases, used everywhere hashing is hot (trie child tables, label
//!   indexes) and HashDoS resistance is irrelevant,
//! - [`intern`]: a string interner mapping element labels to dense
//!   [`Symbol`]s so tree nodes store a `u32` instead of a `String`,
//! - [`rng`]: a tiny deterministic SplitMix64 generator used to seed the
//!   min-hash function family reproducibly,
//! - [`stats`]: summary statistics used by the evaluation harness,
//! - [`metrics`]: lock-free counters and log-bucketed latency histograms
//!   for long-running services (the `twig-serve` `/metrics` endpoint),
//! - [`failpoint`]: deterministic fault injection for robustness tests —
//!   a zero-cost no-op unless the `failpoints` feature is enabled.

pub mod cast;
pub mod failpoint;
pub mod hash;
pub mod intern;
pub mod metrics;
pub mod rng;
pub mod stats;

pub use cast::{count_ratio, count_to_f64, f64_to_count_saturating, size_to_u64};
pub use hash::{fnv1a64, FxHashMap, FxHashSet, FxHasher};
pub use intern::{Interner, Symbol};
pub use rng::SplitMix64;
