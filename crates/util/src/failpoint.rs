//! Deterministic fault injection ("failpoints") for robustness testing.
//!
//! A failpoint is a named hook compiled into an I/O or dispatch path:
//!
//! ```ignore
//! if let Some(fault) = twig_util::failpoint!("serialize.write") {
//!     match fault {
//!         Fault::Error => return Err(injected_error()),
//!         Fault::Partial(keep_percent) => { /* truncate the buffer */ }
//!     }
//! }
//! ```
//!
//! In default builds the macro expands to a constant `None`, the branch
//! folds away, and the hook costs nothing — there is no registry lookup,
//! no atomic load, nothing. Only when the `failpoints` cargo feature is
//! enabled does [`hit`] exist and consult the process-global schedule
//! installed by [`configure`]/[`set`] (or the `TWIG_FAILPOINTS`
//! environment variable, read once on first hit). Every crate that hosts
//! failpoints forwards a `failpoints` feature of its own to this one, so
//! the cfg the macro expands against is the host crate's.
//!
//! Schedules are deterministic: probabilistic stages draw from a
//! per-point SplitMix64 stream seeded from the configured seed mixed
//! with an FNV-1a hash of the point name, so a given (config, seed)
//! pair replays identically no matter how other points interleave.
//!
//! Spec grammar, per point (stages separated by `,`; the first stage
//! with trigger budget left decides):
//!
//! ```text
//! spec   := stage ("," stage)*
//! stage  := [pct "%"] [cnt "*"] action
//! action := "off" | "error" | "panic" | "partial(" pct ")"
//!         | "delay(" ms ")" | "errno(" name-or-number ")"
//! ```
//!
//! `2*error` injects an error twice, then falls through to the next
//! stage; `50%error` injects with probability one half; `off` never
//! fires and makes a useful terminal stage. `partial(p)` asks the call
//! site to complete only `p` percent of the I/O (a torn read or write);
//! `delay(ms)` sleeps inside [`hit`]; `panic` panics the current thread
//! via `std::panic::panic_any` with a [`PointPanic`] payload — the
//! deliberate, typed escape hatch for worker-containment tests (the
//! lint-banned `panic!` family is never used, so twig-lint and
//! twig-flow stay clean by construction). `errno(EINTR)` (or
//! `errno(4)`) asks the call site to fail exactly as the underlying
//! syscall would with that errno — the syscall-shim points in the serve
//! reactor (`sys.accept`, `sys.read`, …) turn it into
//! `io::Error::from_raw_os_error`, so retry loops, fd-exhaustion
//! handling, and errno taxonomies are exercised on the real paths.
//! Recognized names: `EINTR`, `EAGAIN`, `ENOMEM`, `ENFILE`, `EMFILE`,
//! `EPIPE`, `ECONNABORTED`, `ECONNRESET` (Linux asm-generic values).

use std::fmt;

/// A fault the call site must apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with the site's injected-error value.
    Error,
    /// Complete only this percentage (0..=100) of the I/O, then fail as
    /// the underlying stream would (short read, torn write).
    Partial(u32),
    /// Fail the operation as the underlying syscall would with this raw
    /// OS errno (e.g. 4 = `EINTR`, 24 = `EMFILE`). Call sites should map
    /// it through `io::Error::from_raw_os_error` so kind-based retry and
    /// errno taxonomies see exactly what the kernel would produce.
    Errno(i32),
}

/// Panic payload used by `panic` stages, so `catch_unwind` sites and
/// chaos assertions can recognize an injected panic by downcast.
#[derive(Debug, Clone)]
pub struct PointPanic {
    /// Name of the failpoint that fired.
    pub point: String,
}

/// A malformed failpoint spec (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn bad(message: String) -> Self {
        Self { message }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(formatter, "failpoint spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// Evaluates the named failpoint: expands to `None` unless the host
/// crate's `failpoints` feature is enabled.
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {{
        #[cfg(feature = "failpoints")]
        let __twig_fault = $crate::failpoint::hit($name);
        #[cfg(not(feature = "failpoints"))]
        let __twig_fault: Option<$crate::failpoint::Fault> = None;
        __twig_fault
    }};
}

#[cfg(feature = "failpoints")]
mod enabled {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, Once, OnceLock};

    use super::{Fault, PointPanic, SpecError};
    use crate::rng::SplitMix64;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Action {
        Off,
        Error,
        Panic,
        Partial(u32),
        Delay(u64),
        Errno(i32),
    }

    #[derive(Debug, Clone)]
    struct Stage {
        /// Probability of firing, in percent (100 = always).
        percent: u32,
        /// Remaining trigger budget; `u64::MAX` means unlimited.
        remaining: u64,
        action: Action,
    }

    #[derive(Debug)]
    struct Point {
        point_name: String,
        stages: Vec<Stage>,
        rng: SplitMix64,
        triggered: u64,
    }

    /// What `hit` should do once the registry lock is released.
    enum Effect {
        Fault(Fault),
        Delay(u64),
        Panic,
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static POINTS: OnceLock<Mutex<Vec<Point>>> = OnceLock::new();
    static ENV_INIT: Once = Once::new();

    fn point_table() -> &'static Mutex<Vec<Point>> {
        POINTS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn lock_table() -> MutexGuard<'static, Vec<Point>> {
        // A panic while holding the lock (a `panic` stage never does —
        // effects apply after release) still leaves a usable table.
        match Mutex::lock(point_table()) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// FNV-1a, used to give every point an independent stream from one
    /// global seed regardless of configuration order.
    fn name_hash(point_name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in point_name.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    fn point_rng(point_name: &str) -> SplitMix64 {
        SplitMix64::new(AtomicU64::load(&SEED, Ordering::Relaxed) ^ name_hash(point_name))
    }

    /// True when fault injection is compiled in (the `failpoints`
    /// feature); the stub build returns false so harnesses can refuse
    /// to run silently as no-ops.
    #[must_use]
    pub fn is_compiled() -> bool {
        true
    }

    /// Evaluates the named failpoint against the installed schedule.
    /// Returns a [`Fault`] for the call site to apply; sleeps here for
    /// `delay` stages; panics the current thread for `panic` stages.
    pub fn hit(point_name: &str) -> Option<Fault> {
        ENV_INIT.call_once(init_from_env);
        // Acquire pairs with the Release stores in `set`/`clear_all`:
        // observing `true` here must also observe the point-table writes
        // that preceded the flip (twig-race: race-atomic-publish).
        if !AtomicBool::load(&ACTIVE, Ordering::Acquire) {
            return None;
        }
        let effect = lookup_effect(point_name)?;
        match effect {
            Effect::Fault(fault) => Some(fault),
            Effect::Delay(millis) => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                None
            }
            Effect::Panic => {
                // Deliberate, typed panic for containment tests; applied
                // outside the registry lock.
                std::panic::panic_any(PointPanic { point: point_name.to_owned() })
            }
        }
    }

    fn lookup_effect(point_name: &str) -> Option<Effect> {
        let mut table = lock_table();
        for point in &mut *table {
            if point.point_name == point_name {
                return fire(point);
            }
        }
        None
    }

    fn fire(point: &mut Point) -> Option<Effect> {
        for stage in &mut point.stages {
            if stage.remaining == 0 {
                continue;
            }
            if stage.percent < 100 && point.rng.next_below(100) >= u64::from(stage.percent) {
                return None;
            }
            if stage.remaining != u64::MAX {
                stage.remaining -= 1;
            }
            return match stage.action {
                Action::Off => None,
                Action::Error => {
                    point.triggered += 1;
                    Some(Effect::Fault(Fault::Error))
                }
                Action::Partial(keep) => {
                    point.triggered += 1;
                    Some(Effect::Fault(Fault::Partial(keep)))
                }
                Action::Errno(code) => {
                    point.triggered += 1;
                    Some(Effect::Fault(Fault::Errno(code)))
                }
                Action::Delay(millis) => {
                    point.triggered += 1;
                    Some(Effect::Delay(millis))
                }
                Action::Panic => {
                    point.triggered += 1;
                    Some(Effect::Panic)
                }
            };
        }
        None
    }

    /// Sets the global seed for per-point probability streams. Existing
    /// points are re-seeded so `configure` + `set_seed` in either order
    /// agree.
    pub fn set_seed(seed: u64) {
        AtomicU64::store(&SEED, seed, Ordering::Relaxed);
        let mut table = lock_table();
        for point in &mut *table {
            point.rng = SplitMix64::new(seed ^ name_hash(&point.point_name));
        }
    }

    /// Installs (or replaces) the schedule for one point.
    pub fn set(point_name: &str, spec: &str) -> Result<(), SpecError> {
        let stages = parse_stages(spec)?;
        let mut table = lock_table();
        let mut found = false;
        for point in &mut *table {
            if point.point_name == point_name {
                point.stages = stages.clone();
                point.rng = point_rng(point_name);
                point.triggered = 0;
                found = true;
            }
        }
        if !found {
            table.push(Point {
                point_name: point_name.to_owned(),
                stages,
                rng: point_rng(point_name),
                triggered: 0,
            });
        }
        // Release publishes the table mutations above to `hit`'s
        // Acquire fast-path load.
        AtomicBool::store(&ACTIVE, true, Ordering::Release);
        Ok(())
    }

    /// Installs a full schedule: `point=spec;point=spec`, with the given
    /// probability seed. Clears any previous schedule first.
    pub fn configure(config: &str, seed: u64) -> Result<(), SpecError> {
        clear_all();
        AtomicU64::store(&SEED, seed, Ordering::Relaxed);
        for entry in split_on_byte(config, b';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            match byte_position(entry, b'=') {
                Some(pos) => {
                    let (point_name, tail) = str::split_at(entry, pos);
                    let (_, spec) = str::split_at(tail, 1);
                    set(point_name.trim(), spec.trim())?;
                }
                None => {
                    return Err(SpecError::bad(format!("missing `=` in `{entry}`")));
                }
            }
        }
        Ok(())
    }

    /// Removes every failpoint schedule and deactivates the fast path.
    pub fn clear_all() {
        let mut table = lock_table();
        Vec::clear(&mut table);
        // Release keeps the flag's store side uniformly ordered with
        // `set` (the paired `hit` load is Acquire).
        AtomicBool::store(&ACTIVE, false, Ordering::Release);
    }

    /// How many times the named point has actually fired (injected a
    /// fault, delayed, or panicked) since it was installed.
    #[must_use]
    pub fn trigger_count(point_name: &str) -> u64 {
        let table = lock_table();
        for point in &*table {
            if point.point_name == point_name {
                return point.triggered;
            }
        }
        0
    }

    fn init_from_env() {
        let seed = match std::env::var("TWIG_FAILPOINTS_SEED") {
            Ok(text) => parse_u64_digits(&text).unwrap_or(0),
            Err(_) => 0,
        };
        if let Ok(config) = std::env::var("TWIG_FAILPOINTS") {
            // A bad env schedule is a harness bug; surfaced on stderr
            // rather than panicking inside arbitrary I/O paths.
            if let Err(error) = configure(&config, seed) {
                eprintln!("TWIG_FAILPOINTS ignored: {error}");
            }
        }
    }

    // ---- spec parsing ------------------------------------------------
    //
    // Hand-rolled and slice-free on purpose: no `[` indexing, no
    // `.unwrap()`, and collision-prone std method names (`.parse(`,
    // `.find(`, `.load(`…) are avoided or written as qualified calls so
    // twig-flow's suffix resolver cannot confuse them with panicking
    // workspace methods. This module must stay flow-clean with a zero
    // baseline.

    fn byte_position(text: &str, needle: u8) -> Option<usize> {
        for (pos, &byte) in text.as_bytes().iter().enumerate() {
            if byte == needle {
                return Some(pos);
            }
        }
        None
    }

    fn split_on_byte(text: &str, sep: u8) -> Vec<&str> {
        let mut parts = Vec::new();
        let mut rest = text;
        while let Some(pos) = byte_position(rest, sep) {
            let (head, tail) = str::split_at(rest, pos);
            parts.push(head);
            let (_, after) = str::split_at(tail, 1);
            rest = after;
        }
        parts.push(rest);
        parts
    }

    fn parse_u64_digits(text: &str) -> Result<u64, SpecError> {
        let digits = text.trim();
        if digits.is_empty() {
            return Err(SpecError::bad("expected a number".to_owned()));
        }
        let mut value: u64 = 0;
        for &byte in digits.as_bytes() {
            if !byte.is_ascii_digit() {
                return Err(SpecError::bad(format!("bad number `{digits}`")));
            }
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(byte - b'0')))
                .ok_or_else(|| SpecError::bad(format!("number `{digits}` overflows u64")))?;
        }
        Ok(value)
    }

    fn parse_percent(text: &str) -> Result<u32, SpecError> {
        let value = parse_u64_digits(text)?;
        if value > 100 {
            return Err(SpecError::bad(format!("percentage `{value}` exceeds 100")));
        }
        u32::try_from(value).map_err(|_| SpecError::bad("percentage out of range".to_owned()))
    }

    fn parse_stages(spec: &str) -> Result<Vec<Stage>, SpecError> {
        let mut stages = Vec::new();
        for part in split_on_byte(spec, b',') {
            stages.push(parse_stage(part)?);
        }
        Ok(stages)
    }

    fn parse_stage(text: &str) -> Result<Stage, SpecError> {
        let mut rest = text.trim();
        let mut percent = 100u32;
        let mut remaining = u64::MAX;
        if let Some(pos) = byte_position(rest, b'%') {
            let (head, tail) = str::split_at(rest, pos);
            percent = parse_percent(head)?;
            let (_, after) = str::split_at(tail, 1);
            rest = after;
        }
        if let Some(pos) = byte_position(rest, b'*') {
            let (head, tail) = str::split_at(rest, pos);
            remaining = parse_u64_digits(head)?;
            let (_, after) = str::split_at(tail, 1);
            rest = after;
        }
        let action = parse_action(rest.trim())?;
        Ok(Stage { percent, remaining, action })
    }

    fn call_args<'a>(text: &'a str, head: &str) -> Option<&'a str> {
        let after = text.strip_prefix(head)?;
        let inner = after.strip_prefix('(')?;
        inner.strip_suffix(')')
    }

    fn parse_action(text: &str) -> Result<Action, SpecError> {
        match text {
            "off" => return Ok(Action::Off),
            "error" => return Ok(Action::Error),
            "panic" => return Ok(Action::Panic),
            _ => {}
        }
        if let Some(args) = call_args(text, "partial") {
            return Ok(Action::Partial(parse_percent(args)?));
        }
        if let Some(args) = call_args(text, "delay") {
            return Ok(Action::Delay(parse_u64_digits(args)?));
        }
        if let Some(args) = call_args(text, "errno") {
            return Ok(Action::Errno(parse_errno(args.trim())?));
        }
        Err(SpecError::bad(format!("unknown action `{text}`")))
    }

    /// Errno names accepted by `errno(...)`, with their Linux
    /// asm-generic values; bare numbers are also accepted.
    const ERRNO_NAMES: [(&str, i32); 8] = [
        ("EINTR", 4),
        ("EAGAIN", 11),
        ("ENOMEM", 12),
        ("ENFILE", 23),
        ("EMFILE", 24),
        ("EPIPE", 32),
        ("ECONNABORTED", 103),
        ("ECONNRESET", 104),
    ];

    fn parse_errno(text: &str) -> Result<i32, SpecError> {
        for &(errno_name, code) in &ERRNO_NAMES {
            if text.eq_ignore_ascii_case(errno_name) {
                return Ok(code);
            }
        }
        let value = parse_u64_digits(text)
            .map_err(|_| SpecError::bad(format!("unknown errno `{text}`")))?;
        if value == 0 || value > 4095 {
            return Err(SpecError::bad(format!("errno `{value}` out of range")));
        }
        i32::try_from(value).map_err(|_| SpecError::bad("errno out of range".to_owned()))
    }
}

#[cfg(feature = "failpoints")]
pub use enabled::{clear_all, configure, hit, is_compiled, set, set_seed, trigger_count};

#[cfg(not(feature = "failpoints"))]
mod disabled {
    use super::SpecError;

    /// Fault injection is not compiled into this build (the stub).
    #[must_use]
    pub fn is_compiled() -> bool {
        false
    }

    /// Rejected: this build has no fault-injection support.
    pub fn configure(_config: &str, _seed: u64) -> Result<(), SpecError> {
        Err(SpecError::bad("failpoints are not compiled into this build".to_owned()))
    }

    /// Rejected: this build has no fault-injection support.
    pub fn set(_point_name: &str, _spec: &str) -> Result<(), SpecError> {
        Err(SpecError::bad("failpoints are not compiled into this build".to_owned()))
    }

    /// No-op in the stub build.
    pub fn set_seed(_seed: u64) {}

    /// No-op in the stub build.
    pub fn clear_all() {}

    /// Always zero in the stub build.
    #[must_use]
    pub fn trigger_count(_point_name: &str) -> u64 {
        0
    }
}

#[cfg(not(feature = "failpoints"))]
pub use disabled::{clear_all, configure, is_compiled, set, set_seed, trigger_count};

#[cfg(test)]
#[cfg(feature = "failpoints")]
mod tests {
    use super::*;

    /// Tests share one process-global registry, so they serialize on a
    /// lock and always start from a clean slate.
    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = match GATE.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        clear_all();
        guard
    }

    #[test]
    fn disabled_by_default_and_after_clear() {
        let _gate = exclusive();
        assert!(is_compiled());
        assert_eq!(hit("nothing.installed"), None);
        set("x", "error").expect("spec");
        clear_all();
        assert_eq!(hit("x"), None);
    }

    #[test]
    fn counted_stages_exhaust_in_order() {
        let _gate = exclusive();
        set("io", "2*error,1*partial(50),off").expect("spec");
        assert_eq!(hit("io"), Some(Fault::Error));
        assert_eq!(hit("io"), Some(Fault::Error));
        assert_eq!(hit("io"), Some(Fault::Partial(50)));
        assert_eq!(hit("io"), None);
        assert_eq!(hit("io"), None);
        assert_eq!(trigger_count("io"), 3);
    }

    #[test]
    fn probabilistic_stage_is_seed_deterministic() {
        let _gate = exclusive();
        let mut runs = Vec::new();
        for _ in 0..2 {
            configure("p=50%error", 42).expect("spec");
            let mut pattern = Vec::new();
            for _ in 0..64 {
                pattern.push(hit("p").is_some());
            }
            runs.push(pattern);
        }
        assert_eq!(runs[0], runs[1], "same seed must replay identically");
        let fired = runs[0].iter().filter(|&&f| f).count();
        assert!(fired > 10 && fired < 54, "50% stage fired {fired}/64");
        // A different seed must (for this pair) give a different pattern.
        configure("p=50%error", 43).expect("spec");
        let mut other = Vec::new();
        for _ in 0..64 {
            other.push(hit("p").is_some());
        }
        assert_ne!(runs[0], other);
    }

    #[test]
    fn configure_parses_multiple_points_and_reports_errors() {
        let _gate = exclusive();
        configure("a=error; b=1*delay(0),off", 7).expect("spec");
        assert_eq!(hit("a"), Some(Fault::Error));
        assert_eq!(hit("b"), None, "delay returns no fault");
        assert_eq!(trigger_count("b"), 1);
        assert!(configure("broken", 0).is_err());
        assert!(configure("x=nonsense", 0).is_err());
        assert!(configure("x=partial(200)", 0).is_err());
        assert!(configure("x=150%error", 0).is_err());
        assert!(configure("x=partial(abc)", 0).is_err());
    }

    #[test]
    fn errno_stages_parse_names_and_numbers() {
        let _gate = exclusive();
        set("sys", "1*errno(EINTR),1*errno(emfile),1*errno(104),off").expect("spec");
        assert_eq!(hit("sys"), Some(Fault::Errno(4)));
        assert_eq!(hit("sys"), Some(Fault::Errno(24)));
        assert_eq!(hit("sys"), Some(Fault::Errno(104)));
        assert_eq!(hit("sys"), None);
        assert_eq!(trigger_count("sys"), 3);
        assert!(set("sys", "errno(NOTREAL)").is_err());
        assert!(set("sys", "errno(0)").is_err());
        assert!(set("sys", "errno(99999)").is_err());
    }

    #[test]
    fn panic_stage_panics_with_typed_payload() {
        let _gate = exclusive();
        set("boom", "1*panic,off").expect("spec");
        let result = std::panic::catch_unwind(|| hit("boom"));
        let payload = result.expect_err("panic stage must panic");
        let point = payload.downcast_ref::<PointPanic>().expect("typed payload");
        assert_eq!(point.point, "boom");
        assert_eq!(hit("boom"), None, "one-shot panic is exhausted");
    }

    #[test]
    fn macro_expands_in_host_crate() {
        let _gate = exclusive();
        set("macro.point", "error").expect("spec");
        assert_eq!(crate::failpoint!("macro.point"), Some(Fault::Error));
    }
}
