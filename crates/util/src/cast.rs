//! Checked conversions between the two numeric domains of the estimator
//! pipeline.
//!
//! Counts (`u64`: presence, occurrence, path counts, node totals) and
//! estimates (`f64`: probabilities, expected match counts) are different
//! domains, and bare `as` casts between them are banned by `cargo xtask
//! lint` outside this module. The helpers here make the two directions
//! explicit:
//!
//! - count → estimate is lossless for every count this system can produce
//!   (trie counts are `u32`-backed, far below 2^53), and
//! - estimate → count must decide what to do with NaN, infinities, and
//!   negative values *somewhere* — better here, once, than at every call
//!   site.

/// Converts a count into the estimate domain.
///
/// Exact for counts below 2^53 (every count in this workspace: per-node
/// counts are `u32`, totals are sums of `u32`s); rounds to nearest even
/// above that, which only distant-future corpora could reach.
#[inline]
#[must_use]
pub fn count_to_f64(count: u64) -> f64 {
    count as f64
}

/// Converts a byte size / length into the estimate domain (same numeric
/// rules as [`count_to_f64`], separate name so call sites say what the
/// number means).
#[inline]
#[must_use]
pub fn size_to_f64(size: usize) -> f64 {
    size as f64
}

/// Converts an estimate back into a count, saturating: NaN and negative
/// values become 0, values beyond `u64::MAX` become `u64::MAX`, everything
/// else truncates toward zero.
#[inline]
#[must_use]
pub fn f64_to_count_saturating(estimate: f64) -> u64 {
    if estimate.is_nan() || estimate <= 0.0 {
        0
    } else if estimate >= u64::MAX as f64 {
        u64::MAX
    } else {
        estimate as u64
    }
}

/// Converts an estimate into a byte size, saturating like
/// [`f64_to_count_saturating`] but capped at `usize::MAX`.
#[inline]
#[must_use]
pub fn f64_to_size_saturating(estimate: f64) -> usize {
    if estimate.is_nan() || estimate <= 0.0 {
        0
    } else if estimate >= usize::MAX as f64 {
        usize::MAX
    } else {
        estimate as usize
    }
}

/// Converts a byte size / length into the count domain. Lossless on
/// every supported platform (usize is at most 64 bits); saturates if a
/// future 128-bit platform ever appears, rather than truncating.
#[inline]
#[must_use]
pub fn size_to_u64(size: usize) -> u64 {
    u64::try_from(size).unwrap_or(u64::MAX)
}

/// The ratio of two counts as an estimate; 0 when the denominator is 0
/// (the convention every estimator in this workspace wants: an absent
/// denominator means an absent subpath, and absent subpaths contribute
/// nothing, not NaN).
#[inline]
#[must_use]
pub fn count_ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        count_to_f64(numerator) / count_to_f64(denominator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_roundtrips_exactly_below_2_53() {
        for count in [0u64, 1, 42, u32::MAX as u64, (1 << 53) - 1] {
            assert_eq!(f64_to_count_saturating(count_to_f64(count)), count);
        }
    }

    #[test]
    fn saturation_handles_pathological_estimates() {
        assert_eq!(f64_to_count_saturating(f64::NAN), 0);
        assert_eq!(f64_to_count_saturating(f64::NEG_INFINITY), 0);
        assert_eq!(f64_to_count_saturating(-1.5), 0);
        assert_eq!(f64_to_count_saturating(f64::INFINITY), u64::MAX);
        assert_eq!(f64_to_count_saturating(2.9), 2);
        assert_eq!(f64_to_size_saturating(f64::NAN), 0);
        assert_eq!(f64_to_size_saturating(1e300), usize::MAX);
    }

    #[test]
    fn ratio_of_zero_denominator_is_zero() {
        assert_eq!(count_ratio(5, 0), 0.0);
        assert_eq!(count_ratio(0, 5), 0.0);
        assert_eq!(count_ratio(3, 4), 0.75);
    }
}
