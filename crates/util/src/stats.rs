//! Summary statistics used by the evaluation harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics; 0.0 for an empty slice.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// `log10(x)` clamped so that tiny or zero errors do not produce `-inf` in
/// figure output. The paper plots log10(error); a floor of 1e-6 keeps the
/// axes readable without changing any comparison.
pub fn log10_floored(x: f64) -> f64 {
    x.max(1e-6).log10()
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&values, 0.0), 1.0);
        assert_eq!(quantile(&values, 1.0), 4.0);
        assert_eq!(quantile(&values, 0.5), 2.5);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&values, 0.5), 2.5);
    }

    #[test]
    fn log10_floored_clamps() {
        assert_eq!(log10_floored(0.0), -6.0);
        assert_eq!(log10_floored(100.0), 2.0);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
