//! FxHash-style hashing.
//!
//! The standard library's SipHash is collision-resistant but slow for the
//! short integer and label keys that dominate this workspace. `FxHasher`
//! reimplements the rustc/Firefox "Fx" multiply-rotate hash: low quality in
//! the cryptographic sense, excellent distribution for small keys, and
//! roughly 5x faster than SipHash on `u32`/`u64` keys.

use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`]. Drop-in replacement for
/// `std::collections::HashMap` where HashDoS is not a concern.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher (as used by rustc).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a single `u64` with the Fx mix — handy when a full `Hasher` round
/// trip is overkill.
#[inline]
pub fn hash_u64(word: u64) -> u64 {
    word.rotate_left(ROTATE).wrapping_mul(SEED64)
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64-bit hash of a byte stream — the stable checksum used by the
/// on-disk formats (snapshot footers, flat-summary section tables).
/// Unlike [`FxHasher`] it is a published, byte-order-independent
/// definition, so persisted values stay comparable across builds.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("twig"), hash_of("twig"));
    }

    #[test]
    fn different_inputs_hash_differently() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of("book"), hash_of("year"));
    }

    #[test]
    fn byte_stream_matches_regardless_of_chunking() {
        // write() must consume trailing partial words.
        let mut a = FxHasher::default();
        a.write(b"abcdefghij");
        let mut b = FxHasher::default();
        b.write(b"abcdefghij");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"abcdefghik");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_usable() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<&str> = FxHashSet::default();
        set.insert("a");
        assert!(set.contains("a"));
        assert!(!set.contains("b"));
    }

    #[test]
    fn hash_u64_spreads_small_integers() {
        // The multiply pushes entropy to the high bits (which hashbrown
        // uses for its control bytes); consecutive integers should not
        // collide there.
        let mut high_bits: std::collections::HashSet<u64> = Default::default();
        for i in 0..1024u64 {
            high_bits.insert(hash_u64(i) >> 52);
        }
        // With 4096 buckets and 1024 keys we expect near-perfect spread.
        assert!(high_bits.len() > 900, "got {}", high_bits.len());
    }
}
