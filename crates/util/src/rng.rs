//! Deterministic pseudo-random numbers.
//!
//! The min-hash family in `twig-sethash` must be seeded reproducibly: a CST
//! built twice from the same data and seed must produce identical
//! signatures, otherwise resemblance estimates between separately built
//! summaries are meaningless. SplitMix64 is the standard tiny generator for
//! that job (it is also what `rand` uses to bootstrap larger generators).

/// The SplitMix64 generator of Steele, Lea & Flood (2014).
///
/// Passes BigCrush, has period 2^64, and every seed is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); the modulo bias is at
    /// most `bound / 2^64`, negligible for our bounds.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns an odd 64-bit value (a valid multiplier for linear hashing).
    #[inline]
    pub fn next_odd_u64(&mut self) -> u64 {
        self.next_u64() | 1
    }

    /// Returns a uniform index into a collection of `len` elements.
    ///
    /// A `len` of 0 is a caller bug (there is nothing to pick); it returns
    /// 0 in release builds and trips a debug assertion.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "index into an empty collection");
        if len == 0 {
            return 0;
        }
        self.next_below(len as u64) as usize
    }

    /// Returns a value uniform in the inclusive range `[lo, hi]`.
    ///
    /// An inverted range (`lo > hi`) is a caller bug; it clamps to `lo` in
    /// release builds and trips a debug assertion.
    #[inline]
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi, "inverted range {lo}..={hi}");
        if lo >= hi {
            return lo;
        }
        lo + self.next_below(u64::from(hi - lo) + 1) as u32
    }

    /// Returns a value uniform in the inclusive range `[lo, hi]` (`usize`
    /// flavor of [`u32_in`](Self::u32_in), for counts and lengths).
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi, "inverted range {lo}..={hi}");
        if lo >= hi {
            return lo;
        }
        lo + self.next_below((hi - lo) as u64 + 1) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision (the
    /// standard shift-and-scale construction).
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(first, again.next_u64());
        // And the stream must not be constant.
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_odd_is_odd() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(rng.next_odd_u64() & 1, 1);
        }
    }

    #[test]
    fn inclusive_ranges_cover_endpoints() {
        let mut rng = SplitMix64::new(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1_000 {
            let v = rng.u32_in(10, 13);
            assert!((10..=13).contains(&v));
            lo_seen |= v == 10;
            hi_seen |= v == 13;
            let u = rng.usize_in(0, 2);
            assert!(u <= 2);
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn degenerate_ranges_return_lo() {
        let mut rng = SplitMix64::new(4);
        assert_eq!(rng.u32_in(5, 5), 5);
        assert_eq!(rng.usize_in(7, 7), 7);
    }

    #[test]
    fn f64_unit_in_half_open_interval() {
        let mut rng = SplitMix64::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64_unit();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 10k uniforms is 0.5 ± a few percent.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = SplitMix64::new(6);
        for len in 1..20usize {
            for _ in 0..100 {
                assert!(rng.index(len) < len);
            }
        }
    }
}
