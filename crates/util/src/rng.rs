//! Deterministic pseudo-random numbers.
//!
//! The min-hash family in `twig-sethash` must be seeded reproducibly: a CST
//! built twice from the same data and seed must produce identical
//! signatures, otherwise resemblance estimates between separately built
//! summaries are meaningless. SplitMix64 is the standard tiny generator for
//! that job (it is also what `rand` uses to bootstrap larger generators).

/// The SplitMix64 generator of Steele, Lea & Flood (2014).
///
/// Passes BigCrush, has period 2^64, and every seed is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); the modulo bias is at
    /// most `bound / 2^64`, negligible for our bounds.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns an odd 64-bit value (a valid multiplier for linear hashing).
    #[inline]
    pub fn next_odd_u64(&mut self) -> u64 {
        self.next_u64() | 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(first, again.next_u64());
        // And the stream must not be constant.
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_odd_is_odd() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(rng.next_odd_u64() & 1, 1);
        }
    }
}
