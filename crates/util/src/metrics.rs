//! Lock-free service metrics primitives: monotonic counters and
//! log-bucketed latency histograms.
//!
//! These back the `twig-serve` `/metrics` endpoint but live here because
//! they are generic: any long-running component that wants cheap,
//! contention-tolerant instrumentation can use them. Everything is plain
//! `std::sync::atomic` — no external metrics crate, matching the
//! workspace's no-dependency rule.
//!
//! Design notes:
//!
//! - Recording is wait-free (`fetch_add` with relaxed ordering). Metrics
//!   are statistics, not synchronization: a reader may observe a count
//!   and a sum from slightly different instants, which is fine for a
//!   monitoring endpoint and is the standard trade every production
//!   metrics library makes.
//! - The histogram uses power-of-two buckets (`le = 2^i`), so a recorded
//!   value costs one `leading_zeros` plus one `fetch_add` and the whole
//!   histogram is a fixed-size array — no allocation, no locking, no
//!   dynamic bucket boundaries to misconfigure.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter, safe to share between threads.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        AtomicU64::load(&self.value, Ordering::Relaxed)
    }
}

/// Number of buckets in a [`LogHistogram`]: bucket `i` covers values in
/// `(2^(i-1), 2^i]` (bucket 0 covers `{0, 1}`),
/// so 40 buckets span microsecond latencies up to ~2^39 µs ≈ 6.4 days —
/// far beyond any request deadline this workspace will ever configure.
pub const LOG_BUCKETS: usize = 40;

/// A fixed-size histogram with exponentially growing bucket bounds,
/// intended for latency values in microseconds.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        // `[AtomicU64; 40]` has no `Default` impl (arrays stop at 32).
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index for `value`: 0 for 0 and 1, otherwise
/// `ceil(log2(value))`, clamped to the last bucket. This makes bucket
/// bounds *inclusive* (`value <= bucket_bound(index)`), the Prometheus
/// `le` convention — an exact power of two lands in the bucket whose
/// bound equals it.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        let ceil_log2 = 64 - (value - 1).leading_zeros() as usize;
        ceil_log2.min(LOG_BUCKETS - 1)
    }
}

/// The inclusive upper bound (`le`) of bucket `index`: `2^index`, with
/// the last bucket unbounded (`u64::MAX`).
#[must_use]
pub fn bucket_bound(index: usize) -> u64 {
    if index + 1 >= LOG_BUCKETS {
        u64::MAX
    } else {
        1u64 << index
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram. Buckets are returned
    /// cumulative (Prometheus `le` convention): entry `i` is the number
    /// of observations `<= bucket_bound(i)`.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(LOG_BUCKETS);
        let mut running = 0u64;
        for bucket in &self.buckets {
            running += bucket.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            cumulative,
        }
    }
}

/// A point-in-time view of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Cumulative observation counts per bucket (`len == LOG_BUCKETS`).
    pub cumulative: Vec<u64>,
}

impl HistogramSnapshot {
    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`) of the
    /// observations: the bound of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. Returns 0 for an empty histogram.
    /// Power-of-two buckets make this exact to within a factor of 2,
    /// which is the right resolution for alerting on latency percentiles.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = crate::cast::f64_to_count_saturating(
            (q * crate::cast::count_to_f64(self.count)).ceil(),
        )
        .max(1);
        for (index, &cume) in self.cumulative.iter().enumerate() {
            if cume >= target {
                return bucket_bound(index);
            }
        }
        u64::MAX
    }

    /// Mean of the observations; 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        crate::cast::count_ratio(self.sum, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), LOG_BUCKETS - 1);
        // Every value lands in a bucket whose bound covers it.
        for value in [0u64, 1, 2, 3, 7, 8, 9, 1000, 1 << 20, u64::MAX] {
            let index = bucket_index(value);
            assert!(value <= bucket_bound(index), "{value}");
            if index > 0 && index + 1 < LOG_BUCKETS {
                assert!(value > bucket_bound(index - 1), "{value}");
            }
        }
    }

    #[test]
    fn snapshot_is_cumulative() {
        let hist = LogHistogram::new();
        hist.record(1); // bucket 0
        hist.record(3); // bucket 2
        hist.record(3);
        hist.record(1 << 30); // bucket 30 (le = 2^30, inclusive)
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1 + 3 + 3 + (1 << 30));
        assert_eq!(snap.cumulative[0], 1);
        assert_eq!(snap.cumulative[1], 1);
        assert_eq!(snap.cumulative[2], 3);
        assert_eq!(snap.cumulative[29], 3);
        assert_eq!(snap.cumulative[30], 4);
        assert_eq!(snap.cumulative[LOG_BUCKETS - 1], 4);
    }

    #[test]
    fn quantile_bounds_bracket_the_data() {
        let hist = LogHistogram::new();
        for _ in 0..90 {
            hist.record(100); // bucket le=128
        }
        for _ in 0..10 {
            hist.record(10_000); // bucket le=16384
        }
        let snap = hist.snapshot();
        assert_eq!(snap.quantile_bound(0.5), 128);
        assert_eq!(snap.quantile_bound(0.9), 128);
        assert_eq!(snap.quantile_bound(0.99), 16384);
        assert_eq!(snap.quantile_bound(1.0), 16384);
        assert!((snap.mean() - 1090.0).abs() < 1e-9);
        assert_eq!(
            HistogramSnapshot { count: 0, sum: 0, cumulative: vec![0; LOG_BUCKETS] }
                .quantile_bound(0.5),
            0
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let hist = Arc::new(LogHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let hist = Arc::clone(&hist);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    hist.record(t * 1000 + i);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("recorder thread");
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.cumulative[LOG_BUCKETS - 1], 4000);
    }
}
