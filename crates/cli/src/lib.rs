//! Implementation of the `twig` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin wrapper around [`run`] so the
//! whole command surface is unit-testable without spawning processes.
//!
//! ```text
//! twig generate --kind dblp --mb 8 --seed 42 --out corpus.xml
//! twig build    --input corpus.xml --space 0.01 --out summary.cst
//! twig inspect  --summary summary.cst
//! twig estimate --summary summary.cst --query 'book(author("Su"),year("1999"))'
//! twig exact    --input corpus.xml    --query 'book(author("Su"))'
//! twig workload --input corpus.xml --count 20 --kind positive
//! ```

use std::fs;
use std::io::Write;

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{
    generate_dblp, generate_sprot, negative_query_candidates, positive_queries, trivial_queries,
    DblpConfig, SprotConfig, WorkloadConfig,
};
use twig_exact::{count_occurrence, count_occurrence_ordered, count_presence};
use twig_flat::{AnySummary, FlatCst};
use twig_serve::{
    error_chain, LoadOutcome, Server, ServerConfig, SnapshotStore, SummaryRegistry, SummarySpec,
};
use twig_tree::{DataTree, Twig};

/// Runs the CLI with `args` (not including the program name), writing
/// human output to `out`. Returns an error message on failure.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let mut args = Arguments::parse(args)?;
    let command = args.command.clone();
    let result = match command.as_str() {
        "generate" => cmd_generate(&mut args, out),
        "build" => cmd_build(&mut args, out),
        "inspect" => cmd_inspect(&mut args, out),
        "pack" => cmd_pack(&mut args, out),
        "estimate" => cmd_estimate(&mut args, out),
        "explain" => cmd_explain(&mut args, out),
        "exact" => cmd_exact(&mut args, out),
        "audit" => cmd_audit(&mut args, out),
        "workload" => cmd_workload(&mut args, out),
        "serve" => cmd_serve(&mut args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    result?;
    args.ensure_consumed()
}

const USAGE: &str = "\
twig — twig selectivity estimation (ICDE 2001 reproduction)

USAGE:
  twig generate --kind dblp|sprot [--mb N] [--seed N] --out FILE
  twig build    --input XML [--space FRAC | --bytes N] [--sig L] [--seed N]
                [--threads N] [--no-signatures] --out FILE
  twig inspect  --summary FILE            (owned .cst or flat .flt)
  twig pack     --input FILE --out FILE   (owned summary or TWIGSNP1
                snapshot -> zero-copy flat TWIGFLT1 container)
  twig estimate --summary FILE (--query TWIG | --xpath XPATH)
                [--algo NAME] [--count-kind presence|occurrence]
  twig explain  --summary FILE (--query TWIG | --xpath XPATH) [--algo NAME]
  twig exact    --input XML (--query TWIG | --xpath XPATH) [--ordered]
  twig audit    --summary FILE [--queries FILE]
  twig workload --input XML [--count N] [--seed N] [--kind positive|trivial|negative]
  twig serve    --summary [NAME=]FILE [--summary ...] [--addr HOST:PORT]
                [--threads N] [--queue N] [--max-body-kb N] [--max-batch N]
                [--state-dir DIR]

Twig query syntax: labels are elements, quoted strings are value-prefix
leaves, parentheses enclose children: book(author(\"Su\"),year(\"1999\")).
XPath-subset syntax: /dblp/book[author=\"Su\"][year=\"1999\"]/title";

fn io_err(err: std::io::Error) -> String {
    format!("I/O error: {err}")
}

/// Minimal `--flag value` argument parser with leftover detection.
struct Arguments {
    command: String,
    pairs: Vec<(String, String)>,
}

impl Arguments {
    fn parse(args: &[String]) -> Result<Self, String> {
        let Some((command, rest)) = args.split_first() else {
            return Err(format!("missing command\n{USAGE}"));
        };
        let mut pairs = Vec::new();
        let mut iter = rest.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(format!("expected --flag, found '{flag}'"));
            };
            // Boolean flags take no value.
            if matches!(name, "ordered" | "no-signatures") {
                pairs.push((name.to_owned(), "true".to_owned()));
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            pairs.push((name.to_owned(), value.clone()));
        }
        Ok(Self { command: command.clone(), pairs })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        let pos = self.pairs.iter().position(|(n, _)| n == name)?;
        Some(self.pairs.remove(pos).1)
    }

    /// Takes every occurrence of a repeatable flag, in order.
    fn take_all(&mut self, name: &str) -> Vec<String> {
        let mut values = Vec::new();
        while let Some(value) = self.take(name) {
            values.push(value);
        }
        values
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        match self.take(name) {
            None => Ok(None),
            Some(raw) => {
                raw.parse().map(Some).map_err(|_| format!("invalid value for --{name}: '{raw}'"))
            }
        }
    }

    fn require(&mut self, name: &str) -> Result<String, String> {
        self.take(name).ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn ensure_consumed(&self) -> Result<(), String> {
        if let Some((name, _)) = self.pairs.first() {
            return Err(format!("unknown flag --{name} for '{}'", self.command));
        }
        Ok(())
    }
}

fn load_tree(path: &str) -> Result<DataTree, String> {
    let xml = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    DataTree::from_xml(&xml).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn is_flat(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..8] == twig_flat::format::MAGIC
}

/// Loads an owned (`TWIGCST`) summary, for commands that need the full
/// in-memory structure (explain traces, invariant audits, re-packing).
fn load_summary(path: &str) -> Result<Cst, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_flat(&bytes) {
        return Err(format!(
            "{path} is a flat (TWIGFLT1) summary; this command needs an owned (TWIGCST) file"
        ));
    }
    Cst::read_from(&mut bytes.as_slice()).map_err(|e| format!("cannot load {path}: {e}"))
}

/// Loads a summary of either format for estimation (flat files are
/// mapped read-only, owned files are deserialized).
fn load_any_summary(path: &str) -> Result<AnySummary, String> {
    if !std::path::Path::new(path).exists() {
        return Err(format!("cannot read {path}: no such file"));
    }
    AnySummary::load_file(std::path::Path::new(path))
        .map_err(|e| format!("cannot load {path}: {e}"))
}

fn parse_query(text: &str) -> Result<Twig, String> {
    Twig::parse(text).map_err(|e| format!("invalid query '{text}': {e}"))
}

/// Takes `--query` (twig expression) or `--xpath` (XPath subset).
fn take_query(args: &mut Arguments) -> Result<Twig, String> {
    match (args.take("query"), args.take("xpath")) {
        (Some(_), Some(_)) => Err("--query and --xpath are mutually exclusive".into()),
        (Some(text), None) => parse_query(&text),
        (None, Some(text)) => {
            twig_tree::parse_xpath(&text).map_err(|e| format!("invalid XPath '{text}': {e}"))
        }
        (None, None) => Err("missing required flag --query (or --xpath)".into()),
    }
}

fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    Algorithm::ALL.into_iter().find(|a| a.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        format!("unknown algorithm '{name}' (expected one of {})", names.join(", "))
    })
}

fn cmd_generate(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let kind = args.take("kind").unwrap_or_else(|| "dblp".to_owned());
    let mb: f64 = args.take_parsed("mb")?.unwrap_or(1.0);
    let seed: u64 = args.take_parsed("seed")?.unwrap_or(42);
    let path = args.require("out")?;
    let bytes = (mb * 1048576.0) as usize;
    let xml = match kind.as_str() {
        "dblp" => generate_dblp(&DblpConfig { target_bytes: bytes, seed, ..DblpConfig::default() }),
        "sprot" => generate_sprot(&SprotConfig { target_bytes: bytes, seed }),
        other => return Err(format!("unknown corpus kind '{other}' (dblp|sprot)")),
    };
    fs::write(&path, &xml).map_err(|e| format!("cannot write {path}: {e}"))?;
    writeln!(out, "wrote {} bytes of {kind} XML to {path}", xml.len()).map_err(io_err)?;
    Ok(())
}

fn cmd_build(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let input = args.require("input")?;
    let output = args.require("out")?;
    let space: Option<f64> = args.take_parsed("space")?;
    let bytes: Option<usize> = args.take_parsed("bytes")?;
    let sig: usize = args.take_parsed("sig")?.unwrap_or(32);
    let seed: u64 = args.take_parsed("seed")?.unwrap_or(0x7716_C0DE);
    let threads: usize = args.take_parsed("threads")?.unwrap_or(1);
    let no_signatures = args.take("no-signatures").is_some();
    let budget = match (space, bytes) {
        (Some(_), Some(_)) => return Err("--space and --bytes are mutually exclusive".into()),
        (Some(fraction), None) => SpaceBudget::Fraction(fraction),
        (None, Some(b)) => SpaceBudget::Bytes(b),
        (None, None) => SpaceBudget::Fraction(0.01),
    };
    let tree = load_tree(&input)?;
    let cst = Cst::build(
        &tree,
        &CstConfig {
            budget,
            signature_len: sig,
            seed,
            with_signatures: !no_signatures,
            threads,
            ..CstConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let mut buffer = Vec::new();
    cst.write_to(&mut buffer).map_err(io_err)?;
    fs::write(&output, &buffer).map_err(|e| format!("cannot write {output}: {e}"))?;
    writeln!(
        out,
        "summary: {} nodes, threshold {}, accounted {} bytes ({:.3}% of data); file {} bytes -> {output}",
        cst.node_count(),
        cst.threshold(),
        cst.size_bytes(),
        cst.space_fraction() * 100.0,
        buffer.len()
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_inspect(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let path = args.require("summary")?;
    let head = {
        let mut head = [0u8; 8];
        let mut file = fs::File::open(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let read = std::io::Read::read(&mut file, &mut head)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        head[..read].to_vec()
    };
    if is_flat(&head) {
        return inspect_flat(&path, out);
    }
    let cst = load_summary(&path)?;
    writeln!(out, "summary {path}:").map_err(io_err)?;
    writeln!(out, "  trie nodes:        {}", cst.node_count()).map_err(io_err)?;
    writeln!(out, "  prune threshold:   {}", cst.threshold()).map_err(io_err)?;
    writeln!(out, "  data elements (n): {}", cst.n()).map_err(io_err)?;
    writeln!(out, "  source size:       {} bytes", cst.source_bytes()).map_err(io_err)?;
    writeln!(
        out,
        "  accounted size:    {} bytes ({:.3}% of source)",
        cst.size_bytes(),
        cst.space_fraction() * 100.0
    )
    .map_err(io_err)?;
    writeln!(out, "  signature length:  {}", cst.signature_len()).map_err(io_err)?;
    writeln!(out, "  min-hash seed:     {:#x}", cst.seed()).map_err(io_err)?;
    Ok(())
}

/// Inspect output for a flat (`TWIGFLT1`) container: header fields,
/// the section table, and an eager integrity check.
fn inspect_flat(path: &str, out: &mut dyn Write) -> Result<(), String> {
    let flat = FlatCst::open(std::path::Path::new(path))
        .map_err(|e| format!("cannot load {path}: {e}"))?;
    let backing = if flat.is_mapped() { "mmap (zero-copy)" } else { "heap" };
    writeln!(out, "flat summary {path}:").map_err(io_err)?;
    writeln!(out, "  format:            TWIGFLT1 ({backing})").map_err(io_err)?;
    writeln!(out, "  file size:         {} bytes", flat.file_len()).map_err(io_err)?;
    writeln!(out, "  trie nodes:        {}", flat.node_count()).map_err(io_err)?;
    writeln!(out, "  prune threshold:   {}", flat.threshold()).map_err(io_err)?;
    writeln!(out, "  data elements (n): {}", flat.n()).map_err(io_err)?;
    writeln!(out, "  source size:       {} bytes", flat.source_bytes()).map_err(io_err)?;
    writeln!(out, "  accounted size:    {} bytes", flat.size_bytes()).map_err(io_err)?;
    writeln!(out, "  signature length:  {}", flat.signature_len()).map_err(io_err)?;
    writeln!(out, "  min-hash seed:     {:#x}", flat.seed()).map_err(io_err)?;
    writeln!(out, "  sections:").map_err(io_err)?;
    for section in flat.sections() {
        writeln!(
            out,
            "    {:<12} offset {:>8}  {:>8} bytes  fnv1a {:016x}",
            section.name, section.offset, section.len, section.checksum
        )
        .map_err(io_err)?;
    }
    match flat.verify() {
        Ok(()) => writeln!(out, "  integrity:         ok (all checksums verified)").map_err(io_err),
        Err(error) => writeln!(out, "  integrity:         FAILED: {error}").map_err(io_err),
    }
}

/// Packs an owned summary — or the verified payload of a `TWIGSNP1`
/// snapshot-store file — into the zero-copy flat container format.
fn cmd_pack(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let input = args.require("input")?;
    let output = args.require("out")?;
    let bytes = fs::read(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    // A snapshot-store file is the summary plus a checksum footer, so
    // operators can pack straight out of a serve state dir. Unframe
    // before the format sniff: a snapshot of a flat summary starts with
    // the flat magic too.
    let framed = bytes.len() >= 24 && bytes.ends_with(b"TWIGSNP1");
    let payload = if framed {
        twig_serve::snapshot::unframe(bytes)
            .ok_or_else(|| format!("{input} is a torn TWIGSNP1 snapshot (checksum mismatch)"))?
    } else {
        if is_flat(&bytes) {
            return Err(format!("{input} is already a flat (TWIGFLT1) summary"));
        }
        bytes
    };
    if is_flat(&payload) {
        // A snapshot of a summary that was already flat: the payload is
        // the finished container. Land it atomically (tmp + rename) so
        // a mapped reader of an existing file never sees a truncation.
        FlatCst::from_bytes(payload.clone())
            .map_err(|e| format!("snapshot payload in {input} is not a valid container: {e}"))?;
        let tmp = format!("{output}.tmp");
        fs::write(&tmp, &payload).map_err(|e| format!("cannot write {tmp}: {e}"))?;
        fs::rename(&tmp, &output).map_err(|e| format!("cannot rename to {output}: {e}"))?;
        writeln!(out, "unpacked flat snapshot payload: {} bytes -> {output}", payload.len())
            .map_err(io_err)?;
        return Ok(());
    }
    let cst =
        Cst::read_from(&mut payload.as_slice()).map_err(|e| format!("cannot load {input}: {e}"))?;
    twig_flat::writer::write_file(&cst, std::path::Path::new(&output))
        .map_err(|e| format!("cannot pack {input}: {e}"))?;
    let size = fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    writeln!(
        out,
        "packed {} nodes ({} accounted bytes) into flat container: {size} bytes -> {output}",
        cst.node_count(),
        cst.size_bytes(),
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_estimate(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let summary = args.require("summary")?;
    let query = take_query(args)?;
    let algo_name = args.take("algo");
    let kind = match args.take("count-kind").as_deref() {
        None | Some("occurrence") => CountKind::Occurrence,
        Some("presence") => CountKind::Presence,
        Some(other) => return Err(format!("unknown count kind '{other}'")),
    };
    // Either format estimates: flat summaries are mapped and queried in
    // place, bit-identical to the owned path.
    let cst = load_any_summary(&summary)?;
    match algo_name {
        Some(name) => {
            let algo = parse_algorithm(&name)?;
            let estimate = cst.estimate(&query, algo, kind);
            writeln!(out, "{estimate:.3}").map_err(io_err)?;
        }
        None => {
            for algo in Algorithm::ALL {
                let estimate = cst.estimate(&query, algo, kind);
                writeln!(out, "{:<7} {estimate:.3}", algo.name()).map_err(io_err)?;
            }
        }
    }
    Ok(())
}

fn cmd_explain(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let summary = args.require("summary")?;
    let query = take_query(args)?;
    let algo = match args.take("algo") {
        Some(name) => parse_algorithm(&name)?,
        None => Algorithm::Msh,
    };
    let kind = match args.take("count-kind").as_deref() {
        None | Some("occurrence") => CountKind::Occurrence,
        Some("presence") => CountKind::Presence,
        Some(other) => return Err(format!("unknown count kind '{other}'")),
    };
    let cst = load_summary(&summary)?;
    let explanation = cst.explain(&query, algo, kind);
    write!(out, "{explanation}").map_err(io_err)?;
    Ok(())
}

fn cmd_exact(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let input = args.require("input")?;
    let query = take_query(args)?;
    let ordered = args.take("ordered").is_some();
    let tree = load_tree(&input)?;
    let (presence, occurrence) = if ordered {
        (twig_exact::count_presence_ordered(&tree, &query), count_occurrence_ordered(&tree, &query))
    } else {
        (count_presence(&tree, &query), count_occurrence(&tree, &query))
    };
    writeln!(out, "presence   {presence}").map_err(io_err)?;
    writeln!(out, "occurrence {occurrence}").map_err(io_err)?;
    Ok(())
}

/// Runs the CST invariant auditor (see `twig_core::audit`) on a stored
/// summary. With `--queries`, additionally audits estimate sanity (I8)
/// for every listed twig expression (one per line). Exits non-zero when
/// any invariant is violated.
fn cmd_audit(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let path = args.require("summary")?;
    let queries_path = args.take("queries");
    let cst = load_summary(&path)?;
    let mut violations = cst.audit();
    if let Some(list) = queries_path {
        let text = fs::read_to_string(&list).map_err(|e| format!("cannot read {list}: {e}"))?;
        let mut queries = Vec::new();
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            queries.push(parse_query(line)?);
        }
        violations.extend(cst.audit_estimates(&queries));
    }
    if violations.is_empty() {
        writeln!(out, "ok: all CST invariants hold for {path}").map_err(io_err)?;
        return Ok(());
    }
    for violation in &violations {
        writeln!(out, "violation: {violation}").map_err(io_err)?;
    }
    Err(format!("{} invariant violation(s) in {path}", violations.len()))
}

fn cmd_workload(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let input = args.require("input")?;
    let count: usize = args.take_parsed("count")?.unwrap_or(20);
    let seed: u64 = args.take_parsed("seed")?.unwrap_or(99);
    let kind = args.take("kind").unwrap_or_else(|| "positive".to_owned());
    let tree = load_tree(&input)?;
    let cfg = WorkloadConfig { count, seed, ..WorkloadConfig::default() };
    let queries = match kind.as_str() {
        "positive" => positive_queries(&tree, &cfg),
        "trivial" => trivial_queries(&tree, &cfg),
        "negative" => negative_query_candidates(&tree, &cfg)
            .into_iter()
            .filter(|q| count_presence(&tree, q) == 0)
            .take(count)
            .collect(),
        other => return Err(format!("unknown workload kind '{other}'")),
    };
    for query in &queries {
        writeln!(out, "{query}").map_err(io_err)?;
    }
    Ok(())
}

/// Boots the estimation server (`twig-serve`) over one or more stored
/// summaries and blocks until it is shut down (`POST /admin/shutdown`).
/// Prints `listening on ADDR` once the socket is bound, so scripts can
/// wait for readiness on stdout.
fn cmd_serve(args: &mut Arguments, out: &mut dyn Write) -> Result<(), String> {
    let specs = args.take_all("summary");
    if specs.is_empty() {
        return Err("serve needs at least one --summary [NAME=]FILE".into());
    }
    let addr = args.take("addr").unwrap_or_else(|| "127.0.0.1:7716".to_owned());
    let workers: usize = args.take_parsed("threads")?.unwrap_or(8);
    let queue_capacity: usize = args.take_parsed("queue")?.unwrap_or(64);
    let max_body_kb: usize = args.take_parsed("max-body-kb")?.unwrap_or(1024);
    let max_batch: usize = args.take_parsed("max-batch")?.unwrap_or(4096);
    let state_dir = args.take("state-dir");
    // Surface leftover-flag mistakes before binding the socket; `run`'s
    // own check would otherwise only fire after shutdown.
    args.ensure_consumed()?;

    let registry = SummaryRegistry::new();
    if let Some(dir) = &state_dir {
        let store = SnapshotStore::open(std::path::Path::new(dir))
            .map_err(|e| format!("cannot open state dir '{dir}': {e}"))?;
        registry.attach_store(store);
    }
    for text in specs {
        let spec = SummarySpec::parse(&text)?;
        let name = spec.name.clone();
        if state_dir.is_some() {
            // With a state dir, a summary whose file is torn or missing
            // can still come up degraded from its last good snapshot.
            match registry.load_or_recover(spec).map_err(|e| error_chain(&e))? {
                LoadOutcome::Fresh(_) => {
                    writeln!(out, "loaded summary '{name}'").map_err(io_err)?;
                }
                LoadOutcome::Recovered { generation, error } => {
                    writeln!(
                        out,
                        "recovered summary '{name}' from snapshot generation \
                         {generation} (source load failed: {error})"
                    )
                    .map_err(io_err)?;
                }
            }
        } else {
            registry.load(spec).map_err(|e| error_chain(&e))?;
            writeln!(out, "loaded summary '{name}'").map_err(io_err)?;
        }
    }
    let config = ServerConfig {
        workers,
        queue_capacity,
        max_body_bytes: max_body_kb.saturating_mul(1024),
        max_batch,
        ..ServerConfig::default()
    };
    let server =
        Server::bind(&addr, config, registry).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    writeln!(
        out,
        "listening on {} ({workers} workers, queue {queue_capacity})",
        server.local_addr()
    )
    .map_err(io_err)?;
    out.flush().map_err(io_err)?;
    server.run().map_err(|e| format!("server error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(args: &[&str]) -> Result<String, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("UTF-8 output"))
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("twig-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_cli_pipeline() {
        let corpus = temp_path("corpus.xml");
        let summary = temp_path("summary.cst");
        let gen = run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.1", "--seed", "5", "--out", &corpus,
        ])
        .expect("generate");
        assert!(gen.contains("wrote"));

        let build =
            run_capture(&["build", "--input", &corpus, "--space", "0.2", "--out", &summary])
                .expect("build");
        assert!(build.contains("summary:"));

        let inspect = run_capture(&["inspect", "--summary", &summary]).expect("inspect");
        assert!(inspect.contains("trie nodes"));
        assert!(inspect.contains("signature length:  32"));

        let estimate =
            run_capture(&["estimate", "--summary", &summary, "--query", r#"article(author("S"))"#])
                .expect("estimate");
        assert!(estimate.lines().count() == 6, "one line per algorithm: {estimate}");

        let single = run_capture(&[
            "estimate",
            "--summary",
            &summary,
            "--query",
            r#"article(author("S"))"#,
            "--algo",
            "msh",
            "--count-kind",
            "presence",
        ])
        .expect("estimate single");
        assert!(single.trim().parse::<f64>().is_ok(), "{single}");

        let exact =
            run_capture(&["exact", "--input", &corpus, "--query", r#"article(author("S"))"#])
                .expect("exact");
        assert!(exact.contains("presence"));

        let workload =
            run_capture(&["workload", "--input", &corpus, "--count", "5"]).expect("workload");
        assert_eq!(workload.lines().count(), 5);
    }

    #[test]
    fn helpful_errors() {
        assert!(run_capture(&[]).unwrap_err().contains("missing command"));
        assert!(run_capture(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(run_capture(&["build", "--input"]).unwrap_err().contains("needs a value"));
        assert!(run_capture(&["inspect"]).unwrap_err().contains("--summary"));
        assert!(run_capture(&["inspect", "--summary", "/nonexistent/x.cst"])
            .unwrap_err()
            .contains("cannot read"));
        let err = run_capture(&["estimate", "--summary", "x", "--query", "q(", "--algo", "msh"])
            .unwrap_err();
        assert!(err.contains("cannot read") || err.contains("invalid query"), "{err}");
    }

    #[test]
    fn unknown_flags_rejected() {
        let corpus = temp_path("corpus2.xml");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.05", "--seed", "1", "--out", &corpus,
        ])
        .expect("generate");
        let err = run_capture(&["exact", "--input", &corpus, "--query", "a", "--bogus", "1"])
            .unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
    }

    #[test]
    fn ordered_flag_changes_counts() {
        let corpus = temp_path("corpus3.xml");
        fs::write(&corpus, "<r><x><a>2</a><a>1</a></x></r>").expect("write corpus");
        let unordered =
            run_capture(&["exact", "--input", &corpus, "--query", r#"x(a("1"),a("2"))"#])
                .expect("exact");
        let ordered = run_capture(&[
            "exact",
            "--input",
            &corpus,
            "--query",
            r#"x(a("1"),a("2"))"#,
            "--ordered",
        ])
        .expect("exact ordered");
        assert!(unordered.contains("occurrence 1"));
        assert!(ordered.contains("occurrence 0"));
    }

    #[test]
    fn xpath_and_explain_commands() {
        let corpus = temp_path("corpus4.xml");
        let summary = temp_path("summary4.cst");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.1", "--seed", "9", "--out", &corpus,
        ])
        .expect("generate");
        run_capture(&[
            "build",
            "--input",
            &corpus,
            "--space",
            "0.2",
            "--threads",
            "2",
            "--out",
            &summary,
        ])
        .expect("build");

        // XPath input works for estimate and exact.
        let est = run_capture(&[
            "estimate",
            "--summary",
            &summary,
            "--xpath",
            r#"/dblp/article[author="S"]"#,
            "--algo",
            "mosh",
        ])
        .expect("estimate xpath");
        assert!(est.trim().parse::<f64>().is_ok(), "{est}");
        let exact =
            run_capture(&["exact", "--input", &corpus, "--xpath", r#"/dblp/article[author="S"]"#])
                .expect("exact xpath");
        assert!(exact.contains("occurrence"));

        // Explain prints the trace.
        let explained = run_capture(&[
            "explain",
            "--summary",
            &summary,
            "--xpath",
            r#"/dblp/article[author="S"]"#,
        ])
        .expect("explain");
        assert!(explained.contains("parsed subpaths"), "{explained}");
        assert!(explained.contains("estimate:"), "{explained}");

        // Mutual exclusion and error paths.
        let err =
            run_capture(&["estimate", "--summary", &summary, "--query", "a", "--xpath", "/a"])
                .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run_capture(&["estimate", "--summary", &summary, "--xpath", "/a[@id='1']"])
            .unwrap_err();
        assert!(err.contains("attribute axis"), "{err}");
    }

    #[test]
    fn audit_command_detects_corruption() {
        let corpus = temp_path("corpus5.xml");
        let summary = temp_path("summary5.cst");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.05", "--seed", "3", "--out", &corpus,
        ])
        .expect("generate");
        run_capture(&["build", "--input", &corpus, "--space", "0.2", "--out", &summary])
            .expect("build");

        let ok = run_capture(&["audit", "--summary", &summary]).expect("audit clean");
        assert!(ok.contains("ok:"), "{ok}");

        // Estimate audit (I8) over a small query list is also clean.
        let queries = temp_path("queries5.txt");
        fs::write(&queries, "article(author(\"S\"))\n\nbook(title)\n").expect("write queries");
        let ok = run_capture(&["audit", "--summary", &summary, "--queries", &queries])
            .expect("audit with queries");
        assert!(ok.contains("ok:"), "{ok}");

        // Corrupt the stored presence count of the first non-root node so
        // it exceeds its occurrence count (invariant I2). The node table
        // sits after the fixed header and the label table; each record is
        // five u32 fields plus a flag byte (see `serialize`).
        let mut bytes = fs::read(&summary).expect("read summary");
        let read_u32 = |bytes: &[u8], at: usize| {
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("u32"))
        };
        let mut at = 8 + 4 * 8 + 3 * 4;
        let label_count = read_u32(&bytes, at);
        at += 4;
        for _ in 0..label_count {
            let len = read_u32(&bytes, at) as usize;
            at += 4 + len;
        }
        at += 4; // node count
        let node1 = at + 21; // skip the root record
        let occurrence = read_u32(&bytes, node1 + 16);
        bytes[node1 + 12..node1 + 16].copy_from_slice(&(occurrence + 7).to_le_bytes());
        fs::write(&summary, &bytes).expect("write corrupted");

        let err = run_capture(&["audit", "--summary", &summary]).unwrap_err();
        assert!(err.contains("violation"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let help = run_capture(&["help"]).expect("help");
        assert!(help.contains("USAGE"));
        assert!(help.contains("twig serve"));
        assert!(help.contains("twig pack"));
    }

    #[test]
    fn pack_and_inspect_flat_summaries() {
        let corpus = temp_path("corpus8.xml");
        let summary = temp_path("summary8.cst");
        let flat = temp_path("summary8.flt");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.05", "--seed", "8", "--out", &corpus,
        ])
        .expect("generate");
        run_capture(&["build", "--input", &corpus, "--space", "0.2", "--out", &summary])
            .expect("build");

        let packed = run_capture(&["pack", "--input", &summary, "--out", &flat]).expect("pack");
        assert!(packed.contains("packed"), "{packed}");
        assert!(packed.contains("flat container"), "{packed}");

        // Inspect sniffs the format: flat output shows the envelope and
        // the section table, and the integrity check passes.
        let inspect = run_capture(&["inspect", "--summary", &flat]).expect("inspect flat");
        assert!(inspect.contains("TWIGFLT1"), "{inspect}");
        assert!(inspect.contains("trie nodes"), "{inspect}");
        assert!(inspect.contains("NODE_PARENT"), "{inspect}");
        assert!(inspect.contains("STR_BYTES"), "{inspect}");
        assert!(inspect.contains("integrity:         ok"), "{inspect}");

        // Estimates off the flat file match the owned file exactly.
        let query = r#"article(author("S"))"#;
        let owned = run_capture(&["estimate", "--summary", &summary, "--query", query])
            .expect("estimate owned");
        let mapped = run_capture(&["estimate", "--summary", &flat, "--query", query])
            .expect("estimate flat");
        assert_eq!(owned, mapped, "flat estimates must match owned output");

        // Commands that need the owned structure say so.
        let err = run_capture(&["explain", "--summary", &flat, "--query", query]).unwrap_err();
        assert!(err.contains("needs an owned"), "{err}");
        let err = run_capture(&["audit", "--summary", &flat]).unwrap_err();
        assert!(err.contains("needs an owned"), "{err}");

        // Re-packing a flat file is rejected.
        let err = run_capture(&["pack", "--input", &flat, "--out", &summary]).unwrap_err();
        assert!(err.contains("already a flat"), "{err}");
    }

    #[test]
    fn pack_migrates_snapshot_store_files() {
        let corpus = temp_path("corpus9.xml");
        let summary = temp_path("summary9.cst");
        let flat = temp_path("summary9.flt");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.05", "--seed", "11", "--out", &corpus,
        ])
        .expect("generate");
        run_capture(&["build", "--input", &corpus, "--space", "0.2", "--out", &summary])
            .expect("build");

        // A serve state dir persists the summary as a framed TWIGSNP1
        // snapshot; `twig pack` accepts that file directly.
        let state = std::path::PathBuf::from(temp_path("state9"));
        let store = SnapshotStore::open(&state).expect("open store");
        let payload = fs::read(&summary).expect("read summary");
        let snapshot = store.persist("dblp", 1, &payload).expect("persist");
        let snapshot = snapshot.to_string_lossy().into_owned();

        let packed =
            run_capture(&["pack", "--input", &snapshot, "--out", &flat]).expect("pack snapshot");
        assert!(packed.contains("packed"), "{packed}");
        let query = r#"article(author("S"))"#;
        let owned = run_capture(&["estimate", "--summary", &summary, "--query", query])
            .expect("estimate owned");
        let migrated = run_capture(&["estimate", "--summary", &flat, "--query", query])
            .expect("estimate flat");
        assert_eq!(owned, migrated, "snapshot migration must preserve estimates");

        // A torn snapshot (payload corrupt, footer present) is refused.
        let torn = temp_path("torn9.cst");
        let mut framed = fs::read(&snapshot).expect("read snapshot");
        framed[10] ^= 0xFF;
        fs::write(&torn, &framed).expect("write torn");
        let err = run_capture(&["pack", "--input", &torn, "--out", &flat]).unwrap_err();
        assert!(err.contains("torn"), "{err}");

        // A snapshot of an already-flat summary unpacks to the container.
        let flat_payload = fs::read(&flat).expect("read flat");
        let flat_snapshot_path = store.persist("flatone", 1, &flat_payload).expect("persist flat");
        let unpacked = temp_path("summary9b.flt");
        let output = run_capture(&[
            "pack",
            "--input",
            &flat_snapshot_path.to_string_lossy(),
            "--out",
            &unpacked,
        ])
        .expect("unpack flat snapshot");
        assert!(output.contains("unpacked flat snapshot payload"), "{output}");
        assert_eq!(fs::read(&unpacked).expect("read unpacked"), flat_payload);
    }

    #[test]
    fn serve_error_paths() {
        let err = run_capture(&["serve"]).unwrap_err();
        assert!(err.contains("--summary"), "{err}");
        let err = run_capture(&["serve", "--summary", "=x"]).unwrap_err();
        assert!(err.contains("invalid summary spec"), "{err}");
        let err = run_capture(&["serve", "--summary", "/nonexistent/x.cst"]).unwrap_err();
        assert!(err.contains("cannot load summary"), "{err}");
        assert!(err.contains("I/O error"), "{err}");

        let corpus = temp_path("corpus6.xml");
        let summary = temp_path("summary6.cst");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.05", "--seed", "6", "--out", &corpus,
        ])
        .expect("generate");
        run_capture(&["build", "--input", &corpus, "--space", "0.2", "--out", &summary])
            .expect("build");

        // Leftover flags are rejected before the socket is bound.
        let err = run_capture(&["serve", "--summary", &summary, "--bogus", "1"]).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        let err =
            run_capture(&["serve", "--summary", &summary, "--addr", "not-an-addr"]).unwrap_err();
        assert!(err.contains("cannot bind"), "{err}");
    }

    #[test]
    fn serve_boots_answers_and_shuts_down() {
        let corpus = temp_path("corpus7.xml");
        let summary = temp_path("summary7.cst");
        run_capture(&[
            "generate", "--kind", "dblp", "--mb", "0.05", "--seed", "7", "--out", &corpus,
        ])
        .expect("generate");
        run_capture(&["build", "--input", &corpus, "--space", "0.2", "--out", &summary])
            .expect("build");

        // Reserve an ephemeral port, then serve on it from a thread.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
            probe.local_addr().expect("probe addr").port()
        };
        let addr = format!("127.0.0.1:{port}");
        let spec = format!("dblp={summary}");
        let serve_addr = addr.clone();
        let thread = std::thread::spawn(move || {
            let args: Vec<String> =
                ["serve", "--summary", &spec, "--addr", &serve_addr, "--threads", "2"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            let mut out = Vec::new();
            run(&args, &mut out).map(|()| String::from_utf8(out).expect("UTF-8 output"))
        });

        // The smoke loop proves the served estimates flow end to end,
        // then posts /admin/shutdown.
        let report = twig_serve::loadgen::smoke(&addr, "dblp").expect("smoke against twig serve");
        assert!(report.requests > 0);
        let output = thread.join().expect("serve thread").expect("serve exits cleanly");
        assert!(output.contains("loaded summary 'dblp'"), "{output}");
        assert!(output.contains(&format!("listening on {addr}")), "{output}");
    }
}
