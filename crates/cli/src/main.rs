//! The `twig` binary: see [`twig_cli::run`] for the command surface.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match twig_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
