//! The twig query model.
//!
//! A twig is a small rooted node-labeled tree (Definition 1 in the paper):
//! non-leaf nodes are element labels from Σ, leaf nodes are value strings
//! from ℒ*. We add one extension node kind, [`TwigLabel::Star`], for the
//! paper's future-work wildcard queries (a `*` matches an arbitrarily long
//! downward chain of elements).
//!
//! Queries are tiny (the paper's workloads have 2–5 paths of 2–4 internal
//! nodes) so this representation favors clarity over compactness.
//!
//! A compact expression syntax is provided for tests and examples:
//!
//! ```text
//! book(author("Su"), year("1993"))
//! ```
//!
//! Identifiers are element nodes, quoted strings are value leaves, `*` is a
//! wildcard, and parentheses enclose comma-separated children.

use std::fmt;

/// Index of a node in a [`Twig`]. The root is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TwigNodeId(pub u32);

impl TwigNodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Label of a twig query node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TwigLabel {
    /// Matches a data element with this tag.
    Element(String),
    /// Matches a data text leaf whose value has this string as a prefix
    /// (see DESIGN.md §3 for why prefix is the CST-consistent semantics).
    Value(String),
    /// Extension: matches a downward chain of one or more elements with
    /// arbitrary labels.
    Star,
}

impl TwigLabel {
    /// True for [`TwigLabel::Value`].
    pub fn is_value(&self) -> bool {
        matches!(self, TwigLabel::Value(_))
    }
}

/// A twig query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Twig {
    labels: Vec<TwigLabel>,
    parent: Vec<Option<TwigNodeId>>,
    children: Vec<Vec<TwigNodeId>>,
}

impl Twig {
    /// Creates a twig with only a root node.
    pub fn with_root(label: TwigLabel) -> Self {
        Self { labels: vec![label], parent: vec![None], children: vec![Vec::new()] }
    }

    /// Convenience: a root element node.
    pub fn with_root_element(label: impl Into<String>) -> Self {
        Self::with_root(TwigLabel::Element(label.into()))
    }

    /// Appends a child under `parent`, returning the new node's id.
    pub fn add_child(&mut self, parent: TwigNodeId, label: TwigLabel) -> TwigNodeId {
        let id = TwigNodeId(u32::try_from(self.labels.len()).expect("twig too large"));
        self.labels.push(label);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent.index()].push(id);
        id
    }

    /// Convenience: appends an element child.
    pub fn add_element(&mut self, parent: TwigNodeId, label: impl Into<String>) -> TwigNodeId {
        self.add_child(parent, TwigLabel::Element(label.into()))
    }

    /// Convenience: appends a value leaf.
    pub fn add_value(&mut self, parent: TwigNodeId, value: impl Into<String>) -> TwigNodeId {
        self.add_child(parent, TwigLabel::Value(value.into()))
    }

    /// Builds a single-path twig from element labels and an optional value
    /// leaf — the shape of the paper's "trivial" queries.
    pub fn path(labels: &[&str], value: Option<&str>) -> Self {
        assert!(!labels.is_empty(), "path twig needs at least one label");
        let mut twig = Twig::with_root_element(labels[0]);
        let mut cursor = twig.root();
        for label in &labels[1..] {
            cursor = twig.add_element(cursor, *label);
        }
        if let Some(value) = value {
            twig.add_value(cursor, value);
        }
        twig
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> TwigNodeId {
        TwigNodeId(0)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Label of `node`.
    #[inline]
    pub fn label(&self, node: TwigNodeId) -> &TwigLabel {
        &self.labels[node.index()]
    }

    /// Children of `node` in insertion order.
    #[inline]
    pub fn children(&self, node: TwigNodeId) -> &[TwigNodeId] {
        &self.children[node.index()]
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: TwigNodeId) -> Option<TwigNodeId> {
        self.parent[node.index()]
    }

    /// True when `node` has two or more children (a *branch node* in the
    /// paper's twiglet decomposition).
    pub fn is_branch(&self, node: TwigNodeId) -> bool {
        self.children(node).len() >= 2
    }

    /// All branch nodes in pre-order.
    pub fn branch_nodes(&self) -> Vec<TwigNodeId> {
        (0..self.labels.len() as u32).map(TwigNodeId).filter(|&n| self.is_branch(n)).collect()
    }

    /// True when `node` is a leaf of the query.
    pub fn is_leaf(&self, node: TwigNodeId) -> bool {
        self.children(node).is_empty()
    }

    /// Enumerates all root-to-leaf paths as node-id sequences, in DFS order.
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<TwigNodeId>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.collect_paths(self.root(), &mut path, &mut out);
        out
    }

    fn collect_paths(
        &self,
        node: TwigNodeId,
        path: &mut Vec<TwigNodeId>,
        out: &mut Vec<Vec<TwigNodeId>>,
    ) {
        path.push(node);
        if self.is_leaf(node) {
            out.push(path.clone());
        } else {
            for &child in self.children(node) {
                self.collect_paths(child, path, out);
            }
        }
        path.pop();
    }

    /// True when the twig is a single path (no branch nodes) — a "trivial"
    /// query in the paper's terminology.
    pub fn is_single_path(&self) -> bool {
        (0..self.labels.len() as u32).all(|n| self.children(TwigNodeId(n)).len() <= 1)
    }

    /// True when any node is a [`TwigLabel::Star`] wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.labels.iter().any(|l| matches!(l, TwigLabel::Star))
    }

    /// Validates structural invariants: value leaves must actually be
    /// leaves, and every non-root node must have a parent chain reaching
    /// the root.
    pub fn validate(&self) -> Result<(), String> {
        for idx in 0..self.labels.len() {
            let node = TwigNodeId(idx as u32);
            if self.label(node).is_value() && !self.is_leaf(node) {
                return Err(format!("value node {idx} has children"));
            }
        }
        Ok(())
    }

    /// Parses the expression syntax described in the module docs.
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut parser = ExprParser { input: input.as_bytes(), pos: 0 };
        let twig = parser.parse_root()?;
        parser.skip_ws();
        if parser.pos != parser.input.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        twig.validate()?;
        Ok(twig)
    }
}

impl fmt::Display for Twig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_node(twig: &Twig, node: TwigNodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match twig.label(node) {
                TwigLabel::Element(name) => write!(f, "{name}")?,
                TwigLabel::Value(value) => write!(f, "{value:?}")?,
                TwigLabel::Star => write!(f, "*")?,
            }
            let kids = twig.children(node);
            if !kids.is_empty() {
                write!(f, "(")?;
                for (i, &child) in kids.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_node(twig, child, f)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
        write_node(self, self.root(), f)
    }
}

struct ExprParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl ExprParser<'_> {
    fn parse_root(&mut self) -> Result<Twig, String> {
        self.skip_ws();
        let label = self.parse_label()?;
        let mut twig = Twig::with_root(label);
        let root = twig.root();
        self.parse_children(&mut twig, root)?;
        Ok(twig)
    }

    fn parse_node(&mut self, twig: &mut Twig, parent: TwigNodeId) -> Result<(), String> {
        self.skip_ws();
        let label = self.parse_label()?;
        let id = twig.add_child(parent, label);
        self.parse_children(twig, id)
    }

    fn parse_children(&mut self, twig: &mut Twig, node: TwigNodeId) -> Result<(), String> {
        self.skip_ws();
        if self.peek() != Some(b'(') {
            return Ok(());
        }
        self.pos += 1;
        loop {
            self.parse_node(twig, node)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b')') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ')', found {other:?}")),
            }
        }
    }

    fn parse_label(&mut self) -> Result<TwigLabel, String> {
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().is_some_and(|b| b != b'"') {
                    self.pos += 1;
                }
                if self.peek() != Some(b'"') {
                    return Err("unterminated string".to_owned());
                }
                let value = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| "non-UTF8 value".to_owned())?;
                self.pos += 1;
                Ok(TwigLabel::Value(value.to_owned()))
            }
            Some(b'*') => {
                self.pos += 1;
                Ok(TwigLabel::Star)
            }
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'
                }) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| "non-UTF8 label".to_owned())?;
                Ok(TwigLabel::Element(name.to_owned()))
            }
            other => Err(format!("expected label at byte {}, found {other:?}", self.pos)),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut twig = Twig::with_root_element("book");
        let author = twig.add_element(twig.root(), "author");
        twig.add_value(author, "Su");
        let year = twig.add_element(twig.root(), "year");
        twig.add_value(year, "1993");
        assert_eq!(twig.node_count(), 5);
        assert!(twig.is_branch(twig.root()));
        assert!(!twig.is_branch(author));
        assert_eq!(twig.branch_nodes(), vec![twig.root()]);
        assert!(!twig.is_single_path());
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"book(author("Su"),year("1993"))"#;
        let twig = Twig::parse(text).unwrap();
        assert_eq!(twig.to_string(), text);
        assert_eq!(twig.node_count(), 5);
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let twig = Twig::parse(" a ( b ( \"x\" ) , c ) ").unwrap();
        assert_eq!(twig.to_string(), r#"a(b("x"),c)"#);
    }

    #[test]
    fn parse_wildcard() {
        let twig = Twig::parse(r#"a(*(b("x")))"#).unwrap();
        assert!(twig.has_wildcard());
    }

    #[test]
    fn parse_errors() {
        assert!(Twig::parse("").is_err());
        assert!(Twig::parse("a(").is_err());
        assert!(Twig::parse("a(b))").is_err());
        assert!(Twig::parse(r#"a("unterminated)"#).is_err());
        assert!(Twig::parse(r#""v"(b)"#).is_err(), "value node with children");
    }

    #[test]
    fn root_to_leaf_paths_enumerated() {
        let twig = Twig::parse(r#"a(b(d("e")),c)"#).unwrap();
        let paths = twig.root_to_leaf_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 4); // a b d "e"
        assert_eq!(paths[1].len(), 2); // a c
    }

    #[test]
    fn path_constructor() {
        let twig = Twig::path(&["book", "author"], Some("Su"));
        assert!(twig.is_single_path());
        assert_eq!(twig.to_string(), r#"book(author("Su"))"#);
        let no_value = Twig::path(&["book", "author"], None);
        assert_eq!(no_value.node_count(), 2);
    }

    #[test]
    fn figure1_query2_shape() {
        // QUERY 2 from the paper: book(author(A1), author(A2)?, year(Y1))
        let twig = Twig::parse(r#"book(author("A1"),author("A2"),year("Y1"))"#).unwrap();
        assert_eq!(twig.root_to_leaf_paths().len(), 3);
        assert!(twig.is_branch(twig.root()));
    }
}
