//! The arena data tree.
//!
//! Layout choices are driven by corpus scale (a 50 MB DBLP snapshot is a
//! few million nodes):
//!
//! - per-node storage is four `u32` words (label, parent, first child, next
//!   sibling) in parallel vectors — first-child/next-sibling instead of
//!   per-node child vectors avoids millions of small allocations,
//! - element labels are interned [`Symbol`]s,
//! - leaf text lives in one shared `String` buffer addressed by span.

use twig_util::{FxHashMap, Interner, Symbol};
use twig_xml::{Event, Reader};

const NONE: u32 = u32::MAX;

/// Index of a node in a [`DataTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The label of a data tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLabel {
    /// Non-leaf node: an element tag from Σ.
    Element(Symbol),
    /// Leaf node: a text value from ℒ*. The string is fetched with
    /// [`DataTree::text`].
    Text,
}

/// A rooted node-labeled data tree.
#[derive(Debug, Clone)]
pub struct DataTree {
    labels: Vec<u32>,            // Symbol index, or NONE for text leaves
    text_spans: Vec<(u32, u32)>, // (offset, len) into `text_buf`; parallel index via `text_idx`
    text_idx: Vec<u32>,          // per node: index into text_spans, or NONE
    parent: Vec<u32>,
    first_child: Vec<u32>,
    next_sibling: Vec<u32>,
    text_buf: String,
    interner: Interner,
    label_index: FxHashMap<Symbol, Vec<NodeId>>,
    source_bytes: usize,
}

impl DataTree {
    /// Parses an XML document into a data tree.
    ///
    /// Mapping (the paper's "obtained by parsing an XML document"):
    /// each element becomes an `Element` node; each text run becomes a
    /// `Text` leaf child (whitespace-only runs are dropped by the parser);
    /// each attribute `k="v"` becomes an `Element(k)` child with a `Text(v)`
    /// leaf — so attributes are queryable exactly like subelements.
    pub fn from_xml(input: &str) -> twig_xml::Result<Self> {
        let mut builder = TreeBuilder::new();
        let mut reader = Reader::new(input);
        while let Some(event) = reader.next()? {
            match event {
                Event::Start { name, attrs, .. } => {
                    builder.open_element(name);
                    for (key, value) in attrs {
                        builder.open_element(key);
                        builder.text(&value);
                        builder.close_element();
                    }
                }
                Event::End { .. } => builder.close_element(),
                Event::Text(text) => builder.text(&text),
            }
        }
        let mut tree = builder.finish();
        tree.source_bytes = input.len();
        Ok(tree)
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of nodes (elements + text leaves).
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of element (non-leaf-text) nodes. This is the `n` used in the
    /// estimation formulae: probabilities are presence counts divided by
    /// the number of nodes that could root a subpath.
    pub fn element_count(&self) -> usize {
        self.labels.iter().filter(|&&l| l != NONE).count()
    }

    /// Size in bytes of the XML source this tree was parsed from (0 when
    /// built directly). The space axis in the experiments is a percentage
    /// of this.
    pub fn source_bytes(&self) -> usize {
        self.source_bytes
    }

    /// Overrides the recorded source size (used when a tree is built
    /// programmatically rather than parsed).
    pub fn set_source_bytes(&mut self, bytes: usize) {
        self.source_bytes = bytes;
    }

    /// Label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> NodeLabel {
        let raw = self.labels[node.index()];
        if raw == NONE {
            NodeLabel::Text
        } else {
            NodeLabel::Element(Symbol(raw))
        }
    }

    /// Element symbol of `node`, or `None` for a text leaf.
    #[inline]
    pub fn element_symbol(&self, node: NodeId) -> Option<Symbol> {
        let raw = self.labels[node.index()];
        (raw != NONE).then_some(Symbol(raw))
    }

    /// Text of a leaf node, or `None` for elements.
    #[inline]
    pub fn text(&self, node: NodeId) -> Option<&str> {
        let idx = self.text_idx[node.index()];
        if idx == NONE {
            return None;
        }
        let (offset, len) = self.text_spans[idx as usize];
        Some(&self.text_buf[offset as usize..(offset + len) as usize])
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parent[node.index()];
        (p != NONE).then_some(NodeId(p))
    }

    /// Iterates children of `node` in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children { tree: self, next: self.first_child[node.index()] }
    }

    /// True when `node` has no children.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.first_child[node.index()] == NONE
    }

    /// The label interner (shared vocabulary for queries and summaries).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Resolves an element label string to its symbol, if it occurs.
    pub fn symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }

    /// Resolves a symbol to its label string.
    pub fn label_str(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// All element nodes with the given label, in document order.
    pub fn nodes_with_label(&self, sym: Symbol) -> &[NodeId] {
        self.label_index.get(&sym).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Depth-first pre-order iteration over all nodes.
    pub fn dfs(&self) -> Dfs<'_> {
        Dfs { tree: self, stack: vec![self.root()] }
    }

    /// Invokes `visit` for every root-to-leaf path, in DFS order.
    ///
    /// The path slice contains node ids from the root to a node with no
    /// children (either a text leaf, or a childless element). DFS order is
    /// what the suffix-trie construction relies on for its O(1)-memory
    /// count deduplication.
    pub fn for_each_root_to_leaf_path<F: FnMut(&[NodeId])>(&self, visit: F) {
        self.for_each_root_to_leaf_path_sharded(0, 1, visit);
    }

    /// Like [`for_each_root_to_leaf_path`](Self::for_each_root_to_leaf_path),
    /// restricted to paths through top-level subtrees whose index is
    /// `shard` modulo `of` — the work split used by parallel summary
    /// construction. The shards partition the paths exactly (a childless
    /// root belongs to shard 0).
    pub fn for_each_root_to_leaf_path_sharded<F: FnMut(&[NodeId])>(
        &self,
        shard: usize,
        of: usize,
        mut visit: F,
    ) {
        assert!(of > 0 && shard < of, "invalid shard {shard}/{of}");
        let root = self.root();
        if self.is_leaf(root) {
            if shard == 0 {
                visit(&[root]);
            }
            return;
        }
        let mut path: Vec<NodeId> = Vec::with_capacity(32);
        path.push(root);
        // Stack entries: (node, depth). When we pop, truncate path to depth.
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for (index, child) in self.children(root).enumerate() {
            if index % of != shard {
                continue;
            }
            stack.push((child, 1));
            while let Some((node, depth)) = stack.pop() {
                path.truncate(depth);
                path.push(node);
                if self.is_leaf(node) {
                    visit(&path);
                    continue;
                }
                // Push children in reverse so document order comes out of
                // the stack.
                let children: Vec<NodeId> = self.children(node).collect();
                for &grandchild in children.iter().rev() {
                    stack.push((grandchild, depth + 1));
                }
            }
        }
    }

    /// Approximate in-memory footprint in bytes (for reporting).
    pub fn memory_bytes(&self) -> usize {
        self.labels.len() * 16 + self.text_spans.len() * 8 + self.text_buf.len()
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    tree: &'a DataTree,
    next: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.next == NONE {
            return None;
        }
        let id = NodeId(self.next);
        self.next = self.tree.next_sibling[id.index()];
        Some(id)
    }
}

/// Depth-first pre-order node iterator.
pub struct Dfs<'a> {
    tree: &'a DataTree,
    stack: Vec<NodeId>,
}

impl Iterator for Dfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        let children: Vec<NodeId> = self.tree.children(node).collect();
        for &child in children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

/// Incremental builder for a [`DataTree`].
///
/// Drives in document order: `open_element`, optional `text`/children,
/// `close_element`. The XML path uses it internally; generators can use it
/// directly to skip serialization.
#[derive(Debug)]
pub struct TreeBuilder {
    tree: DataTree,
    open: Vec<u32>,
    last_child: Vec<u32>, // parallel to `open`: last child appended at that level
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            tree: DataTree {
                labels: Vec::new(),
                text_spans: Vec::new(),
                text_idx: Vec::new(),
                parent: Vec::new(),
                first_child: Vec::new(),
                next_sibling: Vec::new(),
                text_buf: String::new(),
                interner: Interner::new(),
                label_index: FxHashMap::default(),
                source_bytes: 0,
            },
            open: Vec::new(),
            last_child: Vec::new(),
        }
    }

    fn push_node(&mut self, label: u32, text_idx: u32) -> u32 {
        let id = u32::try_from(self.tree.labels.len()).expect("tree too large");
        let parent = self.open.last().copied().unwrap_or(NONE);
        self.tree.labels.push(label);
        self.tree.text_idx.push(text_idx);
        self.tree.parent.push(parent);
        self.tree.first_child.push(NONE);
        self.tree.next_sibling.push(NONE);
        if parent != NONE {
            let prev = *self.last_child.last().expect("open stack in sync");
            if prev == NONE {
                self.tree.first_child[parent as usize] = id;
            } else {
                self.tree.next_sibling[prev as usize] = id;
            }
            *self.last_child.last_mut().expect("open stack in sync") = id;
        } else {
            assert!(self.tree.labels.len() == 1, "multiple roots");
        }
        id
    }

    /// Opens an element node; subsequent nodes become its children until
    /// [`close_element`](Self::close_element).
    pub fn open_element(&mut self, label: &str) {
        let sym = self.tree.interner.intern(label);
        let id = self.push_node(sym.0, NONE);
        self.tree.label_index.entry(sym).or_default().push(NodeId(id));
        self.open.push(id);
        self.last_child.push(NONE);
    }

    /// Appends a text leaf under the current element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn text(&mut self, value: &str) {
        assert!(!self.open.is_empty(), "text node requires an open element");
        let offset = u32::try_from(self.tree.text_buf.len()).expect("text buffer too large");
        let len = u32::try_from(value.len()).expect("text value too large");
        self.tree.text_buf.push_str(value);
        let span_idx = u32::try_from(self.tree.text_spans.len()).expect("too many text nodes");
        self.tree.text_spans.push((offset, len));
        self.push_node(NONE, span_idx);
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    /// Panics if no element is open.
    pub fn close_element(&mut self) {
        self.open.pop().expect("close_element with nothing open");
        self.last_child.pop();
    }

    /// Finishes the build.
    ///
    /// # Panics
    /// Panics if elements are still open or nothing was built.
    pub fn finish(self) -> DataTree {
        assert!(self.open.is_empty(), "unclosed elements at finish");
        assert!(!self.tree.labels.is_empty(), "empty tree");
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_tree() -> DataTree {
        // The DBLP example of Figure 1 (condensed): three books.
        DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><title>T2</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><author>A3</author><title>T3</title><year>Y2</year></book>",
            "</dblp>"
        ))
        .unwrap()
    }

    #[test]
    fn parses_structure() {
        let tree = figure1_tree();
        let root = tree.root();
        assert_eq!(tree.label_str(tree.element_symbol(root).unwrap()), "dblp");
        let books: Vec<_> = tree.children(root).collect();
        assert_eq!(books.len(), 3);
        let first_book_children: Vec<_> = tree.children(books[0]).collect();
        assert_eq!(first_book_children.len(), 3);
    }

    #[test]
    fn text_leaves_resolve() {
        let tree = figure1_tree();
        let book = tree.children(tree.root()).next().unwrap();
        let author = tree.children(book).next().unwrap();
        let leaf = tree.children(author).next().unwrap();
        assert_eq!(tree.label(leaf), NodeLabel::Text);
        assert_eq!(tree.text(leaf), Some("A1"));
        assert_eq!(tree.text(author), None);
    }

    #[test]
    fn label_index_finds_all() {
        let tree = figure1_tree();
        let author = tree.symbol("author").unwrap();
        assert_eq!(tree.nodes_with_label(author).len(), 6);
        let book = tree.symbol("book").unwrap();
        assert_eq!(tree.nodes_with_label(book).len(), 3);
        assert_eq!(tree.symbol("missing"), None);
    }

    #[test]
    fn parent_links_consistent() {
        let tree = figure1_tree();
        assert_eq!(tree.parent(tree.root()), None);
        for node in tree.dfs() {
            for child in tree.children(node) {
                assert_eq!(tree.parent(child), Some(node));
            }
        }
    }

    #[test]
    fn node_and_element_counts() {
        let tree = figure1_tree();
        // 1 dblp + 3 book + 6 author + 3 title + 3 year = 16 elements,
        // 12 text leaves.
        assert_eq!(tree.element_count(), 16);
        assert_eq!(tree.node_count(), 28);
    }

    #[test]
    fn attributes_become_child_elements() {
        let tree = DataTree::from_xml(r#"<a><b key="v">txt</b></a>"#).unwrap();
        let b = tree.nodes_with_label(tree.symbol("b").unwrap())[0];
        let kids: Vec<_> = tree.children(b).collect();
        // attribute element first, then the text leaf
        assert_eq!(kids.len(), 2);
        assert_eq!(tree.element_symbol(kids[0]), tree.symbol("key"));
        let key_leaf = tree.children(kids[0]).next().unwrap();
        assert_eq!(tree.text(key_leaf), Some("v"));
        assert_eq!(tree.text(kids[1]), Some("txt"));
    }

    #[test]
    fn root_to_leaf_paths_in_dfs_order() {
        let tree = DataTree::from_xml("<a><b>x</b><c><d>y</d></c><e/></a>").unwrap();
        let mut paths: Vec<Vec<String>> = Vec::new();
        tree.for_each_root_to_leaf_path(|path| {
            paths.push(
                path.iter()
                    .map(|&n| match tree.element_symbol(n) {
                        Some(sym) => tree.label_str(sym).to_owned(),
                        None => format!("\"{}\"", tree.text(n).unwrap()),
                    })
                    .collect(),
            );
        });
        assert_eq!(
            paths,
            vec![vec!["a", "b", "\"x\""], vec!["a", "c", "d", "\"y\""], vec!["a", "e"],]
                .into_iter()
                .map(|p: Vec<&str>| p.into_iter().map(str::to_owned).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn dfs_visits_every_node_once() {
        let tree = figure1_tree();
        let visited: Vec<_> = tree.dfs().collect();
        assert_eq!(visited.len(), tree.node_count());
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), visited.len());
        assert_eq!(visited[0], tree.root());
    }

    #[test]
    fn builder_direct_use() {
        let mut builder = TreeBuilder::new();
        builder.open_element("r");
        builder.open_element("x");
        builder.text("val");
        builder.close_element();
        builder.close_element();
        let tree = builder.finish();
        assert_eq!(tree.element_count(), 2);
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn builder_rejects_unclosed() {
        let mut builder = TreeBuilder::new();
        builder.open_element("r");
        let _ = builder.finish();
    }

    #[test]
    fn source_bytes_recorded() {
        let xml = "<a><b>x</b></a>";
        let tree = DataTree::from_xml(xml).unwrap();
        assert_eq!(tree.source_bytes(), xml.len());
    }
}
