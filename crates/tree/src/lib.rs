//! Node-labeled tree data model: the data tree and the twig query.
//!
//! The paper's setting (Sec. 2): a large rooted node-labeled tree `T` whose
//! non-leaf nodes carry labels from an alphabet Σ (element tags) and whose
//! leaf nodes carry strings from ℒ* (text values); and a small query tree
//! (*twig*) `Q` over the same alphabets. This crate provides both:
//!
//! - [`DataTree`]: a compact arena representation (first-child /
//!   next-sibling layout, interned labels, one shared text buffer) built
//!   from XML in a single streaming pass,
//! - [`Twig`]: the query model with element, value and wildcard nodes, a
//!   small expression syntax for tests/examples, and helpers (root-to-leaf
//!   path enumeration, branch-node detection) the estimators need.

pub mod data;
pub mod twig;
pub mod xpath;

pub use data::{DataTree, NodeId, NodeLabel, TreeBuilder};
pub use twig::{Twig, TwigLabel, TwigNodeId};
pub use xpath::parse_xpath;
