//! An XPath-subset front end for twig queries.
//!
//! The paper's queries come from XML-QL; the natural modern interface is
//! XPath. This module translates the navigational XPath fragment that
//! maps onto twigs:
//!
//! ```text
//! /dblp/book[author="Su"][year="1999"]/title
//! //article[journal="TODS"]
//! /entry/organism//taxon[name="Eukaryota"]
//! book[author][year="1993"]
//! ```
//!
//! Supported: child steps (`/`), descendant steps (`//` → a [`Star`]
//! node), element name tests, and predicates `[child]` /
//! `[child="value"]` / `[.="value"]` (value predicates use the library's
//! prefix-match semantics). Not supported (rejected with an error):
//! axes, wildcduplicate `*` name tests with predicates, functions,
//! positional predicates, attributes (`@` — attributes are modeled as
//! child elements by `DataTree::from_xml`, so query them as child
//! steps).
//!
//! [`Star`]: TwigLabel::Star

use crate::twig::{Twig, TwigLabel, TwigNodeId};

/// Parses an XPath-subset expression into a [`Twig`].
///
/// Leading `/` and `//` are accepted (`//a` becomes `*(a)`... rooted at a
/// wildcard only when something must be matched above; a leading `/` is
/// a no-op since twig matches may root anywhere).
pub fn parse_xpath(input: &str) -> Result<Twig, String> {
    let mut parser = XPathParser { input: input.as_bytes(), pos: 0 };
    parser.parse()
}

struct XPathParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl XPathParser<'_> {
    fn parse(&mut self) -> Result<Twig, String> {
        self.skip_ws();
        if self.input.is_empty() {
            return Err("empty XPath expression".to_owned());
        }
        // Leading axis.
        let mut pending_star = false;
        if self.eat(b'/') && self.eat(b'/') {
            pending_star = true;
        }
        let (name, predicates) = self.parse_step()?;
        let mut twig;
        let mut cursor;
        if pending_star {
            twig = Twig::with_root(TwigLabel::Star);
            cursor = twig.add_element(twig.root(), name);
        } else {
            twig = Twig::with_root_element(name);
            cursor = twig.root();
        }
        self.attach_predicates(&mut twig, cursor, predicates)?;
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                break;
            }
            if !self.eat(b'/') {
                return Err(format!("expected '/' at byte {}", self.pos));
            }
            let descendant = self.eat(b'/');
            if descendant {
                cursor = twig.add_child(cursor, TwigLabel::Star);
            }
            let (name, predicates) = self.parse_step()?;
            cursor = twig.add_element(cursor, name);
            self.attach_predicates(&mut twig, cursor, predicates)?;
        }
        twig.validate()?;
        Ok(twig)
    }

    fn attach_predicates(
        &mut self,
        twig: &mut Twig,
        node: TwigNodeId,
        predicates: Vec<Predicate>,
    ) -> Result<(), String> {
        for predicate in predicates {
            match predicate {
                Predicate::Child(name) => {
                    twig.add_element(node, name);
                }
                Predicate::ChildValue(name, value) => {
                    let child = twig.add_element(node, name);
                    twig.add_value(child, value);
                }
                Predicate::SelfValue(value) => {
                    twig.add_value(node, value);
                }
            }
        }
        Ok(())
    }

    fn parse_step(&mut self) -> Result<(String, Vec<Predicate>), String> {
        self.skip_ws();
        let name = self.parse_name()?;
        let mut predicates = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                break;
            }
            predicates.push(self.parse_predicate()?);
            self.skip_ws();
            if !self.eat(b']') {
                return Err(format!("unclosed predicate at byte {}", self.pos));
            }
        }
        Ok((name, predicates))
    }

    fn parse_predicate(&mut self) -> Result<Predicate, String> {
        self.skip_ws();
        if self.eat(b'.') {
            self.skip_ws();
            if !self.eat(b'=') {
                return Err("expected '=' after '.' in predicate".to_owned());
            }
            return Ok(Predicate::SelfValue(self.parse_string()?));
        }
        if self.peek() == Some(b'@') {
            return Err("attribute axis '@' is not supported: attributes are modeled as child \
                 elements; use [attrname=\"v\"] instead"
                .to_owned());
        }
        let name = self.parse_name()?;
        self.skip_ws();
        if self.eat(b'=') {
            Ok(Predicate::ChildValue(name, self.parse_string()?))
        } else {
            Ok(Predicate::Child(name))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            other => return Err(format!("expected quoted string, found {other:?}")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek().is_some_and(|b| b != quote) {
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return Err("unterminated string in predicate".to_owned());
        }
        let value = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| "non-UTF8 value".to_owned())?
            .to_owned();
        self.pos += 1;
        Ok(value)
    }

    fn parse_name(&mut self) -> Result<String, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a name at byte {}", self.pos));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| "non-UTF8 name".to_owned())?
            .to_owned())
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }
}

enum Predicate {
    Child(String),
    ChildValue(String, String),
    SelfValue(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let twig = parse_xpath("/dblp/book/title").unwrap();
        assert_eq!(twig.to_string(), "dblp(book(title))");
    }

    #[test]
    fn leading_slash_optional() {
        assert_eq!(parse_xpath("dblp/book").unwrap(), parse_xpath("/dblp/book").unwrap());
    }

    #[test]
    fn value_predicates() {
        let twig = parse_xpath(r#"/book[author="Su"][year="1999"]"#).unwrap();
        assert_eq!(twig.to_string(), r#"book(author("Su"),year("1999"))"#);
    }

    #[test]
    fn existence_predicate() {
        let twig = parse_xpath("book[author][year]").unwrap();
        assert_eq!(twig.to_string(), "book(author,year)");
    }

    #[test]
    fn predicates_and_tail_path() {
        let twig = parse_xpath(r#"/dblp/book[year="1993"]/author"#).unwrap();
        assert_eq!(twig.to_string(), r#"dblp(book(year("1993"),author))"#);
    }

    #[test]
    fn self_value_predicate() {
        let twig = parse_xpath(r#"/book/year[.="1993"]"#).unwrap();
        assert_eq!(twig.to_string(), r#"book(year("1993"))"#);
    }

    #[test]
    fn descendant_axis_becomes_star() {
        let twig = parse_xpath(r#"//article[journal="TODS"]"#).unwrap();
        assert_eq!(twig.to_string(), r#"*(article(journal("TODS")))"#);
        let deep = parse_xpath(r#"/entry/organism//taxon[name="Euk"]"#).unwrap();
        assert_eq!(deep.to_string(), r#"entry(organism(*(taxon(name("Euk")))))"#);
    }

    #[test]
    fn single_quotes_accepted() {
        let twig = parse_xpath("/a[b='x']").unwrap();
        assert_eq!(twig.to_string(), r#"a(b("x"))"#);
    }

    #[test]
    fn whitespace_tolerated() {
        let twig = parse_xpath(r#" / a [ b = "x" ] / c "#).unwrap();
        assert_eq!(twig.to_string(), r#"a(b("x"),c)"#);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_xpath("").is_err());
        assert!(parse_xpath("/a[b").unwrap_err().contains("unclosed"));
        assert!(parse_xpath("/a[@id='3']").unwrap_err().contains("attribute axis"));
        assert!(parse_xpath("/a[b=x]").unwrap_err().contains("quoted"));
        assert!(parse_xpath("/a/[b]").is_err());
        assert!(parse_xpath("/a[b='x'").is_err());
    }

    #[test]
    fn matches_agree_with_twig_semantics() {
        use crate::data::DataTree;
        let tree = DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>Suciu</author><year>1999</year></book>",
            "<book><author>Korn</author><year>1993</year></book>",
            "</dblp>"
        ))
        .unwrap();
        // XPath and expression syntax produce the same twig.
        let via_xpath = parse_xpath(r#"/dblp/book[author="Su"]"#).unwrap();
        let via_expr = Twig::parse(r#"dblp(book(author("Su")))"#).unwrap();
        assert_eq!(via_xpath, via_expr);
        let _ = tree; // semantics covered by twig-exact tests
    }
}
