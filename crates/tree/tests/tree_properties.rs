//! Structural property tests for the data tree and twig model.
//!
//! Each property sweeps a fixed set of deterministic seeds (no external
//! property testing framework — the container builds offline). A failing
//! seed prints in the assertion message and reproduces exactly.

use twig_tree::{DataTree, TreeBuilder, Twig, TwigLabel};

const CASES: u64 = 64;

/// The seeds each property sweeps (spread across the old `0..10_000`
/// domain rather than consecutive, so shapes vary).
fn seeds() -> impl Iterator<Item = u64> {
    (0..CASES).map(|case| case * 151 + 13)
}

/// Deterministic pseudo-random tree built from the seed (recursion driven
/// by a splitmix-style counter).
fn build_tree(seed: u64, fanout: u64, depth: u32) -> DataTree {
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^ (z >> 31)
    }
    fn grow(b: &mut TreeBuilder, state: &mut u64, depth: u32, fanout: u64) {
        if depth == 0 {
            b.text(&format!("t{}", mix(state) % 10));
            return;
        }
        let kids = 1 + mix(state) % fanout;
        for _ in 0..kids {
            b.open_element(&format!("e{}", mix(state) % 4));
            if !mix(state).is_multiple_of(4) {
                grow(b, state, depth - 1, fanout);
            }
            b.close_element();
        }
    }
    let mut state = seed;
    let mut builder = TreeBuilder::new();
    builder.open_element("root");
    grow(&mut builder, &mut state, depth, fanout);
    builder.close_element();
    builder.finish()
}

#[test]
fn parent_child_links_are_mutual() {
    for seed in seeds() {
        let tree = build_tree(seed, 3, 3);
        for node in tree.dfs() {
            for child in tree.children(node) {
                assert_eq!(tree.parent(child), Some(node), "seed {seed}");
            }
            if let Some(parent) = tree.parent(node) {
                assert!(tree.children(parent).any(|c| c == node), "seed {seed}");
            }
        }
    }
}

#[test]
fn node_counts_consistent() {
    for seed in seeds() {
        let tree = build_tree(seed, 3, 3);
        let dfs_count = tree.dfs().count();
        assert_eq!(dfs_count, tree.node_count(), "seed {seed}");
        let text_leaves = tree.dfs().filter(|&n| tree.text(n).is_some()).count();
        assert_eq!(tree.element_count() + text_leaves, tree.node_count(), "seed {seed}");
    }
}

#[test]
fn label_index_complete() {
    for seed in seeds() {
        let tree = build_tree(seed, 3, 3);
        for (sym, _) in tree.interner().iter() {
            let indexed = tree.nodes_with_label(sym).len();
            let scanned = tree.dfs().filter(|&n| tree.element_symbol(n) == Some(sym)).count();
            assert_eq!(indexed, scanned, "seed {seed}");
        }
    }
}

#[test]
fn paths_end_at_leaves_and_cover_all_leaves() {
    for seed in seeds() {
        let tree = build_tree(seed, 3, 3);
        let mut path_ends = Vec::new();
        tree.for_each_root_to_leaf_path(|path| {
            assert_eq!(path[0], tree.root());
            path_ends.push(*path.last().expect("paths are non-empty"));
        });
        let leaves: Vec<_> = tree.dfs().filter(|&n| tree.is_leaf(n)).collect();
        assert_eq!(path_ends, leaves, "seed {seed}");
    }
}

#[test]
fn twig_display_parse_roundtrip() {
    for seed in seeds() {
        // Build a random twig, print it, reparse, compare.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z ^ (z >> 31)
        };
        let mut twig = Twig::with_root_element("r0");
        let mut frontier = vec![twig.root()];
        for i in 0..(next() % 8) {
            let parent = frontier[(next() % frontier.len() as u64) as usize];
            if twig.label(parent).is_value() {
                continue;
            }
            let id = if next() % 3 == 0 {
                twig.add_value(parent, format!("v{i}"))
            } else {
                twig.add_element(parent, format!("e{i}"))
            };
            frontier.push(id);
        }
        let text = twig.to_string();
        let reparsed = Twig::parse(&text).expect("printed twig reparses");
        assert_eq!(reparsed.to_string(), text, "seed {seed}");
        assert_eq!(reparsed.node_count(), twig.node_count(), "seed {seed}");
    }
}

#[test]
fn twig_branch_nodes_and_paths_agree() {
    let twig = Twig::parse(r#"a(b(c,d("x")),e,f(g))"#).unwrap();
    let paths = twig.root_to_leaf_paths();
    assert_eq!(paths.len(), 4);
    // Total leaf count equals path count.
    let leaves =
        (0..twig.node_count() as u32).filter(|&i| twig.is_leaf(twig_tree::TwigNodeId(i))).count();
    assert_eq!(leaves, paths.len());
    // Branch nodes are exactly a and b.
    assert_eq!(twig.branch_nodes().len(), 2);
}

#[test]
fn twig_label_kinds() {
    let twig = Twig::parse(r#"a(*(b("x")))"#).unwrap();
    let labels: Vec<bool> = (0..twig.node_count() as u32)
        .map(|i| twig.label(twig_tree::TwigNodeId(i)).is_value())
        .collect();
    assert_eq!(labels.iter().filter(|&&v| v).count(), 1);
    assert!(matches!(twig.label(twig_tree::TwigNodeId(1)), TwigLabel::Star));
}
