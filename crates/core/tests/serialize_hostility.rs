//! Hostile-input tests for `Cst::read_from`.
//!
//! The serve subsystem's reload endpoint makes summary deserialization an
//! external attack surface: an operator (or an attacker who can write the
//! summary directory) can feed the loader arbitrary bytes. The contract
//! is that `read_from` returns a structured [`ReadError`] for *any* input
//! — it must never panic, never abort, and never allocate absurdly.
//!
//! The sweeps below are deterministic (SplitMix64-seeded), so a failure
//! reproduces exactly from the printed seed/position.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_tree::{DataTree, Twig};
use twig_util::SplitMix64;

fn sample_summary_bytes() -> Vec<u8> {
    let tree = DataTree::from_xml(concat!(
        "<dblp>",
        "<book><author>Anna</author><year>1999</year><title>TreeQL</title></book>",
        "<book><author>Bo</author><year>2000</year></book>",
        "<article><author>Cy</author><title>Twigs</title></article>",
        "</dblp>"
    ))
    .expect("sample XML parses");
    let cst =
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("sample CST builds");
    let mut buffer = Vec::new();
    cst.write_to(&mut buffer).expect("serialize sample");
    buffer
}

/// Every possible truncation point must produce `Err`, not a panic.
/// (The full prefix sweep is cheap: the sample summary is a few KB.)
#[test]
fn every_truncation_is_a_structured_error() {
    let bytes = sample_summary_bytes();
    for cut in 0..bytes.len() {
        let truncated = &bytes[..cut];
        let result = Cst::from_bytes(truncated);
        assert!(result.is_err(), "truncation at {cut}/{} accepted", bytes.len());
    }
    // The untruncated input still loads, so the sweep tested real data.
    assert!(Cst::from_bytes(&bytes).is_ok());
}

/// Random single-bit flips: the loader either rejects the input or
/// produces a summary whose estimates are finite (a flip in a count or
/// signature component can go unnoticed by construction — that is what
/// `twig audit` is for — but it must not panic or poison estimation).
#[test]
fn seeded_bit_flips_never_panic() {
    let bytes = sample_summary_bytes();
    let mut rng = SplitMix64::new(0xB17_F11B5);
    let query = Twig::parse(r#"book(author("A"),year("19"))"#).expect("query parses");
    for round in 0..600 {
        let mut mutated = bytes.clone();
        let position = rng.index(mutated.len());
        let bit = (rng.next_below(8)) as u8;
        mutated[position] ^= 1 << bit;
        match Cst::from_bytes(&mutated) {
            Err(_) => {}
            Ok(cst) => {
                for algo in Algorithm::ALL {
                    for kind in [CountKind::Presence, CountKind::Occurrence] {
                        let estimate = cst.estimate(&query, algo, kind);
                        assert!(
                            estimate.is_finite() && estimate >= 0.0,
                            "round {round}: flip at byte {position} bit {bit} \
                             poisoned {algo} {kind:?}: {estimate}"
                        );
                    }
                }
            }
        }
    }
}

/// Random multi-byte stomps (burst corruption, as from a torn write).
#[test]
fn seeded_byte_stomps_never_panic() {
    let bytes = sample_summary_bytes();
    let mut rng = SplitMix64::new(0x0005_7011_1135);
    let query = Twig::parse(r#"article(title("T"))"#).expect("query parses");
    for _ in 0..300 {
        let mut mutated = bytes.clone();
        let start = rng.index(mutated.len());
        let len = 1 + rng.index(64);
        let end = (start + len).min(mutated.len());
        for byte in &mut mutated[start..end] {
            *byte = (rng.next_u64() & 0xFF) as u8;
        }
        if let Ok(cst) = Cst::from_bytes(&mutated) {
            let estimate = cst.estimate(&query, Algorithm::Msh, CountKind::Presence);
            assert!(estimate.is_finite() && estimate >= 0.0);
        }
    }
}

/// Adversarial headers: huge declared counts must be rejected before any
/// allocation proportional to them happens (guarded by `MAX_REASONABLE`
/// in the reader). This test would OOM, not merely fail, if the guard
/// were removed.
#[test]
fn absurd_header_counts_rejected_cheaply() {
    let bytes = sample_summary_bytes();
    // Label count lives after magic(8) + 4×u64 + 3×u32.
    let label_count_at = 8 + 4 * 8 + 3 * 4;
    let mut mutated = bytes.clone();
    mutated[label_count_at..label_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Cst::from_bytes(&mutated).is_err());

    // Signature length sits 8 bytes before the label count.
    let mut mutated = bytes;
    let sig_len_at = label_count_at - 12;
    mutated[sig_len_at..sig_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Cst::from_bytes(&mutated).is_err());
}
