//! Plan-path equivalence: `estimate_raw` with a memoized [`QueryPlan`]
//! must be bit-for-bit identical to the plan-free path, for every
//! algorithm, count kind, and query shape — including the repeated-twig
//! case where every stage is served from the plan's caches.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, QueryPlan, SpaceBudget};
use twig_datagen::{
    generate_dblp, negative_query_candidates, positive_queries, trivial_queries, DblpConfig,
    WorkloadConfig,
};
use twig_tree::{DataTree, Twig};

fn fixture(threshold: u32) -> (DataTree, Cst) {
    let xml = generate_dblp(&DblpConfig {
        target_bytes: 60_000,
        seed: 0x5eed_0004,
        ..DblpConfig::default()
    });
    let tree = DataTree::from_xml(&xml).unwrap();
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Threshold(threshold), ..CstConfig::default() },
    )
    .unwrap();
    (tree, cst)
}

fn workload(tree: &DataTree, seed: u64) -> Vec<Twig> {
    let cfg = WorkloadConfig { count: 20, seed, ..WorkloadConfig::default() };
    let mut queries = positive_queries(tree, &cfg);
    queries.extend(negative_query_candidates(tree, &cfg));
    queries.extend(trivial_queries(tree, &WorkloadConfig { count: 5, seed, ..cfg }));
    assert!(queries.len() >= 20, "workload generation produced too few queries");
    queries
}

/// Seed sweep: N random twigs x 6 algorithms x both count kinds, the
/// plan path compared bit-for-bit against the plan-free path — on the
/// first use of the plan (cold fill) and on a repeat (every stage
/// served memoized).
#[test]
fn planned_estimates_are_bit_identical_to_plan_free() {
    for threshold in [1, 4] {
        let (tree, cst) = fixture(threshold);
        for seed in [7, 8, 9] {
            for twig in workload(&tree, seed) {
                let plan = QueryPlan::new();
                for algorithm in Algorithm::ALL {
                    for kind in [CountKind::Presence, CountKind::Occurrence] {
                        let bare = cst.estimate_raw(&twig, algorithm, kind, None);
                        let cold = cst.estimate_raw(&twig, algorithm, kind, Some(&plan));
                        let warm = cst.estimate_raw(&twig, algorithm, kind, Some(&plan));
                        assert_eq!(
                            bare.to_bits(),
                            cold.to_bits(),
                            "cold plan diverges: {twig} {algorithm} {kind:?} (threshold {threshold})"
                        );
                        assert_eq!(
                            bare.to_bits(),
                            warm.to_bits(),
                            "warm plan diverges: {twig} {algorithm} {kind:?} (threshold {threshold})"
                        );
                    }
                }
            }
        }
    }
}

/// The served fast path multiplies `estimate_raw(.., Some(plan))` by a
/// separately memoized sibling discount; the product must equal
/// `Cst::estimate` exactly.
#[test]
fn planned_product_matches_estimate() {
    let (tree, cst) = fixture(2);
    for twig in workload(&tree, 11) {
        let plan = QueryPlan::new();
        let discount = cst.sibling_discount(&twig);
        for algorithm in Algorithm::ALL {
            for kind in [CountKind::Presence, CountKind::Occurrence] {
                let served = cst.estimate_raw(&twig, algorithm, kind, Some(&plan)) * discount;
                let direct = cst.estimate(&twig, algorithm, kind);
                assert_eq!(
                    served.to_bits(),
                    direct.to_bits(),
                    "served product diverges: {twig} {algorithm} {kind:?}"
                );
            }
        }
    }
}

/// A plan is shareable across threads (the server keeps one behind an
/// `Arc` per cached twig); concurrent first use must agree with the
/// plan-free path.
#[test]
fn plan_is_safe_to_share_across_threads() {
    let (tree, cst) = fixture(1);
    let twig = workload(&tree, 13).into_iter().next().unwrap();
    let plan = std::sync::Arc::new(QueryPlan::new());
    let cst = std::sync::Arc::new(cst);
    let expected = cst.estimate_raw(&twig, Algorithm::Msh, CountKind::Occurrence, None);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (plan, cst, twig) = (plan.clone(), cst.clone(), twig.clone());
            std::thread::spawn(move || {
                cst.estimate_raw(&twig, Algorithm::Msh, CountKind::Occurrence, Some(&plan))
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap().to_bits(), expected.to_bits());
    }
}
