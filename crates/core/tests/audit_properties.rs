//! Property tests for the CST invariant auditor (`twig_core::audit`).
//!
//! Every summary this crate can build — any corpus, any space budget, any
//! signature configuration — must pass its own audit: the auditor encodes
//! the invariant catalogue (DESIGN.md), and a healthy pipeline never
//! violates it. These tests sweep randomly generated DBLP- and
//! SPROT-shaped corpora across the configuration grid and assert the
//! audit comes back empty, including the estimate-sanity pass (I8) over a
//! sampled positive workload.
//!
//! Deterministic seed loops, no external framework (offline build); a
//! failing seed prints in the assertion message.

use twig_core::{Cst, CstConfig, SpaceBudget};
use twig_datagen::{
    generate_dblp, generate_sprot, positive_queries, DblpConfig, SprotConfig, WorkloadConfig,
};
use twig_tree::DataTree;

fn dblp_tree(seed: u64) -> DataTree {
    let xml = generate_dblp(&DblpConfig { target_bytes: 40_000, seed, ..DblpConfig::default() });
    DataTree::from_xml(&xml).expect("generated DBLP XML parses")
}

fn sprot_tree(seed: u64) -> DataTree {
    let xml = generate_sprot(&SprotConfig { target_bytes: 40_000, seed });
    DataTree::from_xml(&xml).expect("generated SPROT XML parses")
}

/// The configuration grid each corpus is summarized under.
fn configs() -> Vec<CstConfig> {
    let mut grid = Vec::new();
    for budget in [
        SpaceBudget::Threshold(1),
        SpaceBudget::Threshold(3),
        SpaceBudget::Fraction(0.05),
        SpaceBudget::Fraction(0.5),
        SpaceBudget::Bytes(2_000),
    ] {
        for signature_len in [8, 32] {
            for with_signatures in [true, false] {
                grid.push(CstConfig {
                    budget,
                    signature_len,
                    with_signatures,
                    ..CstConfig::default()
                });
            }
        }
    }
    grid
}

fn audit_clean(tree: &DataTree, seed: u64, corpus: &str) {
    for (idx, config) in configs().iter().enumerate() {
        let cst = Cst::build(tree, config).expect("CST config is valid");
        let violations = cst.audit();
        assert!(
            violations.is_empty(),
            "seed {seed} {corpus} config #{idx} ({:?}): {violations:?}",
            config.budget
        );
    }
}

/// Freshly built summaries pass the structural audit (I1–I7) for every
/// budget × signature configuration, DBLP corpus shape.
#[test]
fn built_dblp_summaries_pass_audit() {
    for case in 0..6u64 {
        let seed = 41 + case * 977;
        audit_clean(&dblp_tree(seed), seed, "dblp");
    }
}

/// Same sweep over the SPROT corpus shape (deeper values, different
/// label distribution).
#[test]
fn built_sprot_summaries_pass_audit() {
    for case in 0..6u64 {
        let seed = 1_009 + case * 577;
        audit_clean(&sprot_tree(seed), seed, "sprot");
    }
}

/// The estimate audit (I8) holds over a sampled positive workload: no
/// algorithm produces NaN, infinite, or negative estimates on summaries
/// at any pruning level.
#[test]
fn estimates_pass_audit_on_sampled_workloads() {
    for case in 0..4u64 {
        let seed = 7 + case * 3_163;
        let tree = dblp_tree(seed);
        let queries = positive_queries(
            &tree,
            &WorkloadConfig { count: 6, seed: seed ^ 0xA0D1, ..WorkloadConfig::default() },
        );
        for budget in [SpaceBudget::Threshold(1), SpaceBudget::Fraction(0.02)] {
            let cst = Cst::build(&tree, &CstConfig { budget, ..CstConfig::default() })
                .expect("CST config is valid");
            let violations = cst.audit_estimates(&queries);
            assert!(violations.is_empty(), "seed {seed} budget {budget:?}: {violations:?}");
        }
    }
}

/// Serialization roundtrips preserve audit cleanliness: what was healthy
/// on write is healthy after read.
#[test]
fn roundtripped_summaries_pass_audit() {
    for case in 0..3u64 {
        let seed = 271 + case * 1_433;
        let tree = dblp_tree(seed);
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Fraction(0.1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let mut buffer = Vec::new();
        cst.write_to(&mut buffer).expect("serialize");
        let restored = Cst::read_from(&mut buffer.as_slice()).expect("deserialize");
        let violations = restored.audit();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}
