//! Estimation explanations: *why* did the estimator produce this number?
//!
//! [`Cst::explain`] re-runs the full pipeline of one estimate with a trace
//! sink attached and returns an [`Explanation`]: the parsed subpaths with
//! their CST counts, the twiglet decomposition, every multiplicative
//! factor of the MO combination (numerator, conditioning overlap,
//! denominator), the sibling discount, and the final number. The
//! `Display` impl prints a compact human-readable report — the shape of
//! thing a query optimizer's `EXPLAIN` would show for a cardinality
//! estimate.

use std::fmt;

use twig_pst::PathToken;
use twig_tree::Twig;

use crate::combine::{combine_traced, Element, Factor};
use crate::cst::Cst;
use crate::estimate::{Algorithm, CountKind};
use crate::parse::{covers_query, greedy_pieces, maximal_pieces, piecewise_maximal_pieces, Piece};
use crate::query::CompiledQuery;
use crate::twiglets::{mosh_twiglets, msh_twiglets};

/// A rendered view of one parsed subpath.
#[derive(Debug, Clone)]
pub struct ExplainedPiece {
    /// Dotted subpath notation (`dblp.book.author."Su"`).
    pub subpath: String,
    /// Presence count from the CST.
    pub presence: u64,
    /// Occurrence count from the CST.
    pub occurrence: u64,
}

/// A rendered combination factor.
#[derive(Debug, Clone)]
pub struct ExplainedFactor {
    /// "piece" or "twiglet".
    pub kind: &'static str,
    /// Subpaths in the element.
    pub subpaths: Vec<String>,
    /// Subpaths of the conditioning overlap (empty = independent join).
    pub overlap: Vec<String>,
    /// Estimated count of the element.
    pub numerator: f64,
    /// Estimated count of the overlap (`n` when independent).
    pub denominator: f64,
    /// Skipped as fully covered (contributes 1).
    pub skipped: bool,
}

/// The full explanation of one estimate.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Count kind estimated.
    pub kind: CountKind,
    /// The query, printed.
    pub query: String,
    /// Data tree size `n` used in the formulae.
    pub n: u64,
    /// Parsed subpaths with their counts.
    pub pieces: Vec<ExplainedPiece>,
    /// Whether parsing covered every query unit.
    pub covered: bool,
    /// The combination factors in processing order.
    pub factors: Vec<ExplainedFactor>,
    /// The sibling-injectivity discount applied at the end.
    pub discount: f64,
    /// The final estimate (`estimate()`'s return value).
    pub estimate: f64,
}

impl Cst {
    /// Explains one estimate; `explanation.estimate` equals
    /// [`Cst::estimate`] for the same arguments.
    pub fn explain(&self, twig: &Twig, algorithm: Algorithm, kind: CountKind) -> Explanation {
        let query = CompiledQuery::compile(self, twig);
        let mut factors: Vec<Factor> = Vec::new();
        let (pieces, covered, raw) = match algorithm {
            Algorithm::Leaf | Algorithm::Greedy => {
                // The baselines have no element/factor structure worth
                // tracing; report their pieces only.
                let pieces = match algorithm {
                    Algorithm::Greedy => greedy_pieces(self, &query).unwrap_or_default(),
                    _ => maximal_pieces(self, &query),
                };
                let covered = covers_query(&query, &pieces);
                let raw = self.estimate_raw(twig, algorithm, kind, None);
                (pieces, covered, raw)
            }
            Algorithm::PureMo => {
                let pieces = maximal_pieces(self, &query);
                let covered = covers_query(&query, &pieces);
                let raw = if covered {
                    let elements: Vec<Element> =
                        pieces.iter().cloned().map(Element::Single).collect();
                    combine_traced(self, &query, &elements, kind, Some(&mut factors))
                } else {
                    0.0
                };
                (pieces, covered, raw)
            }
            Algorithm::Mosh | Algorithm::Pmosh => {
                let pieces = if algorithm == Algorithm::Mosh {
                    maximal_pieces(self, &query)
                } else {
                    piecewise_maximal_pieces(self, &query, twig)
                };
                let covered = covers_query(&query, &pieces);
                let raw = if covered {
                    let (twiglets, consumed) = mosh_twiglets(&query, &pieces);
                    let mut elements: Vec<Element> = pieces
                        .iter()
                        .cloned()
                        .zip(&consumed)
                        .filter(|(_, &used)| !used)
                        .map(|(p, _)| Element::Single(p))
                        .collect();
                    elements.extend(twiglets.into_iter().map(Element::Group));
                    combine_traced(self, &query, &elements, kind, Some(&mut factors))
                } else {
                    0.0
                };
                (pieces, covered, raw)
            }
            Algorithm::Msh => {
                let pieces = maximal_pieces(self, &query);
                let covered = covers_query(&query, &pieces);
                let raw = if covered {
                    let twiglets = msh_twiglets(self, &query, &pieces);
                    let regions: Vec<twig_util::FxHashSet<crate::query::Unit>> =
                        twiglets.iter().map(crate::twiglets::Twiglet::units).collect();
                    let mut elements: Vec<Element> = pieces
                        .iter()
                        .filter(|p| {
                            !regions.iter().any(|region| p.units.iter().all(|u| region.contains(u)))
                        })
                        .cloned()
                        .map(Element::Single)
                        .collect();
                    elements.extend(twiglets.into_iter().map(Element::Group));
                    combine_traced(self, &query, &elements, kind, Some(&mut factors))
                } else {
                    0.0
                };
                (pieces, covered, raw)
            }
        };
        let discount = self.sibling_discount(twig);
        Explanation {
            algorithm,
            kind,
            query: twig.to_string(),
            n: self.n(),
            pieces: pieces
                .iter()
                .map(|p| ExplainedPiece {
                    subpath: self.render_piece(p),
                    presence: self.presence(p.trie),
                    occurrence: self.occurrence(p.trie),
                })
                .collect(),
            covered,
            factors: factors
                .iter()
                .map(|f| ExplainedFactor {
                    kind: if f.is_group { "twiglet" } else { "piece" },
                    subpaths: f.chains.iter().map(|c| self.render_piece(c)).collect(),
                    overlap: f.overlaps.iter().map(|c| self.render_piece(c)).collect(),
                    numerator: f.numerator,
                    denominator: f.denominator,
                    skipped: f.skipped,
                })
                .collect(),
            discount,
            estimate: raw * discount,
        }
    }

    /// Renders a piece's token chain in dotted notation.
    fn render_piece(&self, piece: &Piece) -> String {
        let tokens = self.trie().tokens_of(piece.trie);
        let mut out = String::new();
        let mut in_value = false;
        for token in tokens {
            match token {
                PathToken::Element(sym) => {
                    if !out.is_empty() {
                        out.push('.');
                    }
                    out.push_str(self.label_str_of(sym));
                }
                PathToken::Char(byte) => {
                    if !in_value {
                        if !out.is_empty() {
                            out.push('.');
                        }
                        out.push('"');
                        in_value = true;
                    }
                    out.push(byte as char);
                }
            }
        }
        if in_value {
            out.push('"');
        }
        out
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "explain {} [{:?}] of {} (n = {})",
            self.algorithm, self.kind, self.query, self.n
        )?;
        writeln!(f, "parsed subpaths ({}):", self.pieces.len())?;
        for piece in &self.pieces {
            writeln!(
                f,
                "  {:<50} Cp = {:<8} Co = {}",
                piece.subpath, piece.presence, piece.occurrence
            )?;
        }
        if !self.covered {
            writeln!(f, "  !! query not fully covered -> estimate 0")?;
        }
        if !self.factors.is_empty() {
            writeln!(f, "combination:")?;
            for factor in &self.factors {
                if factor.skipped {
                    writeln!(f, "  [{}] {:?} (fully covered, x1)", factor.kind, factor.subpaths)?;
                    continue;
                }
                let overlap = if factor.overlap.is_empty() {
                    "n (independent)".to_owned()
                } else {
                    format!("{:?}", factor.overlap)
                };
                writeln!(
                    f,
                    "  [{}] {:?}: {:.3} / {:.3}  (overlap: {})",
                    factor.kind, factor.subpaths, factor.numerator, factor.denominator, overlap
                )?;
            }
        }
        if self.discount != 1.0 {
            writeln!(f, "sibling-injectivity discount: {:.4}", self.discount)?;
        }
        writeln!(f, "estimate: {:.3}", self.estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{CstConfig, SpaceBudget};
    use twig_tree::DataTree;

    fn fixture() -> Cst {
        let mut xml = String::from("<dblp>");
        for _ in 0..20 {
            xml.push_str("<book><author>Anna</author><year>1999</year></book>");
        }
        for _ in 0..20 {
            xml.push_str("<book><author>Bo</author><year>2000</year></book>");
        }
        xml.push_str("</dblp>");
        Cst::build(
            &DataTree::from_xml(&xml).unwrap(),
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid")
    }

    #[test]
    fn explanation_matches_estimate_for_all_algorithms() {
        let cst = fixture();
        for expr in [
            r#"book(author("Anna"),year("1999"))"#,
            r#"dblp(book(author("Bo")))"#,
            "book(author,author)",
            r#"book(publisher("X"))"#,
        ] {
            let twig = Twig::parse(expr).unwrap();
            for algo in Algorithm::ALL {
                for kind in [CountKind::Presence, CountKind::Occurrence] {
                    let explanation = cst.explain(&twig, algo, kind);
                    let direct = cst.estimate(&twig, algo, kind);
                    assert!(
                        (explanation.estimate - direct).abs() < 1e-9,
                        "{algo} {kind:?} {expr}: explain {} vs estimate {direct}",
                        explanation.estimate
                    );
                }
            }
        }
    }

    #[test]
    fn explanation_shows_twiglet_for_mosh() {
        let cst = fixture();
        let twig = Twig::parse(r#"book(author("Anna"),year("1999"))"#).unwrap();
        let explanation = cst.explain(&twig, Algorithm::Mosh, CountKind::Presence);
        assert!(explanation.covered);
        assert!(explanation.factors.iter().any(|f| f.kind == "twiglet"));
        let rendered = explanation.to_string();
        assert!(rendered.contains("book.author.\"Anna\""), "{rendered}");
        assert!(rendered.contains("estimate:"), "{rendered}");
    }

    #[test]
    fn explanation_flags_uncovered_queries() {
        let cst = fixture();
        let twig = Twig::parse(r#"book(publisher("X"))"#).unwrap();
        let explanation = cst.explain(&twig, Algorithm::Mosh, CountKind::Presence);
        assert!(!explanation.covered);
        assert_eq!(explanation.estimate, 0.0);
        assert!(explanation.to_string().contains("not fully covered"));
    }

    #[test]
    fn explanation_shows_discount() {
        let cst = fixture();
        let twig = Twig::parse("book(author,author)").unwrap();
        let explanation = cst.explain(&twig, Algorithm::PureMo, CountKind::Occurrence);
        assert_eq!(explanation.discount, 0.0, "books have a single author");
        assert!(explanation.to_string().contains("discount"));
    }
}
