//! The summary abstraction: the estimation surface shared by the owned
//! [`Cst`] and zero-copy flat summaries.
//!
//! Every estimation stage — query compilation, subpath parsing, twiglet
//! grouping, MO combination — reads the summary through this trait, so a
//! memory-mapped flat summary (`twig-flat`) runs the exact same code as
//! the owned structure and produces bit-identical estimates. Signatures
//! are exposed as borrowed [`SigView`]s, which abstract over typed `u32`
//! words (owned storage) and raw little-endian bytes (flat storage)
//! without copying either.

use twig_pst::{EdgeKey, PathToken, PrunedTrie, TrieNodeId};
use twig_sethash::SigView;
use twig_util::Symbol;

use crate::cst::{Cst, SignatureFallback};

/// Read access to a pruned-trie-shaped transition structure.
///
/// Node ids are dense `0..node_count` with `TrieNodeId::ROOT` at 0, as
/// in [`PrunedTrie`]; implementations over other storage must present
/// the same id space.
pub trait TrieAccess {
    /// The child of `node` along `edge`, if kept.
    fn child(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId>;

    /// The parent of `node`, or `None` for the root.
    fn parent(&self, node: TrieNodeId) -> Option<TrieNodeId>;

    /// The token sequence spelled by the root-to-`node` path.
    fn tokens_of(&self, node: TrieNodeId) -> Vec<PathToken>;
}

impl TrieAccess for &PrunedTrie {
    #[inline]
    fn child(&self, node: TrieNodeId, edge: EdgeKey) -> Option<TrieNodeId> {
        PrunedTrie::child(self, node, edge)
    }

    #[inline]
    fn parent(&self, node: TrieNodeId) -> Option<TrieNodeId> {
        PrunedTrie::parent(self, node)
    }

    #[inline]
    fn tokens_of(&self, node: TrieNodeId) -> Vec<PathToken> {
        PrunedTrie::tokens_of(self, node)
    }
}

/// A queryable twig summary: the read surface the six estimation
/// algorithms consume.
///
/// Implemented by the owned [`Cst`] and by `twig-flat`'s mapped view;
/// both expose the same trie shape, counts and signatures, so estimates
/// agree bit for bit (the estimators perform the identical float-op
/// sequence either way).
pub trait Summary {
    /// The borrowed trie view (a [`TrieAccess`]).
    type Trie<'a>: TrieAccess
    where
        Self: 'a;

    /// The subpath trie.
    fn trie(&self) -> Self::Trie<'_>;

    /// Number of data tree element nodes — the `n` of the formulae.
    fn n(&self) -> u64;

    /// Signature length `L`.
    fn signature_len(&self) -> usize;

    /// The below-resolution fallback mode.
    fn fallback(&self) -> SignatureFallback;

    /// Resolves a query label to the data vocabulary.
    fn symbol(&self, label: &str) -> Option<Symbol>;

    /// Looks up the trie node for a token sequence, if fully present.
    fn lookup(&self, tokens: &[PathToken]) -> Option<TrieNodeId>;

    /// Presence count `Cp(α)` of a trie node.
    fn presence(&self, node: TrieNodeId) -> u64;

    /// Occurrence count `Co(α)` of a trie node.
    fn occurrence(&self, node: TrieNodeId) -> u64;

    /// Signature of the subpath at `node`, if it is label-rooted.
    fn signature(&self, node: TrieNodeId) -> Option<SigView<'_>>;
}

impl Summary for Cst {
    type Trie<'a> = &'a PrunedTrie;

    #[inline]
    fn trie(&self) -> &PrunedTrie {
        Cst::trie(self)
    }

    #[inline]
    fn n(&self) -> u64 {
        Cst::n(self)
    }

    #[inline]
    fn signature_len(&self) -> usize {
        Cst::signature_len(self)
    }

    #[inline]
    fn fallback(&self) -> SignatureFallback {
        Cst::fallback(self)
    }

    #[inline]
    fn symbol(&self, label: &str) -> Option<Symbol> {
        Cst::symbol(self, label)
    }

    #[inline]
    fn lookup(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        Cst::lookup(self, tokens)
    }

    #[inline]
    fn presence(&self, node: TrieNodeId) -> u64 {
        Cst::presence(self, node)
    }

    #[inline]
    fn occurrence(&self, node: TrieNodeId) -> u64 {
        Cst::occurrence(self, node)
    }

    #[inline]
    fn signature(&self, node: TrieNodeId) -> Option<SigView<'_>> {
        Cst::signature(self, node).map(|sig| SigView::Words(sig.components()))
    }
}
