//! Binary (de)serialization of the CST summary.
//!
//! The whole point of a summary data structure is to live apart from the
//! data it summarizes: an optimizer process loads the summary at startup
//! without touching the corpus. The format is a small versioned
//! little-endian layout:
//!
//! ```text
//! magic "TWIGCST\1" | n | source_bytes | size_bytes | seed
//! | signature_len | threshold | total_paths
//! | labels: count, then (len, utf8)*          — interner, in symbol order
//! | nodes: count, then (parent, edge, pc, Cp, Co, flags)*
//! | signatures: per node, 0u8 | 1u8 + L×u32 components
//! ```
//!
//! No external serialization crate is used; the format is covered by
//! roundtrip and corruption tests.

use std::io::{self, Read, Write};
use std::path::Path;

use twig_pst::{ExportedNode, PrunedTrie};
use twig_sethash::CompactSignature;
use twig_util::cast::size_to_u64;
use twig_util::Interner;

use crate::cst::Cst;
use crate::error::CstError;

const MAGIC: &[u8; 8] = b"TWIGCST\x01";

/// Errors from [`Cst::read_from`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a CST file or uses an unknown version.
    BadMagic,
    /// The input is structurally invalid.
    Corrupt(&'static str),
    /// The parts deserialized cleanly but do not assemble into a valid
    /// CST (the construction error is chained via
    /// [`source`](std::error::Error::source)).
    Invalid(CstError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(err) => write!(f, "I/O error: {err}"),
            ReadError::BadMagic => write!(f, "not a twig CST file (bad magic/version)"),
            ReadError::Corrupt(what) => write!(f, "corrupt CST file: {what}"),
            ReadError::Invalid(err) => write!(f, "CST file assembles invalid summary: {err}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(err) => Some(err),
            ReadError::Invalid(err) => Some(err),
            ReadError::BadMagic | ReadError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(err: io::Error) -> Self {
        ReadError::Io(err)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Guards against absurd counts from corrupt headers before allocating.
const MAX_REASONABLE: u32 = 1 << 28;

/// The error injected by serialization failpoints, recognizable in tests
/// by its message prefix. Referenced from failpoint arms that fold away
/// in default builds, so it is compiled (but unreachable) there. Takes
/// the full static message so the load path never formats.
fn injected(message: &'static str) -> io::Error {
    io::Error::other(message)
}

/// Forwards at most `left` bytes to the inner writer, then reports
/// [`io::ErrorKind::WriteZero`] — the torn-write failpoint's stream
/// truncation, applied without buffering the whole encoding first.
struct TornWriter<'a, W: Write> {
    inner: &'a mut W,
    left: usize,
}

impl<W: Write> Write for TornWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.left == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        let take = buf.len().min(self.left);
        let written = self.inner.write(&buf[..take])?;
        self.left -= written.min(self.left);
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Cst {
    /// Serializes the summary to `out`.
    ///
    /// Failpoint `serialize.write`: `error` fails before writing a single
    /// byte; `partial(p)` emits only the first `p` percent of the encoding
    /// and then fails — a torn write, as a crashed process would leave.
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        if let Some(fault) = twig_util::failpoint!("serialize.write") {
            match fault {
                twig_util::failpoint::Fault::Error => {
                    return Err(injected("injected fault at serialize.write"));
                }
                twig_util::failpoint::Fault::Errno(code) => {
                    return Err(io::Error::from_raw_os_error(code));
                }
                twig_util::failpoint::Fault::Partial(keep_percent) => {
                    // Tear the stream at `keep` percent of the exact
                    // encoded length, streaming straight to `out` instead
                    // of double-buffering the payload.
                    let total = self.encoded_len();
                    let keep = total
                        .checked_mul(usize::try_from(keep_percent.min(100)).unwrap_or(100))
                        .map_or(total, |scaled| scaled / 100);
                    let mut torn = TornWriter { inner: out, left: keep };
                    match self.write_payload(&mut torn) {
                        // Ran out of byte budget mid-encoding: the tear.
                        Err(err) if err.kind() == io::ErrorKind::WriteZero => {}
                        other => other?,
                    }
                    return Err(injected("injected fault at serialize.write"));
                }
            }
        }
        self.write_payload(out)
    }

    /// Exact byte length of the [`Cst::write_to`] encoding (header,
    /// label table, node table, signature table).
    fn encoded_len(&self) -> usize {
        let labels: usize = self.interner_ref().iter().map(|(_, label)| 4 + label.len()).sum();
        let signatures: usize = self
            .trie()
            .node_ids()
            .map(|id| 1 + self.signature(id).map_or(0, |sig| sig.components().len() * 4))
            .sum();
        MAGIC.len() + 4 * 8 + 3 * 4 + 4 + labels + 4 + self.trie().node_count() * 21 + signatures
    }

    fn write_payload<W: Write>(&self, out: &mut W) -> io::Result<()> {
        out.write_all(MAGIC)?;
        write_u64(out, self.n())?;
        write_u64(out, size_to_u64(self.source_bytes()))?;
        write_u64(out, size_to_u64(self.size_bytes()))?;
        write_u64(out, self.seed())?;
        write_u32(out, self.signature_len() as u32)?;
        write_u32(out, self.threshold())?;
        write_u32(out, self.trie().total_paths())?;

        let interner = self.interner_ref();
        write_u32(out, interner.len() as u32)?;
        for (_, label) in interner.iter() {
            write_u32(out, label.len() as u32)?;
            out.write_all(label.as_bytes())?;
        }

        let nodes = self.trie().export_nodes();
        write_u32(out, nodes.len() as u32)?;
        for node in &nodes {
            write_u32(out, node.parent)?;
            write_u32(out, node.edge)?;
            write_u32(out, node.path_count)?;
            write_u32(out, node.presence)?;
            write_u32(out, node.occurrence)?;
            out.write_all(&[u8::from(node.label_rooted)])?;
        }

        for id in self.trie().node_ids() {
            match self.signature(id) {
                Some(sig) => {
                    out.write_all(&[1])?;
                    for &component in sig.components() {
                        write_u32(out, component)?;
                    }
                }
                None => out.write_all(&[0])?,
            }
        }
        Ok(())
    }

    /// Deserializes a summary written by [`Cst::write_to`].
    pub fn read_from<R: Read>(input: &mut R) -> Result<Cst, ReadError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadError::BadMagic);
        }
        let n = read_u64(input)?;
        let source_bytes = usize::try_from(read_u64(input)?)
            .map_err(|_| ReadError::Corrupt("source size exceeds address space"))?;
        let size_bytes = usize::try_from(read_u64(input)?)
            .map_err(|_| ReadError::Corrupt("summary size exceeds address space"))?;
        let seed = read_u64(input)?;
        let signature_len = read_u32(input)? as usize;
        let threshold = read_u32(input)?;
        let total_paths = read_u32(input)?;
        if signature_len == 0 || signature_len > 1 << 16 {
            return Err(ReadError::Corrupt("implausible signature length"));
        }

        let label_count = read_u32(input)?;
        if label_count > MAX_REASONABLE {
            return Err(ReadError::Corrupt("implausible label count"));
        }
        let mut interner = Interner::new();
        for _ in 0..label_count {
            let len = read_u32(input)?;
            if len > 1 << 20 {
                return Err(ReadError::Corrupt("implausible label length"));
            }
            let mut buf = vec![0; len as usize];
            input.read_exact(&mut buf)?;
            let label =
                String::from_utf8(buf).map_err(|_| ReadError::Corrupt("label not UTF-8"))?;
            interner.intern(&label);
        }

        let node_count = read_u32(input)?;
        if node_count == 0 || node_count > MAX_REASONABLE {
            return Err(ReadError::Corrupt("implausible node count"));
        }
        let mut nodes = Vec::with_capacity(node_count as usize);
        for id in 0..node_count {
            let parent = read_u32(input)?;
            let edge = read_u32(input)?;
            let path_count = read_u32(input)?;
            let presence = read_u32(input)?;
            let occurrence = read_u32(input)?;
            let mut flag = [0u8; 1];
            input.read_exact(&mut flag)?;
            if id > 0 && parent >= id {
                return Err(ReadError::Corrupt("node parent out of order"));
            }
            if id == 0 && parent != u32::MAX {
                return Err(ReadError::Corrupt("first node is not a root"));
            }
            nodes.push(ExportedNode {
                parent,
                edge,
                path_count,
                presence,
                occurrence,
                label_rooted: flag[0] != 0,
            });
        }
        let trie = PrunedTrie::from_exported(nodes, total_paths, threshold);

        let mut signatures = Vec::with_capacity(node_count as usize);
        for _ in 0..node_count {
            let mut flag = [0u8; 1];
            input.read_exact(&mut flag)?;
            match flag[0] {
                0 => signatures.push(None),
                1 => {
                    let mut components = Vec::with_capacity(signature_len);
                    for _ in 0..signature_len {
                        components.push(read_u32(input)?);
                    }
                    signatures.push(Some(CompactSignature::from_components(components)));
                }
                _ => return Err(ReadError::Corrupt("bad signature flag")),
            }
        }

        Cst::from_parts(
            trie,
            signatures,
            interner,
            n,
            signature_len,
            seed,
            size_bytes,
            source_bytes,
        )
        .map_err(ReadError::Invalid)
    }

    /// Deserializes a summary from an in-memory byte buffer.
    ///
    /// Failpoint `serialize.read`: `error` fails outright; `partial(p)`
    /// hands the parser only the first `p` percent of the buffer — a
    /// short read, exercised through the real corruption-detection paths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Cst, ReadError> {
        if let Some(fault) = twig_util::failpoint!("serialize.read") {
            match fault {
                twig_util::failpoint::Fault::Error => {
                    return Err(ReadError::Io(injected("injected fault at serialize.read")));
                }
                twig_util::failpoint::Fault::Errno(code) => {
                    return Err(ReadError::Io(io::Error::from_raw_os_error(code)));
                }
                twig_util::failpoint::Fault::Partial(keep_percent) => {
                    // Failpoint percentages come from an env var, so the
                    // scale is checked like any other untrusted length.
                    let keep = bytes
                        .len()
                        .checked_mul(usize::try_from(keep_percent.min(100)).unwrap_or(100))
                        .map_or(bytes.len(), |scaled| scaled / 100);
                    let kept = bytes.get(..keep).unwrap_or(bytes);
                    return Cst::read_from(&mut &kept[..]);
                }
            }
        }
        Cst::read_from(&mut &bytes[..])
    }

    /// Reads and deserializes a summary file written by
    /// [`Cst::write_to`]. This is the loading path shared by the CLI and
    /// the `twig-serve` summary registry.
    ///
    /// Failpoint `serialize.load_file`: `error` injects an I/O failure
    /// before the file is opened (a vanished or unreadable file).
    pub fn load_file(path: &Path) -> Result<Cst, ReadError> {
        if let Some(fault) = twig_util::failpoint!("serialize.load_file") {
            match fault {
                twig_util::failpoint::Fault::Error | twig_util::failpoint::Fault::Partial(_) => {
                    return Err(ReadError::Io(injected("injected fault at serialize.load_file")));
                }
                twig_util::failpoint::Fault::Errno(code) => {
                    return Err(ReadError::Io(io::Error::from_raw_os_error(code)));
                }
            }
        }
        let bytes = std::fs::read(path)?;
        Cst::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{CstConfig, SpaceBudget};
    use crate::estimate::{Algorithm, CountKind};
    use twig_tree::{DataTree, Twig};

    fn sample_cst() -> Cst {
        let tree = DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>Anna</author><year>1999</year></book>",
            "<book><author>Anna</author><year>1999</year></book>",
            "<book><author>Bo</author><year>2000</year></book>",
            "</dblp>"
        ))
        .unwrap();
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid")
    }

    #[test]
    fn roundtrip_preserves_estimates() {
        let cst = sample_cst();
        let mut buffer = Vec::new();
        cst.write_to(&mut buffer).unwrap();
        let restored = Cst::read_from(&mut buffer.as_slice()).unwrap();
        assert_eq!(restored.n(), cst.n());
        assert_eq!(restored.node_count(), cst.node_count());
        assert_eq!(restored.size_bytes(), cst.size_bytes());
        assert_eq!(restored.signature_len(), cst.signature_len());
        let queries = [
            r#"book(author("Anna"),year("1999"))"#,
            r#"book(author("Bo"))"#,
            r#"dblp(book(year("2000")))"#,
        ];
        for text in queries {
            let query = Twig::parse(text).unwrap();
            for algo in Algorithm::ALL {
                for kind in [CountKind::Presence, CountKind::Occurrence] {
                    assert_eq!(
                        cst.estimate(&query, algo, kind),
                        restored.estimate(&query, algo, kind),
                        "{algo} {kind:?} {text}"
                    );
                }
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buffer = Vec::new();
        sample_cst().write_to(&mut buffer).unwrap();
        buffer[0] ^= 0xFF;
        assert!(matches!(Cst::read_from(&mut buffer.as_slice()), Err(ReadError::BadMagic)));
    }

    #[test]
    fn truncated_input_rejected() {
        let mut buffer = Vec::new();
        sample_cst().write_to(&mut buffer).unwrap();
        for cut in [4usize, 20, buffer.len() / 2, buffer.len() - 1] {
            let truncated = &buffer[..cut];
            assert!(Cst::read_from(&mut &truncated[..]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error as _;
        // Io wraps the underlying io::Error.
        let truncated: &[u8] = &[];
        let err = Cst::read_from(&mut &truncated[..]).expect_err("empty input");
        assert!(matches!(err, ReadError::Io(_)));
        assert!(err.source().is_some(), "Io chains to io::Error");
        // Invalid chains to the CstError construction failure; the chain
        // walks to a terminal root (source of the root is None).
        let invalid =
            ReadError::Invalid(crate::CstError::SignatureTableMismatch { signatures: 1, nodes: 2 });
        let root = invalid.source().expect("Invalid chains to CstError");
        assert!(root.to_string().contains("signature table"));
        assert!(root.source().is_none());
        // Terminal variants have no source.
        assert!(ReadError::BadMagic.source().is_none());
        assert!(ReadError::Corrupt("x").source().is_none());
    }

    #[test]
    fn load_file_and_from_bytes_roundtrip() {
        let cst = sample_cst();
        let mut buffer = Vec::new();
        cst.write_to(&mut buffer).unwrap();
        let restored = Cst::from_bytes(&buffer).unwrap();
        assert_eq!(restored.node_count(), cst.node_count());

        let dir = std::env::temp_dir().join(format!("twig-serialize-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.cst");
        std::fs::write(&path, &buffer).unwrap();
        let loaded = Cst::load_file(&path).unwrap();
        assert_eq!(loaded.node_count(), cst.node_count());
        assert!(matches!(Cst::load_file(&dir.join("missing.cst")), Err(ReadError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_parent_order_rejected() {
        let cst = sample_cst();
        let mut buffer = Vec::new();
        cst.write_to(&mut buffer).unwrap();
        // Node table starts after magic(8) + 4×u64 + 3×u32 + labels.
        // Rather than computing the offset, flip the parent field of the
        // second node by scanning for its known little-endian value: the
        // second node's parent is always 0 (a child of the root). Corrupt
        // a wide swath of the tail instead — read must fail, not panic.
        let tail = buffer.len() / 2;
        for byte in &mut buffer[tail..] {
            *byte = 0xFF;
        }
        assert!(Cst::read_from(&mut buffer.as_slice()).is_err());
    }
}
