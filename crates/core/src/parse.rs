//! Query path parsing strategies (Sec. 3.3): maximal, piecewise-maximal
//! and greedy.

use std::cell::RefCell;

use twig_pst::TrieNodeId;
use twig_tree::Twig;
use twig_util::FxHashSet;

use crate::query::{CompiledQuery, Token, Unit};
use crate::summary::{Summary, TrieAccess};

/// Reusable per-thread buffers for the parsing hot loops: one walk
/// buffer for trie descents and one unit set for coverage checks. Kept
/// in a thread-local so concurrent estimates (server workers) never
/// contend, and cleared — never shrunk — between uses.
pub(crate) struct EstimateScratch {
    walk: Vec<TrieNodeId>,
    covered: FxHashSet<Unit>,
}

thread_local! {
    pub(crate) static SCRATCH: RefCell<EstimateScratch> = RefCell::new(EstimateScratch {
        walk: Vec::new(),
        covered: FxHashSet::default(),
    });
}

/// A parsed subpath: a token range of one query path that exists in the
/// CST.
#[derive(Debug, Clone)]
pub struct Piece {
    /// Index of the query path in [`CompiledQuery::paths`].
    pub path: usize,
    /// Start token index (inclusive).
    pub start: usize,
    /// End token index (exclusive).
    pub end: usize,
    /// The CST node for exactly this token range.
    pub trie: TrieNodeId,
    /// The query units covered, in order (length `end - start`).
    pub units: Vec<Unit>,
}

impl Piece {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Pieces are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when this piece's unit chain is contained in `other`'s.
    ///
    /// Units are globally unique positions of the query tree and pieces
    /// are downward chains, so containment is just subset-ness.
    pub fn contained_in(&self, other: &Piece) -> bool {
        if self.units.len() > other.units.len() {
            return false;
        }
        self.units.iter().all(|u| other.units.contains(u))
    }
}

/// Walks the CST from token `start` of `path` into `nodes` (cleared
/// first): the trie node per matched depth (index `d` = node after
/// `d+1` tokens).
fn walk_into<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    path: usize,
    start: usize,
    nodes: &mut Vec<TrieNodeId>,
) {
    nodes.clear();
    let qpath = &query.paths[path];
    let mut node = TrieNodeId::ROOT;
    for token in &qpath.tokens[start..] {
        let Token::Ok(pt) = token else { break };
        match cst.trie().child(node, pt.edge()) {
            Some(next) => {
                node = next;
                nodes.push(node);
            }
            None => break,
        }
    }
}

/// The piece for one walked match, or `None` for an empty walk (every
/// caller guards against one, but the lookup stays total).
fn piece_at(
    query: &CompiledQuery,
    path: usize,
    start: usize,
    nodes: &[TrieNodeId],
) -> Option<Piece> {
    let (&trie, _) = nodes.split_last()?;
    let end = start + nodes.len();
    Some(Piece { path, start, end, trie, units: query.paths[path].units[start..end].to_vec() })
}

/// Maximal parsing of one token range: all matches not contained in
/// another match of the same range (the MO parse of Jagadish, Ng &
/// Srivastava, PODS 1999).
pub fn maximal_in_range<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    path: usize,
    lo: usize,
    hi: usize,
) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut best_end = lo;
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        for start in lo..hi {
            if !matches!(query.paths[path].tokens[start], Token::Ok(_)) {
                continue;
            }
            walk_into(cst, query, path, start, &mut scratch.walk);
            scratch.walk.truncate(hi - start);
            if scratch.walk.is_empty() {
                continue;
            }
            let end = start + scratch.walk.len();
            // Keep only matches extending past everything seen: starts are
            // increasing, so `end > best_end` is exactly non-containment.
            if end > best_end {
                best_end = end;
                if let Some(piece) = piece_at(query, path, start, &scratch.walk) {
                    pieces.push(piece);
                }
            }
        }
    });
    pieces
}

/// Removes pieces whose region is contained in another piece's region
/// (cross-path containment: the paper drops `a.b.c` when `a.b.c.d` from a
/// sibling path covers it) and exact duplicates from shared prefixes.
pub fn filter_contained(pieces: Vec<Piece>) -> Vec<Piece> {
    let mut keep = vec![true; pieces.len()];
    for i in 0..pieces.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..pieces.len() {
            if i == j || !keep[j] {
                continue;
            }
            if pieces[i].contained_in(&pieces[j]) && !(pieces[j].contained_in(&pieces[i]) && j > i)
            {
                keep[i] = false;
                break;
            }
        }
    }
    let mut kept = Vec::with_capacity(pieces.len());
    for (piece, keep_this) in pieces.into_iter().zip(keep) {
        if keep_this {
            kept.push(piece);
        }
    }
    kept
}

/// The **maximal** strategy: MO-parse every root-to-leaf path, then drop
/// cross-path contained pieces.
pub fn maximal_pieces<S: Summary>(cst: &S, query: &CompiledQuery) -> Vec<Piece> {
    let mut pieces = Vec::new();
    for path in 0..query.paths.len() {
        let len = query.paths[path].tokens.len();
        pieces.extend(maximal_in_range(cst, query, path, 0, len));
    }
    filter_contained(pieces)
}

/// The **piecewise-maximal** strategy (PMOSH, Sec. 4.3): split each path
/// into segments at root/branch/leaf boundaries (segments share their
/// boundary node), MO-parse each segment independently.
pub fn piecewise_maximal_pieces<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    twig: &Twig,
) -> Vec<Piece> {
    let mut pieces = Vec::new();
    for path in 0..query.paths.len() {
        let qpath = &query.paths[path];
        let len = qpath.tokens.len();
        // Boundaries: start of path, every branch element, end of path.
        let mut boundaries = vec![0usize];
        for (i, unit) in qpath.units.iter().enumerate() {
            if let Unit::El(node) = unit {
                if i > 0 && twig.is_branch(*node) {
                    boundaries.push(i);
                }
            }
        }
        boundaries.push(len.saturating_sub(1));
        boundaries.dedup();
        if boundaries.len() < 2 {
            // Single-token path: one degenerate segment.
            pieces.extend(maximal_in_range(cst, query, path, 0, len));
        } else {
            for window in boundaries.windows(2) {
                let (lo, hi) = (window[0], (window[1] + 1).min(len));
                pieces.extend(maximal_in_range(cst, query, path, lo, hi));
            }
        }
    }
    filter_contained(pieces)
}

/// The **greedy** strategy of Krishnan, Vitter & Iyer (SIGMOD 1996):
/// non-overlapping longest matches,
/// left to right. Returns `None` when some token cannot be matched at a
/// piece boundary (the estimate is then 0).
pub fn greedy_pieces<S: Summary>(cst: &S, query: &CompiledQuery) -> Option<Vec<Piece>> {
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let mut pieces: Vec<Piece> = Vec::new();
        for path in 0..query.paths.len() {
            let qpath = &query.paths[path];
            let mut i = 0;
            while i < qpath.tokens.len() {
                match qpath.tokens[i] {
                    Token::Wild => {
                        i += 1;
                        continue;
                    }
                    Token::Unknown => return None,
                    Token::Ok(_) => {}
                }
                walk_into(cst, query, path, i, &mut scratch.walk);
                if scratch.walk.is_empty() {
                    return None;
                }
                let piece = piece_at(query, path, i, &scratch.walk)?;
                i = piece.end;
                // Dedup shared-prefix pieces across paths.
                if !pieces.iter().any(|p| p.units == piece.units) {
                    pieces.push(piece);
                }
            }
        }
        Some(pieces)
    })
}

/// True when every coverable unit of the query is covered by some piece
/// (a gap means the true count is below the prune threshold; the
/// estimators return 0).
pub fn covers_query(query: &CompiledQuery, pieces: &[Piece]) -> bool {
    SCRATCH.with(|scratch| {
        let covered = &mut scratch.borrow_mut().covered;
        covered.clear();
        covered.extend(pieces.iter().flat_map(|p| p.units.iter().copied()));
        query.coverable_units().all(|u| covered.contains(&u))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstConfig, SpaceBudget};
    use twig_tree::DataTree;

    fn fixture() -> (DataTree, Cst) {
        let tree = DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>Anna</author><year>1999</year></book>",
            "<book><author>Anton</author><year>1999</year></book>",
            "<book><author>Bo</author><year>2000</year></book>",
            "</dblp>"
        ))
        .unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        (tree, cst)
    }

    fn compiled(cst: &Cst, expr: &str) -> (Twig, CompiledQuery) {
        let twig = Twig::parse(expr).unwrap();
        let query = CompiledQuery::compile(cst, &twig);
        (twig, query)
    }

    #[test]
    fn fully_present_path_is_one_piece() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, r#"dblp(book(author("An")))"#);
        let pieces = maximal_pieces(&cst, &query);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].len(), 5); // dblp book author 'A' 'n'
        assert!(covers_query(&query, &pieces));
    }

    #[test]
    fn unpruned_cst_covers_positive_queries() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, r#"book(author("Bo"),year("2000"))"#);
        let pieces = maximal_pieces(&cst, &query);
        assert!(covers_query(&query, &pieces));
    }

    #[test]
    fn shared_prefix_deduplicated() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, r#"dblp(book(author,year))"#);
        let pieces = maximal_pieces(&cst, &query);
        // dblp.book.author and dblp.book.year both fully present; neither
        // contains the other, both kept exactly once.
        assert_eq!(pieces.len(), 2);
    }

    #[test]
    fn absent_combination_parses_into_overlapping_pieces() {
        let (_, cst) = fixture();
        // author "Bo" exists, year 1999 exists, but "Bo"+"1999" books do
        // not — paths still parse individually.
        let (_, query) = compiled(&cst, r#"book(author("Bo"),year("1999"))"#);
        let pieces = maximal_pieces(&cst, &query);
        assert!(covers_query(&query, &pieces));
    }

    #[test]
    fn unknown_label_leaves_gap() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, "book(publisher)");
        let pieces = maximal_pieces(&cst, &query);
        assert!(!covers_query(&query, &pieces));
        assert!(greedy_pieces(&cst, &query).is_none());
    }

    #[test]
    fn pruned_cst_creates_overlapping_maximal_pieces() {
        let (tree, _) = fixture();
        // Aggressive pruning: only frequent subpaths survive.
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(3), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let (_, query) = compiled(&cst, r#"dblp(book(author))"#);
        let pieces = maximal_pieces(&cst, &query);
        // dblp.book.author has pc=3 so it's one piece even here.
        assert!(covers_query(&query, &pieces));
        for w in pieces.windows(2) {
            assert!(w[1].start <= w[0].end, "maximal pieces must chain");
        }
    }

    #[test]
    fn greedy_pieces_do_not_overlap() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, r#"book(author("An"),year("1999"))"#);
        let pieces = greedy_pieces(&cst, &query).unwrap();
        for w in pieces.windows(2) {
            if w[0].path == w[1].path {
                assert!(w[1].start >= w[0].end);
            }
        }
        assert!(covers_query(&query, &pieces));
    }

    #[test]
    fn piecewise_segments_at_branch() {
        let (_, cst) = fixture();
        let (twig, query) = compiled(&cst, r#"dblp(book(author("An"),year("1999")))"#);
        let pieces = piecewise_maximal_pieces(&cst, &query, &twig);
        // Segments: dblp.book, book.author.An, book.year.1999 — pieces
        // cannot span the branch node `book` together with both sides.
        assert!(covers_query(&query, &pieces));
        let book_unit = query.paths[0].units[1];
        for piece in &pieces {
            if piece.units.contains(&book_unit) && piece.len() > 1 {
                // A piece through `book` stays within one segment: it may
                // not contain both an author unit and a year unit.
                let has_author = piece.units.contains(&query.paths[0].units[2]);
                let has_year = piece.units.contains(&query.paths[1].units[2]);
                assert!(!(has_author && has_year));
            }
        }
    }

    #[test]
    fn containment_filter_drops_nested() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, r#"dblp(book(author("An")))"#);
        let mut pieces = maximal_pieces(&cst, &query);
        // Manufacture a contained piece: the prefix of the full piece.
        let full = pieces[0].clone();
        let sub = Piece {
            path: full.path,
            start: full.start,
            end: full.end - 1,
            trie: cst.trie().parent(full.trie).expect("full piece has depth > 1"),
            units: full.units[..full.units.len() - 1].to_vec(),
        };
        pieces.push(sub);
        let filtered = filter_contained(pieces);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].units, full.units);
    }

    #[test]
    fn wildcard_splits_parse() {
        let (_, cst) = fixture();
        let (_, query) = compiled(&cst, r#"dblp(*(author("An")))"#);
        let pieces = maximal_pieces(&cst, &query);
        // Two pieces: "dblp" and "author.An"; the wildcard is exempt.
        assert!(covers_query(&query, &pieces));
        assert!(pieces.iter().all(|p| p.units.len() <= 3));
    }
}
