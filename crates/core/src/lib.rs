//! Twig selectivity estimation — the primary contribution of
//! *"Counting Twig Matches in a Tree"* (ICDE 2001).
//!
//! Given a node-labeled data tree `T` and a twig query `Q`, estimate the
//! number of matches of `Q` in `T` using only a small summary:
//!
//! 1. **Summary construction** ([`Cst`], [`CstConfig`]): build the path
//!    suffix trie of `T` (crate `twig-pst`), prune it to a space budget,
//!    and attach a min-hash signature (crate `twig-sethash`) of the set of
//!    rooting data nodes to every label-rooted subpath. The result — the
//!    *correlated subpath tree* — captures both subpath frequencies and
//!    the correlations between subpaths sharing a root.
//! 2. **Estimation** ([`Cst::estimate`], [`Algorithm`]): parse the query's
//!    root-to-leaf paths into subpaths present in the CST, group subpaths
//!    into *twiglets* at branch nodes, estimate twiglet counts by
//!    signature intersection, and combine everything with
//!    maximal-overlap (MO) conditioning.
//!
//! Six estimation algorithms are provided (Table 1 of the paper):
//!
//! | Algorithm | Path info | Correlations | Twiglets | Combination |
//! |-----------|-----------|--------------|----------|-------------|
//! | [`Algorithm::Leaf`]   | no  | no  | single leaf strings | MO |
//! | [`Algorithm::Greedy`] | yes | no  | single paths | independence |
//! | [`Algorithm::PureMo`] | yes | no  | single paths | MO |
//! | [`Algorithm::Mosh`]   | yes | yes | deep, often skinny | MO |
//! | [`Algorithm::Pmosh`]  | yes | yes | bushy, often shallow | MO |
//! | [`Algorithm::Msh`]    | yes | yes | deep *and* bushy | MO |
//!
//! Both counting semantics of Sec. 5 are supported:
//! [`CountKind::Presence`] (distinct rooting nodes) and
//! [`CountKind::Occurrence`] (total 1-1 mappings, estimated from presence
//! via per-subpath occurrence/presence ratios under the paper's
//! uniformity assumption).
//!
//! # Example
//!
//! ```
//! use twig_tree::{DataTree, Twig};
//! use twig_core::{Algorithm, CountKind, Cst, CstConfig};
//!
//! let xml = r#"<dblp>
//!   <book><author>Suciu</author><year>1999</year></book>
//!   <book><author>Korn</author><year>1999</year></book>
//! </dblp>"#;
//! let tree = DataTree::from_xml(xml).unwrap();
//! let cst = Cst::build(&tree, &CstConfig::default()).unwrap();
//! let query = Twig::parse(r#"book(author("Su"),year("1999"))"#).unwrap();
//! let estimate = cst.estimate(&query, Algorithm::Mosh, CountKind::Presence);
//! assert!(estimate >= 0.0);
//! ```

#[cfg(any(test, feature = "audit"))]
pub mod audit;
pub mod combine;
pub mod cst;
pub mod error;
pub mod estimate;
pub mod explain;
pub mod lore;
pub mod ordered;
pub mod parse;
pub mod plan;
pub mod query;
pub mod serialize;
pub mod summary;
pub mod twiglets;

#[cfg(any(test, feature = "audit"))]
pub use audit::AuditViolation;
pub use cst::{Cst, CstConfig, SignatureFallback, SpaceBudget};
pub use error::CstError;
pub use estimate::{
    estimate_raw_summary, estimate_summary, sibling_discount_summary, Algorithm, CountKind,
};
pub use plan::QueryPlan;
pub use serialize::ReadError;
pub use summary::{Summary, TrieAccess};
