//! The six estimation algorithms (Sec. 4, Table 1).

use twig_pst::PathToken;
use twig_tree::Twig;
use twig_util::cast::{count_to_f64, size_to_f64};

use crate::combine::{combine, Element};
use crate::cst::Cst;
use crate::parse::{
    covers_query, greedy_pieces, maximal_in_range, maximal_pieces, piecewise_maximal_pieces, Piece,
};
use crate::plan::{LeafPathPlan, PlannedEstimator, QueryPlan};
use crate::query::{CompiledQuery, Token};
use crate::summary::Summary;
use crate::twiglets::{mosh_twiglets, msh_twiglets};

/// Which count is being estimated (Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CountKind {
    /// Distinct data nodes rooting the twig (Definition 2).
    Presence,
    /// Total 1-1 mappings (Definition 3).
    Occurrence,
}

/// An estimation algorithm from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Baseline: ignores all structure, multiplies per-leaf-string MO
    /// estimates ("the count of `book.author.Stonebraker` is the MO
    /// estimate for `Stonebraker`").
    Leaf,
    /// Baseline: greedy non-overlapping parse, independence combination
    /// (Krishnan–Vitter–Iyer).
    Greedy,
    /// Maximal parse, MO conditioning, no correlations (Sec. 4.1).
    PureMo,
    /// Maximal overlap with set hashing (Sec. 4.2): deep but often skinny
    /// twiglets.
    Mosh,
    /// Piecewise MOSH (Sec. 4.3): bushy but often shallow twiglets.
    Pmosh,
    /// Maximal set hashing (Sec. 4.4): balances deep and bushy.
    Msh,
}

impl Algorithm {
    /// All algorithms in the paper's Table 1 order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Leaf,
        Algorithm::Greedy,
        Algorithm::PureMo,
        Algorithm::Mosh,
        Algorithm::Pmosh,
        Algorithm::Msh,
    ];

    /// True for the algorithms that consume set-hash signatures (MOSH,
    /// PMOSH, MSH). The others run against a signature-free summary.
    pub fn uses_signatures(self) -> bool {
        matches!(self, Algorithm::Mosh | Algorithm::Pmosh | Algorithm::Msh)
    }

    /// Position in [`Algorithm::ALL`] (the plan's per-algorithm slot).
    pub(crate) fn index(self) -> usize {
        match self {
            Algorithm::Leaf => 0,
            Algorithm::Greedy => 1,
            Algorithm::PureMo => 2,
            Algorithm::Mosh => 3,
            Algorithm::Pmosh => 4,
            Algorithm::Msh => 5,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Leaf => "Leaf",
            Algorithm::Greedy => "Greedy",
            Algorithm::PureMo => "MO",
            Algorithm::Mosh => "MOSH",
            Algorithm::Pmosh => "PMOSH",
            Algorithm::Msh => "MSH",
        }
    }

    /// The qualitative property row of the paper's Table 1:
    /// `(path info stored, correlations stored, twiglet shape,
    /// combination technique)`.
    pub fn properties(self) -> (&'static str, &'static str, &'static str, &'static str) {
        match self {
            Algorithm::Leaf => ("Not stored", "Not stored", "Single path", "MO"),
            Algorithm::Greedy => ("Stored", "Not stored", "Single path", "Greedy"),
            Algorithm::PureMo => ("Stored", "Not stored", "Single path", "MO"),
            Algorithm::Mosh => ("Stored", "Stored", "Deep but often skinny", "MO"),
            Algorithm::Pmosh => ("Stored", "Stored", "Bushy but often shallow", "MO"),
            Algorithm::Msh => ("Stored", "Stored", "Balance between deep and bushy", "MO"),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Cst {
    /// Estimates the number of matches of `twig` using `algorithm`.
    ///
    /// Returns a non-negative count estimate; 0.0 when some required query
    /// piece is absent from the summary (its true count is below the prune
    /// threshold).
    pub fn estimate(&self, twig: &Twig, algorithm: Algorithm, kind: CountKind) -> f64 {
        estimate_summary(self, twig, algorithm, kind)
    }

    /// The estimate before the sibling-multiplicity discount — the
    /// paper-literal combination result.
    ///
    /// With `plan: Some(_)`, the kind-independent stages (compile, parse,
    /// twiglet grouping) are read from — and on first use written into —
    /// the [`QueryPlan`]; the plan must belong to this summary and this
    /// twig. Both paths run the same build and run code, so the result is
    /// bit-identical with and without a plan.
    pub fn estimate_raw(
        &self,
        twig: &Twig,
        algorithm: Algorithm,
        kind: CountKind,
        plan: Option<&QueryPlan>,
    ) -> f64 {
        estimate_raw_summary(self, twig, algorithm, kind, plan)
    }

    /// The sibling-injectivity correction (an implementation refinement
    /// beyond the paper; see DESIGN.md §3).
    ///
    /// A twig match maps sibling query nodes to *distinct* data children
    /// (Definition 1), but the combination formulae treat legs
    /// independently: a query with two same-labeled legs under one parent
    /// (`cite(year("1"),year("19"))`) is priced as if one `year` child
    /// could serve both. The CST knows the average sibling multiplicity
    /// `m = Co/Cp` of each `parent.child` label pair, so each group of
    /// `k ≥ 2` same-labeled sibling legs is discounted by the injective
    /// assignment ratio `m·(m−1)·…·(m−k+1) / m^k` — exactly 0 when the
    /// data never has `k` such children (the dominant failure mode of the
    /// glued negative workload), and a mild correction otherwise (three
    /// authors, two author legs: `(3·2)/3² = 2/3`).
    ///
    /// Applied uniformly to every algorithm so their relative comparison
    /// is unaffected.
    pub fn sibling_discount(&self, twig: &Twig) -> f64 {
        sibling_discount_summary(self, twig)
    }

    /// Convenience: estimates with every algorithm, in [`Algorithm::ALL`]
    /// order.
    pub fn estimate_all(&self, twig: &Twig, kind: CountKind) -> [(Algorithm, f64); 6] {
        Algorithm::ALL.map(|algo| (algo, self.estimate(twig, algo, kind)))
    }

    /// Did MOSH and MSH decompose this query into different twiglets?
    /// (Drives the Fig. 5(b) / Fig. 6(a) experiments.)
    pub fn parses_differently(&self, twig: &Twig) -> bool {
        let query = CompiledQuery::compile(self, twig);
        let pieces = maximal_pieces(self, &query);
        let (mosh, _) = mosh_twiglets(&query, &pieces);
        let msh = msh_twiglets(self, &query, &pieces);
        if mosh.len() != msh.len() {
            return true;
        }
        // Compare at chain granularity: two decompositions can cover the
        // same query units with different chain sets (MSH adds suffix
        // chains), and that is a different parse.
        fn canon(tw: &crate::twiglets::Twiglet) -> Vec<&[crate::query::Unit]> {
            let mut chains: Vec<&[crate::query::Unit]> =
                tw.chains.iter().map(|c| c.units.as_slice()).collect();
            chains.sort();
            chains
        }
        let mut a: Vec<_> = mosh.iter().map(canon).collect();
        let mut b: Vec<_> = msh.iter().map(canon).collect();
        a.sort();
        b.sort();
        a != b
    }
}

/// Estimates the number of matches of `twig` in the tree summarized by
/// any [`Summary`] — the generic form of [`Cst::estimate`], shared with
/// the zero-copy flat summary.
pub fn estimate_summary<S: Summary>(
    summary: &S,
    twig: &Twig,
    algorithm: Algorithm,
    kind: CountKind,
) -> f64 {
    estimate_raw_summary(summary, twig, algorithm, kind, None)
        * sibling_discount_summary(summary, twig)
}

/// The estimate before the sibling-multiplicity discount — the generic
/// form of [`Cst::estimate_raw`]. With `plan: Some(_)`, the
/// kind-independent stages are read from — and on first use written into
/// — the [`QueryPlan`]; both paths run the same code, so the result is
/// bit-identical with and without a plan.
pub fn estimate_raw_summary<S: Summary>(
    summary: &S,
    twig: &Twig,
    algorithm: Algorithm,
    kind: CountKind,
    plan: Option<&QueryPlan>,
) -> f64 {
    match plan {
        Some(plan) => {
            let query = plan.compiled_or_init(|| CompiledQuery::compile(summary, twig));
            let planned = plan
                .estimator_or_init(algorithm, || build_estimator(summary, twig, query, algorithm));
            run_estimator(summary, query, planned, kind)
        }
        None => {
            let query = CompiledQuery::compile(summary, twig);
            let planned = build_estimator(summary, twig, &query, algorithm);
            run_estimator(summary, &query, &planned, kind)
        }
    }
}

/// The sibling-injectivity correction — the generic form of
/// [`Cst::sibling_discount`] (see that method for the rationale).
pub fn sibling_discount_summary<S: Summary>(summary: &S, twig: &Twig) -> f64 {
    use twig_pst::PathToken;
    use twig_tree::TwigLabel;
    let mut discount = 1.0;
    for idx in 0..twig.node_count() as u32 {
        let parent = twig_tree::TwigNodeId(idx);
        let TwigLabel::Element(parent_label) = twig.label(parent) else {
            continue;
        };
        let Some(parent_sym) = summary.symbol(parent_label) else {
            continue;
        };
        // Count same-labeled element children.
        let mut groups: Vec<(&str, usize)> = Vec::new();
        for &child in twig.children(parent) {
            let TwigLabel::Element(child_label) = twig.label(child) else {
                continue;
            };
            match groups.iter_mut().find(|(l, _)| *l == child_label.as_str()) {
                Some((_, count)) => *count += 1,
                None => groups.push((child_label, 1)),
            }
        }
        for (child_label, k) in groups {
            if k < 2 {
                continue;
            }
            let Some(child_sym) = summary.symbol(child_label) else {
                continue;
            };
            let Some(node) =
                summary.lookup(&[PathToken::Element(parent_sym), PathToken::Element(child_sym)])
            else {
                continue; // pair below threshold: no evidence, no discount
            };
            let cp = count_to_f64(summary.presence(node));
            let co = count_to_f64(summary.occurrence(node));
            if cp <= 0.0 {
                continue;
            }
            let multiplicity = co / cp;
            let mut factor = 1.0;
            for i in 0..k {
                factor *= (multiplicity - size_to_f64(i)).max(0.0) / multiplicity;
            }
            discount *= factor;
        }
    }
    discount
}

/// Builds the kind-independent stages of one algorithm: compile-time
/// walks, piece parsing, twiglet grouping, element assembly. This is the
/// stage a [`QueryPlan`] memoizes.
pub(crate) fn build_estimator<S: Summary>(
    cst: &S,
    twig: &Twig,
    query: &CompiledQuery,
    algorithm: Algorithm,
) -> PlannedEstimator {
    match algorithm {
        Algorithm::Leaf => PlannedEstimator::Leaf(build_leaf_paths(cst, query)),
        Algorithm::Greedy => PlannedEstimator::Greedy(greedy_pieces(cst, query)),
        Algorithm::PureMo => {
            let pieces = maximal_pieces(cst, query);
            if !covers_query(query, &pieces) {
                return PlannedEstimator::Elements(None);
            }
            let elements = pieces.into_iter().map(Element::Single).collect();
            PlannedEstimator::Elements(Some(elements))
        }
        Algorithm::Mosh => {
            PlannedEstimator::Elements(mosh_elements(query, maximal_pieces(cst, query)))
        }
        Algorithm::Pmosh => PlannedEstimator::Elements(mosh_elements(
            query,
            piecewise_maximal_pieces(cst, query, twig),
        )),
        Algorithm::Msh => {
            let pieces = maximal_pieces(cst, query);
            if !covers_query(query, &pieces) {
                return PlannedEstimator::Elements(None);
            }
            let twiglets = msh_twiglets(cst, query, &pieces);
            // MSH keeps the full maximal pieces alongside the suffix
            // twiglets (Sec. 4.4: `a.b.c.d` still heads the paper's
            // formula) — but a piece whose region lies entirely inside
            // a twiglet (like the paper's `b.c.f.g`, absorbed by the
            // twiglet at `b`) must not appear separately: processed
            // first it would cover the twiglet's region and silently
            // discard its correlation estimate.
            let regions: Vec<twig_util::FxHashSet<crate::query::Unit>> =
                twiglets.iter().map(crate::twiglets::Twiglet::units).collect();
            let mut elements: Vec<Element> = pieces
                .into_iter()
                .filter(|p| {
                    !regions.iter().any(|region| p.units.iter().all(|u| region.contains(u)))
                })
                .map(Element::Single)
                .collect();
            elements.extend(twiglets.into_iter().map(Element::Group));
            PlannedEstimator::Elements(Some(elements))
        }
    }
}

/// MOSH/PMOSH element assembly over an already-parsed piece set.
fn mosh_elements(query: &CompiledQuery, pieces: Vec<Piece>) -> Option<Vec<Element>> {
    if !covers_query(query, &pieces) {
        return None;
    }
    let (twiglets, consumed) = mosh_twiglets(query, &pieces);
    let mut elements: Vec<Element> = pieces
        .into_iter()
        .zip(&consumed)
        .filter(|(_, &used)| !used)
        .map(|(p, _)| Element::Single(p))
        .collect();
    elements.extend(twiglets.into_iter().map(Element::Group));
    Some(elements)
}

/// Runs the count-dependent stage over a built estimator — the only work
/// a plan-cache hit re-does per estimate.
pub(crate) fn run_estimator<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    planned: &PlannedEstimator,
    kind: CountKind,
) -> f64 {
    match planned {
        PlannedEstimator::Leaf(paths) => run_leaf(cst, query, paths, kind),
        PlannedEstimator::Greedy(pieces) => run_greedy(cst, pieces.as_deref(), kind),
        PlannedEstimator::Elements(None) => 0.0,
        PlannedEstimator::Elements(Some(elements)) => combine(cst, query, elements, kind),
    }
}

/// The parse stage of the Leaf baseline: per value path, the maximal
/// parse of the value char range.
fn build_leaf_paths<S: Summary>(cst: &S, query: &CompiledQuery) -> Vec<LeafPathPlan> {
    let mut plans = Vec::new();
    for path in 0..query.paths.len() {
        let qpath = &query.paths[path];
        // The value char range, if this path ends in a value leaf.
        let Some(first_char) =
            qpath.tokens.iter().position(|t| matches!(t, Token::Ok(PathToken::Char(_))))
        else {
            continue;
        };
        let len = qpath.tokens.len();
        let pieces = maximal_in_range(cst, query, path, first_char, len);
        plans.push(LeafPathPlan { path, first_char, len, pieces });
    }
    plans
}

/// The Leaf baseline: per value leaf, MO-estimate the leaf string from
/// pure string-fragment statistics, multiply the per-leaf probabilities.
fn run_leaf<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    paths: &[LeafPathPlan],
    kind: CountKind,
) -> f64 {
    let n = count_to_f64(cst.n());
    if n == 0.0 {
        return 0.0;
    }
    let mut result = n;
    for plan in paths {
        let qpath = &query.paths[plan.path];
        // Coverage of the string.
        let mut covered_to = plan.first_char;
        let mut prob = 1.0;
        for piece in &plan.pieces {
            if piece.start > covered_to {
                return 0.0; // gap: fragment below threshold
            }
            let count = match kind {
                CountKind::Presence => count_to_f64(cst.presence(piece.trie)),
                CountKind::Occurrence => count_to_f64(cst.occurrence(piece.trie)),
            };
            if count == 0.0 {
                return 0.0;
            }
            let overlap = covered_to.saturating_sub(piece.start);
            let denom = if overlap == 0 {
                n
            } else {
                // The value range holds only resolved char tokens; an
                // unresolved token here means the query compiler changed
                // under us, and the conditioning falls back to `n`.
                let tokens: Option<Vec<PathToken>> = qpath.tokens
                    [piece.start..piece.start + overlap]
                    .iter()
                    .map(|t| match t {
                        Token::Ok(pt) => Some(*pt),
                        _ => None,
                    })
                    .collect();
                match tokens.as_deref().and_then(|tokens| cst.lookup(tokens)) {
                    Some(node) => (match kind {
                        CountKind::Presence => count_to_f64(cst.presence(node)),
                        CountKind::Occurrence => count_to_f64(cst.occurrence(node)),
                    })
                    .max(count),
                    None => n,
                }
            };
            prob *= count / denom;
            covered_to = piece.end;
        }
        if covered_to < plan.len {
            return 0.0;
        }
        result *= prob;
    }
    result
}

/// The Greedy baseline: greedy parse, independence combination.
fn run_greedy<S: Summary>(cst: &S, pieces: Option<&[Piece]>, kind: CountKind) -> f64 {
    let n = count_to_f64(cst.n());
    if n == 0.0 {
        return 0.0;
    }
    let Some(pieces) = pieces else {
        return 0.0;
    };
    let mut result = n;
    for piece in pieces {
        let count = match kind {
            CountKind::Presence => count_to_f64(cst.presence(piece.trie)),
            CountKind::Occurrence => count_to_f64(cst.occurrence(piece.trie)),
        };
        result *= count / n;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{CstConfig, SpaceBudget};
    use twig_tree::DataTree;

    /// A corpus with strong author↔year correlation: "Anna" books are
    /// always 1999, "Bo" books always 2000.
    fn corpus() -> DataTree {
        let mut xml = String::from("<dblp>");
        for _ in 0..20 {
            xml.push_str("<book><author>Anna</author><year>1999</year></book>");
        }
        for _ in 0..20 {
            xml.push_str("<book><author>Bo</author><year>2000</year></book>");
        }
        for _ in 0..10 {
            xml.push_str("<book><author>Cleo</author><year>1999</year></book>");
        }
        xml.push_str("</dblp>");
        DataTree::from_xml(&xml).unwrap()
    }

    fn full_cst(tree: &DataTree) -> Cst {
        Cst::build(
            tree,
            &CstConfig {
                budget: SpaceBudget::Threshold(1),
                signature_len: 128,
                ..CstConfig::default()
            },
        )
        .expect("CST config is valid")
    }

    fn q(expr: &str) -> Twig {
        Twig::parse(expr).unwrap()
    }

    #[test]
    fn trivial_path_query_is_exact_with_full_cst() {
        let tree = corpus();
        let cst = full_cst(&tree);
        let query = q(r#"book(author("Anna"))"#);
        for algo in [Algorithm::Greedy, Algorithm::PureMo, Algorithm::Mosh, Algorithm::Msh] {
            let est = cst.estimate(&query, algo, CountKind::Presence);
            assert!((est - 20.0).abs() < 1e-9, "{algo}: {est}");
        }
    }

    #[test]
    fn correlated_twig_mosh_beats_mo() {
        let tree = corpus();
        let cst = full_cst(&tree);
        // Anna & 1999 are perfectly correlated: true count 20. Pure MO
        // assumes independence below `book`: 50·(20/50)·(30/50) = 12.
        let query = q(r#"book(author("Anna"),year("1999"))"#);
        let truth = 20.0;
        let mo = cst.estimate(&query, Algorithm::PureMo, CountKind::Presence);
        let mosh = cst.estimate(&query, Algorithm::Mosh, CountKind::Presence);
        let msh = cst.estimate(&query, Algorithm::Msh, CountKind::Presence);
        assert!((mo - 12.0).abs() < 2.0, "mo = {mo}");
        assert!((mosh - truth).abs() < 3.0, "mosh = {mosh}");
        assert!((msh - truth).abs() < 3.0, "msh = {msh}");
        assert!((mosh - truth).abs() < (mo - truth).abs());
    }

    #[test]
    fn anticorrelated_twig_estimated_near_zero_by_sethash() {
        let tree = corpus();
        let cst = full_cst(&tree);
        // Anna books are never 2000: truth 0. MO estimates
        // 50·(20/50)·(20/50) = 8; MOSH's intersection should be ~0.
        let query = q(r#"book(author("Anna"),year("2000"))"#);
        let mo = cst.estimate(&query, Algorithm::PureMo, CountKind::Presence);
        let mosh = cst.estimate(&query, Algorithm::Mosh, CountKind::Presence);
        assert!(mo > 4.0, "mo = {mo}");
        assert!(mosh < 2.0, "mosh = {mosh}");
    }

    #[test]
    fn all_algorithms_nonnegative_and_finite() {
        let tree = corpus();
        let cst = full_cst(&tree);
        for expr in [
            r#"book(author("Anna"),year("1999"))"#,
            r#"dblp(book(author("Bo"),year("2000")))"#,
            r#"book(author("Zz"),year("1850"))"#,
            "book(author,year)",
            r#"author("Cleo")"#,
        ] {
            let query = q(expr);
            for kind in [CountKind::Presence, CountKind::Occurrence] {
                for algo in Algorithm::ALL {
                    let est = cst.estimate(&query, algo, kind);
                    assert!(est.is_finite() && est >= 0.0, "{algo} {expr}: {est}");
                }
            }
        }
    }

    #[test]
    fn unknown_label_estimates_zero() {
        let tree = corpus();
        let cst = full_cst(&tree);
        let query = q(r#"book(publisher("X"))"#);
        for algo in [Algorithm::Greedy, Algorithm::PureMo, Algorithm::Mosh, Algorithm::Msh] {
            assert_eq!(cst.estimate(&query, algo, CountKind::Presence), 0.0, "{algo}");
        }
    }

    #[test]
    fn leaf_ignores_structure() {
        let tree = corpus();
        let cst = full_cst(&tree);
        // Leaf's estimate for book(author("Anna")) is the global MO count
        // of the string "Anna" — identical to dblp(...) wrapping.
        let est1 =
            cst.estimate(&q(r#"book(author("Anna"))"#), Algorithm::Leaf, CountKind::Presence);
        let est2 =
            cst.estimate(&q(r#"dblp(book(author("Anna")))"#), Algorithm::Leaf, CountKind::Presence);
        assert!((est1 - est2).abs() < 1e-9);
        assert!(est1 > 0.0);
    }

    #[test]
    fn occurrence_exceeds_presence_on_multisets() {
        let mut xml = String::from("<dblp>");
        for _ in 0..10 {
            xml.push_str("<book><author>Anna</author><author>Bo</author><year>1999</year></book>");
        }
        xml.push_str("</dblp>");
        let tree = DataTree::from_xml(&xml).unwrap();
        let cst = full_cst(&tree);
        let query = q("book(author)");
        let presence = cst.estimate(&query, Algorithm::Mosh, CountKind::Presence);
        let occurrence = cst.estimate(&query, Algorithm::Mosh, CountKind::Occurrence);
        assert!((presence - 10.0).abs() < 1.0, "presence = {presence}");
        assert!((occurrence - 20.0).abs() < 2.0, "occurrence = {occurrence}");
    }

    #[test]
    fn paper_section5_occurrence_example() {
        // Figure 1 numbers: presence of the twiglet ≈ 3, Co/Cp for
        // book.author = 6/3, for book.year.Y1 = 3/3 → occurrence ≈ 6.
        let xml = concat!(
            "<dblp>",
            "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><title>T2</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><author>A3</author><title>T3</title><year>Y1</year></book>",
            "</dblp>"
        );
        let tree = DataTree::from_xml(xml).unwrap();
        let cst = full_cst(&tree);
        let query = q(r#"book(author,year("Y1"))"#);
        let occurrence = cst.estimate(&query, Algorithm::Mosh, CountKind::Occurrence);
        assert!((occurrence - 6.0).abs() < 1.5, "occurrence = {occurrence}");
    }

    #[test]
    fn estimate_all_returns_all_six() {
        let tree = corpus();
        let cst = full_cst(&tree);
        let results = cst.estimate_all(&q(r#"book(author("Anna"))"#), CountKind::Presence);
        assert_eq!(results.len(), 6);
        assert_eq!(results[0].0, Algorithm::Leaf);
        assert_eq!(results[5].0, Algorithm::Msh);
    }

    #[test]
    fn table1_properties_match_paper() {
        assert_eq!(Algorithm::Leaf.properties().0, "Not stored");
        assert_eq!(Algorithm::Greedy.properties().3, "Greedy");
        assert_eq!(Algorithm::Msh.properties().2, "Balance between deep and bushy");
        for algo in Algorithm::ALL {
            if algo != Algorithm::Greedy {
                assert_eq!(algo.properties().3, "MO");
            }
        }
    }

    #[test]
    fn pruned_cst_still_estimates() {
        let tree = corpus();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Fraction(0.05), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let query = q(r#"book(author("Anna"),year("1999"))"#);
        for algo in Algorithm::ALL {
            let est = cst.estimate(&query, algo, CountKind::Presence);
            assert!(est.is_finite() && est >= 0.0, "{algo}: {est}");
        }
    }
}

#[cfg(test)]
mod discount_tests {
    use super::*;
    use crate::cst::{CstConfig, SpaceBudget};
    use twig_tree::{DataTree, Twig};

    fn cst_for(xml: &str) -> Cst {
        let tree = DataTree::from_xml(xml).unwrap();
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid")
    }

    #[test]
    fn no_duplicate_siblings_means_no_discount() {
        let cst = cst_for("<r><b><x>1</x><y>2</y></b><b><x>1</x><y>3</y></b></r>");
        let twig = Twig::parse(r#"b(x("1"),y("2"))"#).unwrap();
        assert_eq!(cst.sibling_discount(&twig), 1.0);
    }

    #[test]
    fn impossible_duplicate_requirement_discounts_to_zero() {
        // Every b has exactly one x child → a query wanting two distinct
        // x children can never match.
        let cst = cst_for("<r><b><x>1</x></b><b><x>2</x></b><b><x>3</x></b></r>");
        let twig = Twig::parse(r#"b(x("1"),x)"#).unwrap();
        assert_eq!(cst.sibling_discount(&twig), 0.0);
        assert_eq!(cst.estimate(&twig, Algorithm::Mosh, CountKind::Occurrence), 0.0);
    }

    #[test]
    fn multiset_duplicate_requirement_gets_injective_ratio() {
        // Every b has exactly three x children → m = 3, k = 2:
        // discount (3·2)/9 = 2/3.
        let mut xml = String::from("<r>");
        for i in 0..9 {
            xml.push_str(&format!("<b><x>v{}</x><x>w{}</x><x>u{}</x></b>", i % 3, i % 3, i % 3));
        }
        xml.push_str("</r>");
        let cst = cst_for(&xml);
        let twig = Twig::parse("b(x,x)").unwrap();
        let discount = cst.sibling_discount(&twig);
        assert!((discount - 2.0 / 3.0).abs() < 1e-9, "discount = {discount}");
        // And the occurrence estimate matches the exact injective count:
        // per b: 3·2 = 6 ordered pairs; 9 b's → 54.
        let est = cst.estimate(&twig, Algorithm::Mosh, CountKind::Occurrence);
        assert!((est - 54.0).abs() < 8.0, "est = {est}");
    }

    #[test]
    fn discount_applies_per_label_group() {
        // Two groups: x (m=1, k=2 → 0) would zero; but x (k=1) and y
        // (k=1) leave 1.0.
        let cst = cst_for("<r><b><x>1</x><y>1</y></b><b><x>2</x><y>2</y></b></r>");
        let single = Twig::parse("b(x,y)").unwrap();
        assert_eq!(cst.sibling_discount(&single), 1.0);
        let double_y = Twig::parse("b(x,y,y)").unwrap();
        assert_eq!(cst.sibling_discount(&double_y), 0.0);
    }

    #[test]
    fn estimate_raw_skips_discount() {
        let cst = cst_for("<r><b><x>1</x></b><b><x>2</x></b></r>");
        let twig = Twig::parse("b(x,x)").unwrap();
        assert_eq!(cst.estimate(&twig, Algorithm::PureMo, CountKind::Occurrence), 0.0);
        assert!(cst.estimate_raw(&twig, Algorithm::PureMo, CountKind::Occurrence, None) > 0.0);
    }
}
