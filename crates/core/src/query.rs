//! Query compilation: a twig becomes token sequences over the CST
//! vocabulary, with every token tied back to the query node it covers.

use twig_pst::PathToken;
use twig_tree::{Twig, TwigLabel, TwigNodeId};

use crate::summary::Summary;

/// One coverable position of the query tree.
///
/// Element query nodes are one unit each; a value leaf contributes one
/// unit per character (subpaths may cover value prefixes partially).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// An element query node.
    El(TwigNodeId),
    /// Character `index` of the value at a leaf query node.
    Ch(TwigNodeId, u16),
}

/// A token of a compiled query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A token that can be walked in the CST trie.
    Ok(PathToken),
    /// An element label that does not occur in the data vocabulary — the
    /// subpath containing it has true count 0.
    Unknown,
    /// A wildcard query node: exempt from coverage, never part of a
    /// subpath (parsing restarts after it). See `DESIGN.md` §6.
    Wild,
}

/// One compiled root-to-leaf query path.
#[derive(Debug, Clone)]
pub struct QPath {
    /// Tokens, one per unit.
    pub tokens: Vec<Token>,
    /// The query unit each token covers.
    pub units: Vec<Unit>,
    /// The query nodes along the path (elements and the optional leaf).
    pub nodes: Vec<TwigNodeId>,
}

/// The compiled query: all root-to-leaf paths.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Paths in query-DFS order.
    pub paths: Vec<QPath>,
    /// Branch query nodes (two or more children).
    pub branches: Vec<TwigNodeId>,
}

impl CompiledQuery {
    /// Compiles `twig` against the summary's label vocabulary.
    pub fn compile<S: Summary>(cst: &S, twig: &Twig) -> Self {
        let mut paths = Vec::new();
        for node_path in twig.root_to_leaf_paths() {
            let mut tokens = Vec::new();
            let mut units = Vec::new();
            for &node in &node_path {
                match twig.label(node) {
                    TwigLabel::Element(name) => {
                        tokens.push(match cst.symbol(name) {
                            Some(sym) => Token::Ok(PathToken::Element(sym)),
                            None => Token::Unknown,
                        });
                        units.push(Unit::El(node));
                    }
                    TwigLabel::Value(value) => {
                        for (i, byte) in value.bytes().enumerate() {
                            tokens.push(Token::Ok(PathToken::Char(byte)));
                            units.push(Unit::Ch(node, i as u16));
                        }
                    }
                    TwigLabel::Star => {
                        tokens.push(Token::Wild);
                        units.push(Unit::El(node));
                    }
                }
            }
            paths.push(QPath { tokens, units, nodes: node_path });
        }
        CompiledQuery { paths, branches: twig.branch_nodes() }
    }

    /// All units that must be covered by parsed subpaths (wildcards are
    /// exempt).
    pub fn coverable_units(&self) -> impl Iterator<Item = Unit> + '_ {
        self.paths.iter().flat_map(|path| {
            path.tokens
                .iter()
                .zip(&path.units)
                .filter(|(token, _)| !matches!(token, Token::Wild))
                .map(|(_, &unit)| unit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstConfig, SpaceBudget};
    use twig_tree::DataTree;

    fn cst() -> Cst {
        let tree =
            DataTree::from_xml("<dblp><book><author>A1</author><year>Y1</year></book></dblp>")
                .unwrap();
        Cst::build(&tree, &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() })
            .expect("CST config is valid")
    }

    #[test]
    fn compiles_paths_with_units() {
        let cst = cst();
        let twig = Twig::parse(r#"book(author("A1"),year("Y1"))"#).unwrap();
        let compiled = CompiledQuery::compile(&cst, &twig);
        assert_eq!(compiled.paths.len(), 2);
        // book, author, 'A', '1'
        assert_eq!(compiled.paths[0].tokens.len(), 4);
        assert!(matches!(compiled.paths[0].units[0], Unit::El(_)));
        assert!(matches!(compiled.paths[0].units[2], Unit::Ch(_, 0)));
        assert!(matches!(compiled.paths[0].units[3], Unit::Ch(_, 1)));
        assert_eq!(compiled.branches.len(), 1);
    }

    #[test]
    fn shared_prefix_has_identical_units() {
        let cst = cst();
        let twig = Twig::parse(r#"book(author("A1"),year("Y1"))"#).unwrap();
        let compiled = CompiledQuery::compile(&cst, &twig);
        assert_eq!(compiled.paths[0].units[0], compiled.paths[1].units[0]);
        assert_ne!(compiled.paths[0].units[1], compiled.paths[1].units[1]);
    }

    #[test]
    fn unknown_labels_marked() {
        let cst = cst();
        let twig = Twig::parse("book(nosuchlabel)").unwrap();
        let compiled = CompiledQuery::compile(&cst, &twig);
        assert!(matches!(compiled.paths[0].tokens[1], Token::Unknown));
    }

    #[test]
    fn wildcards_marked_and_exempt() {
        let cst = cst();
        let twig = Twig::parse(r#"book(*(year("Y1")))"#).unwrap();
        let compiled = CompiledQuery::compile(&cst, &twig);
        assert!(matches!(compiled.paths[0].tokens[1], Token::Wild));
        let coverable: Vec<Unit> = compiled.coverable_units().collect();
        assert_eq!(coverable.len(), compiled.paths[0].tokens.len() - 1);
    }
}
