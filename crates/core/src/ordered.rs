//! Ordered twig matching estimation (the paper's Sec. 7 future work).
//!
//! Exact ordered counting lives in `twig-exact::ordered`; this module adds
//! summary-side estimation. The paper sketches an approach — keep the
//! rooting node's id with each set-hash component and check that ids of
//! paths from a branch node appear in the desired order — but the sketch
//! is under-specified: the stored minima identify the *rooting* node,
//! which is the same node for every path of a twiglet, so component ids
//! carry no information about the document order of the *children* the
//! paths descend through. Making it work would require one stored id per
//! `(component, path)` pair, multiplying signature space by the fan-out.
//!
//! What ships here is the order-uniformity estimator: under the
//! assumption that sibling matches are exchangeable in document order,
//! each branch node with `k` matched legs admits `1/k!` of its injective
//! assignments in increasing order, so
//!
//! ```text
//! ordered(Q) ≈ unordered(Q) / Π_branches k!
//! ```
//!
//! This is exact in expectation for identical legs (each unordered
//! solution set of `k` positions is counted `k!` times unordered and once
//! ordered) and unbiased across randomly-ordered workloads for distinct
//! legs. Its known failure mode is data with a *canonical field order*
//! (most real XML): a query whose legs follow that order matches nearly
//! as often as unordered, while a query against the order matches almost
//! never — the per-query truth is bimodal around the `1/k!` mean. The
//! `ordered_vs_exact` test quantifies this on generated data.

use twig_tree::{Twig, TwigNodeId};

use crate::cst::Cst;
use crate::estimate::{Algorithm, CountKind};

/// `n!` as f64 (query fan-out is tiny).
fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

impl Cst {
    /// Estimates the number of *ordered* matches of `twig` (query
    /// children must map to data children in document order) under the
    /// order-uniformity assumption described in the module docs.
    pub fn estimate_ordered(&self, twig: &Twig, algorithm: Algorithm, kind: CountKind) -> f64 {
        let unordered = self.estimate(twig, algorithm, kind);
        unordered * order_factor(twig)
    }
}

/// The `Π 1/k!` factor over the query's branch nodes.
pub fn order_factor(twig: &Twig) -> f64 {
    let mut factor = 1.0;
    for idx in 0..twig.node_count() as u32 {
        let node = TwigNodeId(idx);
        let k = twig.children(node).len();
        if k >= 2 {
            factor /= factorial(k);
        }
    }
    factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{CstConfig, SpaceBudget};
    use twig_exact::{count_occurrence, count_occurrence_ordered};
    use twig_tree::DataTree;

    #[test]
    fn factor_is_product_over_branches() {
        let single = Twig::parse(r#"a(b("x"))"#).unwrap();
        assert_eq!(order_factor(&single), 1.0);
        let two = Twig::parse("a(b,c)").unwrap();
        assert_eq!(order_factor(&two), 0.5);
        let nested = Twig::parse("a(b(d,e,f),c)").unwrap();
        assert_eq!(order_factor(&nested), 0.5 / 6.0);
    }

    #[test]
    fn ordered_estimate_bounded_by_unordered() {
        let xml = "<r><x><a>1</a><b>2</b></x><x><b>1</b><a>2</a></x></r>";
        let tree = DataTree::from_xml(xml).unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let twig = Twig::parse("x(a,b)").unwrap();
        let unordered = cst.estimate(&twig, Algorithm::Mosh, CountKind::Occurrence);
        let ordered = cst.estimate_ordered(&twig, Algorithm::Mosh, CountKind::Occurrence);
        assert!(ordered <= unordered);
        assert!((ordered - unordered / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ordered_vs_exact_on_shuffled_data() {
        // Data with no canonical sibling order: the uniformity assumption
        // should land near the truth aggregated over a small workload.
        let mut xml = String::from("<r>");
        for i in 0..60 {
            // Alternate the order of a and b children.
            if i % 2 == 0 {
                xml.push_str(&format!("<x><a>v{}</a><b>w{}</b></x>", i % 5, i % 7));
            } else {
                xml.push_str(&format!("<x><b>w{}</b><a>v{}</a></x>", i % 7, i % 5));
            }
        }
        xml.push_str("</r>");
        let tree = DataTree::from_xml(&xml).unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let twig = Twig::parse("x(a,b)").unwrap();
        let exact_unordered = count_occurrence(&tree, &twig) as f64;
        let exact_ordered = count_occurrence_ordered(&tree, &twig) as f64;
        assert_eq!(exact_unordered, 60.0);
        assert_eq!(exact_ordered, 30.0, "half the records list a before b");
        let est = cst.estimate_ordered(&twig, Algorithm::Mosh, CountKind::Occurrence);
        assert!((est - exact_ordered).abs() < 6.0, "est = {est}");
    }

    #[test]
    fn canonical_order_bimodality_documented() {
        // Data with a canonical order (a always before b): the uniformity
        // estimate splits the difference between the with-order query
        // (truth = unordered) and the against-order query (truth = 0).
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<x><a>v{}</a><b>w{}</b></x>", i % 5, i % 7));
        }
        xml.push_str("</r>");
        let tree = DataTree::from_xml(&xml).unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let with_order = Twig::parse("x(a,b)").unwrap();
        let against_order = Twig::parse("x(b,a)").unwrap();
        assert_eq!(count_occurrence_ordered(&tree, &with_order), 40);
        assert_eq!(count_occurrence_ordered(&tree, &against_order), 0);
        // The heuristic gives both ≈ 20: right on average, wrong per query.
        for twig in [&with_order, &against_order] {
            let est = cst.estimate_ordered(twig, Algorithm::Mosh, CountKind::Occurrence);
            assert!((est - 20.0).abs() < 4.0, "est = {est}");
        }
    }
}
