//! Memoized per-query estimation plans.
//!
//! Estimating the same twig repeatedly (the optimizer-inner-loop case
//! the paper targets) re-does a lot of kind-independent work: compiling
//! the twig against the summary's interner, walking its subpaths through
//! the trie, parsing maximal pieces, and grouping twiglets. A
//! [`QueryPlan`] memoizes exactly those stages, per algorithm, so only
//! the cheap count-dependent combination runs per estimate.
//!
//! A plan is *passive*: it caches nothing until
//! [`Cst::estimate_raw`](crate::Cst::estimate_raw) is handed one, and
//! the cached stages are produced by the same code the plan-free path
//! runs — estimates are bit-identical with and without a plan. A plan is
//! only meaningful for the `(summary, twig)` pair it was first used
//! with; callers (the serve plan cache) key plans by canonical twig text
//! plus summary generation and drop them on reload.

use std::sync::OnceLock;

use crate::combine::Element;
use crate::estimate::Algorithm;
use crate::parse::Piece;
use crate::query::CompiledQuery;

/// The memoized kind-independent stages of one algorithm.
#[derive(Debug)]
pub(crate) enum PlannedEstimator {
    /// Per value-leaf-path plans for the Leaf baseline.
    Leaf(Vec<LeafPathPlan>),
    /// Greedy parse; `None` when a token failed to match (estimate 0).
    Greedy(Option<Vec<Piece>>),
    /// Combination elements for the MO-family algorithms; `None` when
    /// the parse does not cover the query (estimate 0).
    Elements(Option<Vec<Element>>),
}

/// One value path's parsed fragments for the Leaf baseline.
#[derive(Debug)]
pub(crate) struct LeafPathPlan {
    /// Index into [`CompiledQuery::paths`].
    pub(crate) path: usize,
    /// First value-character token of the path.
    pub(crate) first_char: usize,
    /// Token count of the path.
    pub(crate) len: usize,
    /// Maximal parse of the value range.
    pub(crate) pieces: Vec<Piece>,
}

/// A lazily filled estimation plan for one `(summary, twig)` pair.
///
/// Thread-safe: the cells are [`OnceLock`]s, so a plan shared behind an
/// `Arc` across server workers fills each stage exactly once and serves
/// concurrent readers lock-free afterwards.
#[derive(Debug, Default)]
pub struct QueryPlan {
    compiled: OnceLock<CompiledQuery>,
    estimators: [OnceLock<PlannedEstimator>; 6],
}

impl QueryPlan {
    /// An empty plan; stages fill on first use by
    /// [`Cst::estimate_raw`](crate::Cst::estimate_raw).
    #[must_use]
    pub fn new() -> QueryPlan {
        QueryPlan::default()
    }

    pub(crate) fn compiled_or_init(&self, init: impl FnOnce() -> CompiledQuery) -> &CompiledQuery {
        self.compiled.get_or_init(init)
    }

    pub(crate) fn estimator_or_init(
        &self,
        algorithm: Algorithm,
        init: impl FnOnce() -> PlannedEstimator,
    ) -> &PlannedEstimator {
        self.estimators[algorithm.index()].get_or_init(init)
    }
}
