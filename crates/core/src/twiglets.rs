//! Twiglet decomposition (Sec. 3.2, 4.2–4.4).
//!
//! A *twiglet* groups parsed subpaths that emanate from the same query
//! node and pass through a branch node; its count is estimated by
//! intersecting the member subpaths' rooting-node sets via set hashing.
//! The three set-hashing algorithms differ only in how groups are formed:
//!
//! - **MOSH / PMOSH**: group the parsed pieces that *start at the same
//!   unit* and pass through the branch node. (PMOSH feeds this the
//!   piecewise-maximal parse, which makes shared starts more likely.)
//! - **MSH**: for every start unit of a maximal piece through the branch,
//!   group the *suffixes* of all maximal pieces through the branch that
//!   contain that start — deep parses still meet at branch points without
//!   shortening the pieces themselves.

use twig_pst::PathToken;
use twig_tree::TwigNodeId;
use twig_util::FxHashSet;

use crate::parse::Piece;
use crate::query::{CompiledQuery, Token, Unit};
use crate::summary::Summary;

/// A twiglet: two or more chains sharing a start unit.
#[derive(Debug, Clone)]
pub struct Twiglet {
    /// Member chains (deduplicated; all start at the same unit).
    pub chains: Vec<Piece>,
    /// Ordering position: the minimal `(path, start)` over members.
    pub position: (usize, usize),
}

impl Twiglet {
    /// All query units covered by this twiglet.
    pub fn units(&self) -> FxHashSet<Unit> {
        self.chains.iter().flat_map(|c| c.units.iter().copied()).collect()
    }
}

/// Relative index of branch element `branch` within `piece`, when the
/// piece passes *through* it (covers it and extends at least one unit
/// beyond).
fn through_index(piece: &Piece, branch: TwigNodeId) -> Option<usize> {
    piece
        .units
        .iter()
        .position(|&u| u == Unit::El(branch))
        .filter(|&idx| idx + 1 < piece.units.len())
}

/// MOSH / PMOSH grouping: pieces through a branch sharing their own start
/// unit. Returns the twiglets plus a mask of pieces consumed by one.
pub fn mosh_twiglets(query: &CompiledQuery, pieces: &[Piece]) -> (Vec<Twiglet>, Vec<bool>) {
    let mut consumed = vec![false; pieces.len()];
    let mut twiglets: Vec<Twiglet> = Vec::new();
    for &branch in &query.branches {
        // Group member indexes by start unit.
        let mut groups: Vec<(Unit, Vec<usize>)> = Vec::new();
        for (i, piece) in pieces.iter().enumerate() {
            if through_index(piece, branch).is_none() {
                continue;
            }
            let start_unit = piece.units[0];
            match groups.iter_mut().find(|(u, _)| *u == start_unit) {
                Some((_, members)) => members.push(i),
                None => groups.push((start_unit, vec![i])),
            }
        }
        for (_, members) in groups {
            if members.len() < 2 {
                continue;
            }
            let chains: Vec<Piece> = members.iter().map(|&i| pieces[i].clone()).collect();
            let Some(position) = chains.iter().map(|c| (c.path, c.start)).min() else {
                continue; // unreachable: the size guard above demands >= 2 members
            };
            for &i in &members {
                consumed[i] = true;
            }
            twiglets.push(Twiglet { chains, position });
        }
    }
    (drop_contained_twiglets(twiglets), consumed)
}

/// MSH grouping (Sec. 4.4): for each branch and each start unit of a
/// maximal piece through it, the suffixes at that start of *all* maximal
/// pieces through it that contain the start.
pub fn msh_twiglets<S: Summary>(cst: &S, query: &CompiledQuery, pieces: &[Piece]) -> Vec<Twiglet> {
    let mut twiglets: Vec<Twiglet> = Vec::new();
    for &branch in &query.branches {
        let through: Vec<&Piece> =
            pieces.iter().filter(|p| through_index(p, branch).is_some()).collect();
        if through.len() < 2 {
            continue;
        }
        let mut starts: Vec<Unit> = through.iter().map(|p| p.units[0]).collect();
        starts.sort();
        starts.dedup();
        for start in starts {
            let mut chains: Vec<Piece> = Vec::new();
            for piece in &through {
                let Some(rel) = piece.units.iter().position(|&u| u == start) else {
                    continue;
                };
                if rel + 1 >= piece.units.len() {
                    continue; // suffix would be a single node
                }
                if let Some(suffix) = suffix_piece(cst, query, piece, rel) {
                    if !chains.iter().any(|c| c.units == suffix.units) {
                        chains.push(suffix);
                    }
                }
            }
            if chains.len() < 2 {
                continue;
            }
            let Some(position) = chains.iter().map(|c| (c.path, c.start)).min() else {
                continue; // unreachable: the size guard above demands >= 2 chains
            };
            twiglets.push(Twiglet { chains, position });
        }
    }
    drop_contained_twiglets(twiglets)
}

/// The suffix of `piece` starting at relative unit `rel`, looked up in the
/// CST (present by the monotonicity property; `None` only defensively).
fn suffix_piece<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    piece: &Piece,
    rel: usize,
) -> Option<Piece> {
    if rel == 0 {
        return Some(piece.clone());
    }
    let start = piece.start + rel;
    let tokens: Vec<PathToken> = query.paths[piece.path].tokens[start..piece.end]
        .iter()
        .map(|t| match t {
            Token::Ok(pt) => *pt,
            _ => unreachable!("pieces contain only Ok tokens"),
        })
        .collect();
    let trie = cst.lookup(&tokens)?;
    Some(Piece {
        path: piece.path,
        start,
        end: piece.end,
        trie,
        units: piece.units[rel..].to_vec(),
    })
}

/// Drops twiglets whose unit region is contained in another's (they would
/// contribute a factor of 1 under MO conditioning, only adding signature
/// noise).
fn drop_contained_twiglets(twiglets: Vec<Twiglet>) -> Vec<Twiglet> {
    let regions: Vec<FxHashSet<Unit>> = twiglets.iter().map(Twiglet::units).collect();
    let mut keep = vec![true; twiglets.len()];
    for i in 0..twiglets.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..twiglets.len() {
            if i == j || !keep[j] {
                continue;
            }
            let subset = regions[i].is_subset(&regions[j]);
            let superset = regions[j].is_subset(&regions[i]);
            if subset && !(superset && j > i) {
                keep[i] = false;
                break;
            }
        }
    }
    let mut kept = Vec::with_capacity(twiglets.len());
    for (twiglet, keep_this) in twiglets.into_iter().zip(keep) {
        if keep_this {
            kept.push(twiglet);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstConfig, SpaceBudget};
    use crate::parse::{maximal_pieces, Piece};
    use twig_tree::{DataTree, Twig};

    /// A corpus realizing the Figure 2 tree pattern: records shaped
    /// a(b(c(d(e),f(g)))) — the query a.b.c with branches c→d→e and
    /// c→f→g.
    fn fixture() -> (DataTree, Cst) {
        let mut xml = String::from("<root>");
        for i in 0..30 {
            xml.push_str(&format!(
                "<a><b><c><d><e>v{}</e></d><f><g>w{}</g></f></c></b></a>",
                i % 3,
                i % 5
            ));
        }
        xml.push_str("</root>");
        let tree = DataTree::from_xml(&xml).unwrap();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        (tree, cst)
    }

    fn query(cst: &Cst, expr: &str) -> (Twig, CompiledQuery) {
        let twig = Twig::parse(expr).unwrap();
        let compiled = CompiledQuery::compile(cst, &twig);
        (twig, compiled)
    }

    /// Splits a full-path piece into [lo, hi) subpieces for controlled
    /// parses (mimicking what pruning would produce).
    fn subpiece(cst: &Cst, q: &CompiledQuery, piece: &Piece, lo: usize, hi: usize) -> Piece {
        let tokens: Vec<twig_pst::PathToken> = q.paths[piece.path].tokens[lo..hi]
            .iter()
            .map(|t| match t {
                Token::Ok(pt) => *pt,
                _ => panic!("only Ok tokens in test pieces"),
            })
            .collect();
        Piece {
            path: piece.path,
            start: lo,
            end: hi,
            trie: cst.lookup(&tokens).expect("subpath in unpruned CST"),
            units: q.paths[piece.path].units[lo..hi].to_vec(),
        }
    }

    #[test]
    fn whole_query_forms_one_twiglet_when_paths_fully_match() {
        // Sec. 4.2: "If all root-to-leaf paths in a twig query are present
        // in the CST, the whole twig will form one twiglet."
        let (_, cst) = fixture();
        let (_, q) = query(&cst, "a(b(c(d,f)))");
        let pieces = maximal_pieces(&cst, &q);
        assert_eq!(pieces.len(), 2, "one full piece per path");
        let (twiglets, consumed) = mosh_twiglets(&q, &pieces);
        assert_eq!(twiglets.len(), 1);
        assert_eq!(twiglets[0].chains.len(), 2);
        assert!(consumed.iter().all(|&c| c));
    }

    #[test]
    fn mosh_needs_shared_starts() {
        // The Sec. 4.3 motivating example: parse pieces through the
        // branch that start at different units → MOSH forms no twiglet.
        let (_, cst) = fixture();
        let (_, q) = query(&cst, "a(b(c(d,f)))");
        let full = maximal_pieces(&cst, &q);
        // Simulate the parse {a.b.c.d, b.c.f}: different start units.
        let p1 = subpiece(&cst, &q, &full[0], 0, 4); // a.b.c.d
        let p2 = subpiece(&cst, &q, &full[1], 1, 4); // b.c.f
        let pieces = vec![p1, p2];
        let (twiglets, consumed) = mosh_twiglets(&q, &pieces);
        assert!(twiglets.is_empty(), "MOSH reduces to pure MO here");
        assert!(consumed.iter().all(|&c| !c));
    }

    #[test]
    fn msh_recovers_via_suffixes() {
        // Same parse, but MSH takes the suffix of a.b.c.d at b and groups
        // it with b.c.f — the Sec. 4.4 example.
        let (_, cst) = fixture();
        let (_, q) = query(&cst, "a(b(c(d,f)))");
        let full = maximal_pieces(&cst, &q);
        let p1 = subpiece(&cst, &q, &full[0], 0, 4); // a.b.c.d
        let p2 = subpiece(&cst, &q, &full[1], 1, 4); // b.c.f
        let pieces = vec![p1, p2];
        let twiglets = msh_twiglets(&cst, &q, &pieces);
        assert_eq!(twiglets.len(), 1);
        let chains = &twiglets[0].chains;
        assert_eq!(chains.len(), 2);
        // Both chains start at the `b` unit.
        assert_eq!(chains[0].units[0], chains[1].units[0]);
        assert_eq!(chains[0].units[0], q.paths[0].units[1]);
        // The suffix chain b.c.d has its own (monotonicity-guaranteed)
        // trie node with the right count.
        for chain in chains {
            assert!(cst.presence(chain.trie) > 0);
        }
    }

    #[test]
    fn contained_twiglets_dropped() {
        // Twiglets at nested branches with the same start nest; only the
        // largest survives.
        let (_, cst) = fixture();
        let (_, q) = query(&cst, "a(b(c(d(e),f(g))))");
        let pieces = maximal_pieces(&cst, &q);
        let (twiglets, _) = mosh_twiglets(&q, &pieces);
        // Branch node is c only (a and b have one child); both paths
        // fully parse → exactly one twiglet.
        assert_eq!(twiglets.len(), 1);
        let msh = msh_twiglets(&cst, &q, &pieces);
        // MSH adds suffix groups at deeper starts, but they are contained
        // in the root-start twiglet and dropped.
        assert_eq!(msh.len(), 1);
    }

    #[test]
    fn pieces_not_through_branch_stay_single() {
        let (_, cst) = fixture();
        let (_, q) = query(&cst, "a(b(c(d(e),f(g))))");
        let full = maximal_pieces(&cst, &q);
        // Parse: a.b.c.d / d-e-tail  and a.b.c.f.g; the e-tail piece does
        // not pass through branch c.
        let p1 = subpiece(&cst, &q, &full[0], 0, 4); // a.b.c.d
        let p2 = subpiece(&cst, &q, &full[0], 3, full[0].end); // d.e...
        let p3 = full[1].clone(); // a.b.c.f.g...
        let (twiglets, consumed) = mosh_twiglets(&q, &[p1, p2, p3]);
        assert_eq!(twiglets.len(), 1, "a.b.c.d groups with a.b.c.f.g at start a");
        assert!(!consumed[1], "the d.e piece stays a single element");
    }

    #[test]
    fn twiglet_position_is_min_chain_position() {
        let (_, cst) = fixture();
        let (_, q) = query(&cst, "a(b(c(d,f)))");
        let pieces = maximal_pieces(&cst, &q);
        let (twiglets, _) = mosh_twiglets(&q, &pieces);
        assert_eq!(twiglets[0].position, (0, 0));
    }
}
