//! A Lore-style Markov path estimator (the related-work baseline of
//! Sec. 1.1).
//!
//! McHugh & Widom's Lore optimizer "maintains statistics about subpaths
//! of length ≤ k, and uses it to infer selectivity estimates of longer
//! path queries". This module implements that scheme so the paper's
//! contrast — no stored correlations between sibling paths, so twig
//! selectivities degrade to independence products — is reproducible as a
//! concrete system rather than a citation:
//!
//! - the summary ([`LoreSummary`]) is a suffix trie capped at `k` labels
//!   (plus short value prefixes), *unpruned* below the cap — exactly
//!   "statistics about subpaths of length ≤ k",
//! - a longer path is priced by **Markov chaining**: the first `k`-gram's
//!   probability times, per extension step, the conditional
//!   `C(l_{i−k+1..i}) / C(l_{i−k+1..i−1})`,
//! - a twig is priced as the root-to-branch chain times the *independent*
//!   product of its legs' conditionals — Lore keeps no sibling
//!   correlations, which is precisely why the paper's CST outperforms it
//!   on twig queries.

use twig_pst::{build_suffix_trie, PathToken, PrunedTrie, TrieConfig};
use twig_tree::{DataTree, Twig, TwigLabel, TwigNodeId};
use twig_util::{Interner, Symbol};

/// The Lore-style summary: short-subpath statistics only.
#[derive(Debug)]
pub struct LoreSummary {
    trie: PrunedTrie,
    interner: Interner,
    n: u64,
    k: usize,
}

impl LoreSummary {
    /// Builds the summary with Markov order `k` (subpaths of at most `k`
    /// labels; value prefixes capped at 4 characters, mirroring the
    /// query workloads).
    ///
    /// # Panics
    /// Panics if `k < 2` (chaining needs at least bigrams).
    pub fn build(tree: &DataTree, k: usize) -> Self {
        assert!(k >= 2, "Markov order must be at least 2");
        let config = TrieConfig { max_label_depth: k, max_value_prefix: 4, max_string_suffix: 0 };
        let full = build_suffix_trie(tree, &config);
        Self {
            trie: full.prune(1),
            interner: tree.interner().clone(),
            n: tree.element_count() as u64,
            k,
        }
    }

    /// The Markov order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Number of stored subpath statistics.
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }

    fn count(&self, tokens: &[PathToken]) -> f64 {
        match self.trie.find(tokens) {
            Some(node) => f64::from(self.trie.occurrence(node)),
            None => 0.0,
        }
    }

    /// Estimated occurrence count of a pure downward path of `tokens`
    /// (labels, optionally ending in value-prefix characters) via Markov
    /// chaining over `k`-grams.
    ///
    /// Labels chain over sliding `k`-label windows; value characters then
    /// chain against the tail of up to `k − 1` labels (the summary stores
    /// value prefixes only directly after label chains, so a window may
    /// never start inside the value).
    pub fn estimate_tokens(&self, tokens: &[PathToken]) -> f64 {
        if tokens.is_empty() {
            return self.n as f64;
        }
        let label_len = tokens.iter().take_while(|t| matches!(t, PathToken::Element(_))).count();
        if label_len == 0 {
            return 0.0; // value-first sequences have no statistics
        }
        let labels = &tokens[..label_len];
        let chars = &tokens[label_len..];

        // Label phase.
        let head_len = label_len.min(self.k);
        let mut estimate = self.count(&labels[..head_len]);
        if estimate == 0.0 {
            return 0.0;
        }
        for end in (head_len + 1)..=label_len {
            let window = &labels[end - self.k..end];
            let joint = self.count(window);
            let base = self.count(&window[..window.len() - 1]);
            if base == 0.0 || joint == 0.0 {
                return 0.0;
            }
            estimate *= joint / base;
        }

        // Value phase: chain characters against a fixed label tail.
        if !chars.is_empty() {
            let tail_start = label_len.saturating_sub(self.k.saturating_sub(1));
            let tail = &labels[tail_start..];
            let mut window: Vec<PathToken> = tail.to_vec();
            // Only the stored prefix length carries statistics; deeper
            // characters are assumed determined (conditional 1).
            for &ch in chars.iter().take(4) {
                let base = self.count(&window);
                window.push(ch);
                let joint = self.count(&window);
                if base == 0.0 || joint == 0.0 {
                    return 0.0;
                }
                estimate *= joint / base;
            }
        }
        estimate
    }

    /// Estimated occurrence count of `twig`: the Markov-chained root
    /// chain times the independent product of each branch leg's
    /// conditional probability — no sibling correlations, by design.
    pub fn estimate(&self, twig: &Twig) -> f64 {
        self.estimate_subtree(twig, twig.root(), &mut Vec::new())
    }

    /// Estimate of the subtree at `node`, with `context` holding the
    /// label tokens on the path from the twig root down to `node`
    /// (inclusive after push).
    fn estimate_subtree(&self, twig: &Twig, node: TwigNodeId, context: &mut Vec<PathToken>) -> f64 {
        let tokens = match twig.label(node) {
            TwigLabel::Element(name) => match self.symbol(name) {
                Some(sym) => vec![PathToken::Element(sym)],
                None => return 0.0,
            },
            TwigLabel::Value(value) => value.bytes().take(4).map(PathToken::Char).collect(),
            // Wildcards contribute no statistics: treat as a context
            // break (the chain restarts below).
            TwigLabel::Star => {
                let mut total = 1.0;
                let depth = context.len();
                for &child in twig.children(node) {
                    let mut fresh = Vec::new();
                    let sub = self.estimate_subtree(twig, child, &mut fresh);
                    total *= sub / self.n as f64;
                }
                context.truncate(depth);
                return total * self.n as f64;
            }
        };
        let before = self.estimate_tokens(context);
        context.extend(tokens.iter().copied());
        let here = self.estimate_tokens(context);
        // Conditional probability of reaching `node` given the context.
        let conditional = if context.len() == tokens.len() {
            here / self.n as f64
        } else if before > 0.0 {
            here / before
        } else {
            0.0
        };
        let mut result = conditional;
        for &child in twig.children(node) {
            let depth = context.len();
            let child_conditional = self.estimate_subtree(twig, child, context) / self.n as f64;
            context.truncate(depth);
            result *= child_conditional;
        }
        context.truncate(context.len() - tokens.len());
        // Return a count-scaled value so recursion composes: probability
        // times n.
        result * self.n as f64
    }

    fn symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_exact::count_occurrence;

    fn corpus() -> DataTree {
        let mut xml = String::from("<dblp>");
        for i in 0..40 {
            let (author, year) = if i < 20 { ("Anna", "1999") } else { ("Bo", "2000") };
            xml.push_str(&format!("<book><author>{author}</author><year>{year}</year></book>"));
        }
        xml.push_str("</dblp>");
        DataTree::from_xml(&xml).unwrap()
    }

    #[test]
    fn single_paths_within_markov_order_are_exact() {
        let tree = corpus();
        let lore = LoreSummary::build(&tree, 3);
        let query = Twig::parse(r#"book(author("Anna"))"#).unwrap();
        let est = lore.estimate(&query);
        assert!((est - 20.0).abs() < 1e-6, "est = {est}");
    }

    #[test]
    fn long_paths_chained_through_kgrams() {
        // Path dblp.book.author.Anna needs chaining at k = 2.
        let tree = corpus();
        let lore = LoreSummary::build(&tree, 2);
        let query = Twig::parse(r#"dblp(book(author("Anna")))"#).unwrap();
        let est = lore.estimate(&query);
        // Chain: C(dblp.book)·C(book.author)/C(book)·C(author.Anna)/C(author)
        // = 40 · (40/40) · (20/40) ... (value chars chain too); exact here
        // because the corpus is homogeneous.
        assert!((est - 20.0).abs() < 2.0, "est = {est}");
    }

    #[test]
    fn twigs_priced_under_independence() {
        // Anna ⇔ 1999 perfectly correlated; truth 20. Lore must assume
        // independence below book: 40·(20/40)·(20/40) = 10.
        let tree = corpus();
        let lore = LoreSummary::build(&tree, 3);
        let query = Twig::parse(r#"book(author("Anna"),year("1999"))"#).unwrap();
        let est = lore.estimate(&query);
        let truth = count_occurrence(&tree, &query) as f64;
        assert_eq!(truth, 20.0);
        assert!((est - 10.0).abs() < 1.5, "est = {est}");
    }

    #[test]
    fn unknown_labels_estimate_zero() {
        let tree = corpus();
        let lore = LoreSummary::build(&tree, 3);
        assert_eq!(lore.estimate(&Twig::parse("nothing").unwrap()), 0.0);
        assert_eq!(lore.estimate(&Twig::parse(r#"book(publisher("X"))"#).unwrap()), 0.0);
    }

    #[test]
    fn higher_order_summaries_store_more() {
        let tree = corpus();
        let k2 = LoreSummary::build(&tree, 2);
        let k4 = LoreSummary::build(&tree, 4);
        assert!(k4.node_count() >= k2.node_count());
        assert_eq!(k2.order(), 2);
    }

    #[test]
    fn markov_chaining_matches_exact_on_homogeneous_paths() {
        // Deep chain corpus where every k-gram determines the next label.
        let mut xml = String::from("<r>");
        for _ in 0..8 {
            xml.push_str("<a><b><c><d>v</d></c></b></a>");
        }
        xml.push_str("</r>");
        let tree = DataTree::from_xml(&xml).unwrap();
        let lore = LoreSummary::build(&tree, 2);
        let query = Twig::parse(r#"r(a(b(c(d("v")))))"#).unwrap();
        let est = lore.estimate(&query);
        let truth = count_occurrence(&tree, &query) as f64;
        assert!((est - truth).abs() < 1e-6, "est = {est} truth = {truth}");
    }

    #[test]
    fn correlated_twig_underestimated_vs_cst() {
        // The paper's Sec. 1.1 claim: with our techniques "one could
        // accurately estimate the selectivity of Lorel twig queries".
        use crate::cst::{Cst, CstConfig, SpaceBudget};
        use crate::estimate::{Algorithm, CountKind};
        let tree = corpus();
        let lore = LoreSummary::build(&tree, 3);
        let cst = Cst::build(
            &tree,
            &CstConfig {
                budget: SpaceBudget::Threshold(1),
                signature_len: 128,
                ..CstConfig::default()
            },
        )
        .expect("CST config is valid");
        let query = Twig::parse(r#"book(author("Anna"),year("1999"))"#).unwrap();
        let truth = count_occurrence(&tree, &query) as f64;
        let lore_est = lore.estimate(&query);
        let mosh_est = cst.estimate(&query, Algorithm::Mosh, CountKind::Occurrence);
        assert!(
            (mosh_est - truth).abs() < (lore_est - truth).abs(),
            "MOSH {mosh_est} should beat Lore {lore_est} (truth {truth})"
        );
    }
}
