//! The correlated subpath tree: pruned trie + presence/occurrence counts +
//! set-hash signatures (Sec. 3.1, 3.4, 3.5).

use twig_pst::{
    build_suffix_trie, builder::for_each_rooted_subpath_sharded, NodeCostInfo, PathToken,
    PrunedTrie, TrieConfig, TrieNodeId,
};
use twig_sethash::{CompactSignature, HashFamily, Signature};
use twig_tree::DataTree;
use twig_util::{Interner, Symbol};

use crate::error::CstError;

/// What a set-hash intersection estimate returns when the signatures
/// share *no* matching components (resemblance below the `~1/L`
/// resolution of min-hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignatureFallback {
    /// Fall back to MO-style conditional independence, capped by the
    /// signature's resolution bound. Robust for positive queries whose
    /// true resemblance is small but nonzero (the estimator never zeroes
    /// a query it cannot see), at the cost of over-estimating negative
    /// queries exactly like pure MO does.
    #[default]
    ConditionalIndependence,
    /// Return 0, as the paper's literal formula does (`ρ̂ = 0 ⇒ |∩| = 0`).
    /// Excellent on negative queries (Fig. 7's MOSH/MSH behavior), but
    /// positive queries whose twiglets fall below the signature
    /// resolution are zeroed and the relative squared error explodes.
    Zero,
}

/// How much space the summary may use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpaceBudget {
    /// Absolute byte budget under the CST cost model.
    Bytes(usize),
    /// Fraction of the data set's XML source size (the paper's space axis,
    /// e.g. `0.01` for "1% space").
    Fraction(f64),
    /// Explicit prune threshold on `pc(α)` (no budget search).
    Threshold(u32),
}

/// Construction parameters for a [`Cst`].
#[derive(Debug, Clone)]
pub struct CstConfig {
    /// Suffix-trie depth caps.
    pub trie: TrieConfig,
    /// Signature length `L` (components per set-hash signature). The paper
    /// stores one "small fixed-length signature" per non-leaf subpath; 32
    /// 4-byte components is the default trade-off.
    pub signature_len: usize,
    /// Seed for the min-hash function family (signatures from different
    /// seeds are incomparable).
    pub seed: u64,
    /// Space budget.
    pub budget: SpaceBudget,
    /// Whether to build (and charge space for) set-hash signatures.
    ///
    /// The correlation-less algorithms (Leaf, Greedy, pure MO — Table 1)
    /// don't use signatures; giving them a signature-free summary packs
    /// roughly 7× more subpaths into the same byte budget, which is how
    /// the paper's figures compare algorithms at equal space.
    pub with_signatures: bool,
    /// Behavior when a signature intersection is below resolution.
    pub fallback: SignatureFallback,
    /// Worker threads for the signature-construction pass (1 = serial).
    ///
    /// Sharding is by top-level subtree and min-hash insertion is
    /// idempotent and order-independent, so the built summary is
    /// byte-identical for every thread count.
    pub threads: usize,
}

impl Default for CstConfig {
    fn default() -> Self {
        Self {
            trie: TrieConfig::default(),
            signature_len: 32,
            seed: 0x7716_C0DE,
            budget: SpaceBudget::Fraction(0.01),
            with_signatures: true,
            fallback: SignatureFallback::default(),
            threads: 1,
        }
    }
}

/// Accounted per-node base cost: packed edge (4 B), presence + occurrence
/// counts (8 B), child-table entry (8 B).
const NODE_BASE_COST: usize = 20;

/// The correlated subpath tree — the complete summary data structure.
///
/// Self-contained: estimation needs no access to the original data tree
/// (the label vocabulary is copied in, the tree size `n` recorded).
#[derive(Debug)]
pub struct Cst {
    trie: PrunedTrie,
    signatures: Vec<Option<CompactSignature>>,
    interner: Interner,
    n: u64,
    signature_len: usize,
    seed: u64,
    size_bytes: usize,
    source_bytes: usize,
    fallback: SignatureFallback,
}

impl Cst {
    /// Builds the CST for `tree` under `config`.
    ///
    /// Two passes over the data: one to build and count the full suffix
    /// trie (then pruned to budget), one to fold rooting-node ids into the
    /// signatures of the surviving label-rooted subpaths.
    ///
    /// # Errors
    ///
    /// Returns [`CstError`] when the configuration is unusable (zero
    /// signature length, non-positive space fraction).
    pub fn build(tree: &DataTree, config: &CstConfig) -> Result<Self, CstError> {
        let full = build_suffix_trie(tree, &config.trie);
        Self::from_trie(tree, &full, config)
    }

    /// Builds the CST from an already-constructed full suffix trie (lets
    /// the experiment harness share one trie across many space budgets).
    ///
    /// # Errors
    ///
    /// Returns [`CstError`] when the configuration is unusable (zero
    /// signature length, non-positive space fraction).
    pub fn from_trie(
        tree: &DataTree,
        full: &twig_pst::SuffixTrie,
        config: &CstConfig,
    ) -> Result<Self, CstError> {
        if config.signature_len == 0 {
            return Err(CstError::ZeroSignatureLength);
        }
        let sig_cost = if config.with_signatures { config.signature_len * 4 } else { 0 };
        let cost =
            move |info: NodeCostInfo| NODE_BASE_COST + if info.label_rooted { sig_cost } else { 0 };
        let trie = match config.budget {
            SpaceBudget::Bytes(bytes) => full.prune_to_budget(bytes, cost),
            SpaceBudget::Fraction(fraction) => {
                if !(fraction > 0.0 && fraction.is_finite()) {
                    return Err(CstError::InvalidSpaceFraction(fraction));
                }
                let bytes = twig_util::cast::f64_to_size_saturating(
                    twig_util::cast::size_to_f64(tree.source_bytes()) * fraction,
                );
                full.prune_to_budget(bytes, cost)
            }
            SpaceBudget::Threshold(threshold) => full.prune(threshold),
        };

        // Signature pass (optionally sharded across threads; shard
        // results merge by componentwise min, so the outcome is identical
        // for every thread count).
        let signatures: Vec<Option<CompactSignature>> = if config.with_signatures {
            let family = HashFamily::new(config.signature_len, config.seed);
            let threads = config.threads.max(1);
            let shard_signatures = |shard: usize, of: usize| {
                let mut building: Vec<Option<Signature<u64>>> = (0..trie.node_count())
                    .map(|i| {
                        let id = TrieNodeId(i as u32);
                        (id != TrieNodeId::ROOT && trie.label_rooted(id))
                            .then(|| Signature::empty(config.signature_len))
                    })
                    .collect();
                for_each_rooted_subpath_sharded(
                    tree,
                    &trie,
                    &config.trie,
                    shard,
                    of,
                    |start, node| {
                        if let Some(sig) = building[node.index()].as_mut() {
                            sig.insert(&family, u64::from(start.0));
                        }
                    },
                );
                building
            };
            let building = if threads == 1 {
                shard_signatures(0, 1)
            } else {
                let shards: Vec<Vec<Option<Signature<u64>>>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|shard| scope.spawn(move || shard_signatures(shard, threads)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(shard) => shard,
                            // Propagate a worker panic verbatim instead
                            // of wrapping it in a second panic site.
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                });
                shards
                    .into_iter()
                    .reduce(|mut merged, shard| {
                        for (into, from) in merged.iter_mut().zip(shard) {
                            if let (Some(a), Some(b)) = (into.as_mut(), from) {
                                *a = Signature::union(&[a, &b]);
                            }
                        }
                        merged
                    })
                    // threads >= 2 on this branch, so there is always a
                    // shard to reduce; an empty default keeps this
                    // expression panic-free regardless.
                    .unwrap_or_default()
            };
            building.iter().map(|sig| sig.as_ref().map(Signature::truncate)).collect()
        } else {
            vec![None; trie.node_count()]
        };

        let size_bytes = (trie.node_count() - 1) * NODE_BASE_COST
            + signatures.iter().flatten().count() * sig_cost;

        Ok(Self {
            trie,
            signatures,
            interner: tree.interner().clone(),
            n: u64::try_from(tree.element_count()).unwrap_or(u64::MAX),
            signature_len: config.signature_len,
            seed: config.seed,
            size_bytes,
            source_bytes: tree.source_bytes(),
            fallback: config.fallback,
        })
    }

    /// Reassembles a summary from deserialized parts (see `serialize`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        trie: PrunedTrie,
        signatures: Vec<Option<CompactSignature>>,
        interner: Interner,
        n: u64,
        signature_len: usize,
        seed: u64,
        size_bytes: usize,
        source_bytes: usize,
    ) -> Result<Self, CstError> {
        if signatures.len() != trie.node_count() {
            return Err(CstError::SignatureTableMismatch {
                signatures: signatures.len(),
                nodes: trie.node_count(),
            });
        }
        Ok(Self {
            trie,
            signatures,
            interner,
            n,
            signature_len,
            seed,
            size_bytes,
            source_bytes,
            fallback: SignatureFallback::default(),
        })
    }

    /// The label vocabulary (for serialization).
    pub(crate) fn interner_ref(&self) -> &Interner {
        &self.interner
    }

    /// The pruned subpath trie.
    #[inline]
    pub fn trie(&self) -> &PrunedTrie {
        &self.trie
    }

    /// Signature of the subpath at `node`, if it is label-rooted.
    #[inline]
    pub fn signature(&self, node: TrieNodeId) -> Option<&CompactSignature> {
        self.signatures[node.index()].as_ref()
    }

    /// Number of entries in the signature table (the auditor's I1 checks
    /// it against the trie's node count).
    #[cfg(any(test, feature = "audit"))]
    pub(crate) fn signature_table_len(&self) -> usize {
        self.signatures.len()
    }

    /// Number of data tree element nodes — the `n` of the estimation
    /// formulae.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Accounted summary size in bytes (cost model: 20 B per node plus
    /// `4·L` per signature).
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Size of the XML source the summarized tree was parsed from.
    pub fn source_bytes(&self) -> usize {
        self.source_bytes
    }

    /// Accounted size as a fraction of the data size (0 when unknown).
    pub fn space_fraction(&self) -> f64 {
        if self.source_bytes == 0 {
            0.0
        } else {
            twig_util::cast::size_to_f64(self.size_bytes)
                / twig_util::cast::size_to_f64(self.source_bytes)
        }
    }

    /// Number of kept trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.trie.node_count()
    }

    /// The prune threshold the budget search selected.
    pub fn threshold(&self) -> u32 {
        self.trie.threshold()
    }

    /// Signature length `L`.
    #[inline]
    pub fn signature_len(&self) -> usize {
        self.signature_len
    }

    /// The below-resolution fallback mode.
    #[inline]
    pub fn fallback(&self) -> SignatureFallback {
        self.fallback
    }

    /// Overrides the below-resolution fallback mode (a query-time choice;
    /// it does not affect the stored summary).
    pub fn set_fallback(&mut self, fallback: SignatureFallback) {
        self.fallback = fallback;
    }

    /// Min-hash family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Resolves a query label to the data vocabulary.
    #[inline]
    pub fn symbol(&self, label: &str) -> Option<Symbol> {
        self.interner.get(label)
    }

    /// Resolves a symbol back to its label string.
    pub fn label_str_of(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The label vocabulary in symbol order (for packing into on-disk
    /// formats; `Symbol(i)` names the `i`-th yielded label).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.interner.iter().map(|(_, label)| label)
    }

    /// Looks up the trie node for a token sequence, if fully present.
    #[inline]
    pub fn lookup(&self, tokens: &[PathToken]) -> Option<TrieNodeId> {
        self.trie.find(tokens)
    }

    /// Presence count `Cp(α)` of a trie node.
    #[inline]
    pub fn presence(&self, node: TrieNodeId) -> u64 {
        u64::from(self.trie.presence(node))
    }

    /// Occurrence count `Co(α)` of a trie node.
    #[inline]
    pub fn occurrence(&self, node: TrieNodeId) -> u64 {
        u64::from(self.trie.occurrence(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> DataTree {
        DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><year>Y1</year></book>",
            "<book><author>A1</author><year>Y1</year></book>",
            "<book><author>A2</author><year>Y2</year></book>",
            "</dblp>"
        ))
        .unwrap()
    }

    fn unpruned_config() -> CstConfig {
        CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() }
    }

    fn tokens(cst: &Cst, labels: &[&str], value: &str) -> Vec<PathToken> {
        let mut out: Vec<PathToken> = labels
            .iter()
            .map(|l| PathToken::Element(cst.symbol(l).expect("known label")))
            .collect();
        out.extend(value.bytes().map(PathToken::Char));
        out
    }

    #[test]
    fn builds_with_counts_and_signatures() {
        let tree = sample_tree();
        let cst = Cst::build(&tree, &unpruned_config()).expect("CST config is valid");
        let ba = cst.lookup(&tokens(&cst, &["book", "author"], "")).unwrap();
        assert_eq!(cst.presence(ba), 3);
        assert!(cst.signature(ba).is_some());
        assert!(!cst.signature(ba).unwrap().is_empty_set());
    }

    #[test]
    fn string_fragments_have_no_signature() {
        let tree = sample_tree();
        let cst = Cst::build(&tree, &unpruned_config()).expect("CST config is valid");
        let a1: Vec<PathToken> = "A1".bytes().map(PathToken::Char).collect();
        let node = cst.lookup(&a1).unwrap();
        assert!(cst.signature(node).is_none(), "paper fn. 3: leaf paths carry no signature");
    }

    #[test]
    fn signature_intersection_reflects_correlation() {
        // Books with author A1 are exactly the books with year Y1 (2 of
        // them); the signatures of book.author.A1 and book.year.Y1 should
        // intersect to ~2.
        let tree = sample_tree();
        let cst = Cst::build(
            &tree,
            &CstConfig {
                signature_len: 64,
                budget: SpaceBudget::Threshold(1),
                ..CstConfig::default()
            },
        )
        .expect("CST config is valid");
        let a = cst.lookup(&tokens(&cst, &["book", "author"], "A1")).unwrap();
        let y = cst.lookup(&tokens(&cst, &["book", "year"], "Y1")).unwrap();
        let est = twig_sethash::estimate_intersection(&[
            (cst.signature(a).unwrap(), cst.presence(a)),
            (cst.signature(y).unwrap(), cst.presence(y)),
        ]);
        assert!((est - 2.0).abs() < 0.5, "est = {est}");

        // And A2 books vs Y1 books are disjoint.
        let a2 = cst.lookup(&tokens(&cst, &["book", "author"], "A2")).unwrap();
        let est0 = twig_sethash::estimate_intersection(&[
            (cst.signature(a2).unwrap(), cst.presence(a2)),
            (cst.signature(y).unwrap(), cst.presence(y)),
        ]);
        assert!(est0 < 0.5, "est0 = {est0}");
    }

    #[test]
    fn fraction_budget_respected() {
        let tree = sample_tree();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Fraction(0.5), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        assert!(cst.size_bytes() <= tree.source_bytes() / 2 + 1);
        assert!(cst.space_fraction() <= 0.51);
    }

    #[test]
    fn bigger_budget_more_nodes() {
        let tree = sample_tree();
        let small = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Bytes(300), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        let large = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Bytes(30_000), ..CstConfig::default() },
        )
        .expect("CST config is valid");
        assert!(small.node_count() <= large.node_count());
    }

    #[test]
    fn n_is_element_count() {
        let tree = sample_tree();
        let cst = Cst::build(&tree, &unpruned_config()).expect("CST config is valid");
        assert_eq!(cst.n(), tree.element_count() as u64);
    }

    #[test]
    fn deterministic_given_seed() {
        let tree = sample_tree();
        let cst1 = Cst::build(&tree, &unpruned_config()).expect("CST config is valid");
        let cst2 = Cst::build(&tree, &unpruned_config()).expect("CST config is valid");
        assert_eq!(cst1.node_count(), cst2.node_count());
        let ba1 = cst1.lookup(&tokens(&cst1, &["book", "author"], "")).unwrap();
        let ba2 = cst2.lookup(&tokens(&cst2, &["book", "author"], "")).unwrap();
        assert_eq!(cst1.signature(ba1), cst2.signature(ba2));
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use twig_datagen::{generate_dblp, DblpConfig};

    #[test]
    fn parallel_build_is_byte_identical() {
        let xml = generate_dblp(&DblpConfig {
            target_bytes: 200 << 10,
            seed: 77,
            ..DblpConfig::default()
        });
        let tree = DataTree::from_xml(&xml).unwrap();
        let base = CstConfig { budget: SpaceBudget::Fraction(0.2), ..CstConfig::default() };
        let serial = Cst::build(&tree, &base).expect("CST config is valid");
        for threads in [2usize, 4, 7] {
            let parallel = Cst::build(&tree, &CstConfig { threads, ..base.clone() })
                .expect("CST config is valid");
            let mut a = Vec::new();
            let mut b = Vec::new();
            serial.write_to(&mut a).unwrap();
            parallel.write_to(&mut b).unwrap();
            assert_eq!(a, b, "threads = {threads} must be byte-identical");
        }
    }

    #[test]
    fn sharded_paths_partition_exactly() {
        let xml =
            generate_dblp(&DblpConfig { target_bytes: 60 << 10, seed: 5, ..DblpConfig::default() });
        let tree = DataTree::from_xml(&xml).unwrap();
        let mut all = 0usize;
        tree.for_each_root_to_leaf_path(|_| all += 1);
        for of in [2usize, 3, 5] {
            let mut sharded = 0usize;
            for shard in 0..of {
                tree.for_each_root_to_leaf_path_sharded(shard, of, |_| sharded += 1);
            }
            assert_eq!(sharded, all, "shards {of} must partition paths");
        }
    }
}
