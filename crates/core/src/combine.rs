//! Maximal-overlap conditioning and region count estimation (Sec. 3.6,
//! 3.7).
//!
//! The combination step walks the parsed elements (single subpaths and
//! twiglets) in query order, keeps the set of already-covered query units,
//! and multiplies each element's count conditioned on its overlap with the
//! covered region:
//!
//! ```text
//! estimate = n · Π_elements  Pr(element) / Pr(overlap with covered)
//! ```
//!
//! An empty overlap divides by nothing (independence); a single-chain
//! overlap is read exactly from the CST (monotonicity guarantees it is
//! present); a subtree-shaped overlap is itself estimated with set hashing
//! — the "overlaps themselves are subtrees" case the paper calls out.

use twig_pst::PathToken;
use twig_sethash::{view_estimate_intersection, view_estimate_union_size, view_resemblance};
use twig_util::FxHashSet;

use crate::estimate::CountKind;
use crate::parse::Piece;
use crate::query::{CompiledQuery, Token, Unit};
use crate::summary::{Summary, TrieAccess};
use crate::twiglets::Twiglet;

/// A combination element: one parsed subpath or one twiglet.
#[derive(Debug, Clone)]
pub enum Element {
    /// A single subpath.
    Single(Piece),
    /// A set-hash twiglet.
    Group(Twiglet),
}

impl Element {
    fn position(&self) -> (usize, usize, u8) {
        match self {
            // At equal (path, start), singles are processed before groups
            // so the deepest available conditioning context is established
            // first (the MSH `a.b.c.d` example).
            Element::Single(p) => (p.path, p.start, 0),
            Element::Group(t) => (t.position.0, t.position.1, 1),
        }
    }

    fn chains(&self) -> Vec<Piece> {
        match self {
            Element::Single(p) => vec![p.clone()],
            Element::Group(t) => t.chains.clone(),
        }
    }
}

/// Orders elements for combination: by first covered position, singles
/// before groups on ties.
pub fn order_elements(mut elements: Vec<Element>) -> Vec<Element> {
    elements.sort_by_key(Element::position);
    elements
}

/// Count (presence or occurrence) of a single CST chain.
fn chain_count<S: Summary>(cst: &S, piece: &Piece, kind: CountKind) -> f64 {
    match kind {
        CountKind::Presence => cst.presence(piece.trie) as f64,
        CountKind::Occurrence => cst.occurrence(piece.trie) as f64,
    }
}

/// Estimates the count of a region given as chains with a common start
/// unit (a "star"). One chain → exact CST count; several chains →
/// signature intersection, scaled to occurrences by the per-chain
/// `Co/Cp` ratios in occurrence mode (Sec. 5).
pub fn estimate_region<S: Summary>(cst: &S, chains: &[Piece], kind: CountKind) -> f64 {
    // Dedup identical unit chains (shared prefixes across paths).
    let mut unique: Vec<&Piece> = Vec::new();
    for chain in chains {
        if !unique.iter().any(|c| c.units == chain.units) {
            unique.push(chain);
        }
    }
    // Drop chains strictly contained in another (prefixes of longer
    // chains contribute nothing to the intersection).
    let survivors: Vec<&Piece> = unique
        .iter()
        .copied()
        .filter(|c| !unique.iter().any(|other| !std::ptr::eq(*other, *c) && c.contained_in(other)))
        .collect();

    match survivors.len() {
        0 => 0.0,
        1 => chain_count(cst, survivors[0], kind),
        _ => match kind {
            CountKind::Presence => star_presence(cst, &survivors),
            // Every presence yields at least one mapping, so the
            // occurrence estimate is floored at the presence estimate.
            CountKind::Occurrence => {
                star_occurrence(cst, &survivors).max(star_presence(cst, &survivors))
            }
        },
    }
}

/// Occurrence estimate for a star of ≥ 2 chains.
///
/// When the chains diverge right after their shared start unit — the
/// common twiglet shape — this is the paper's Sec. 5 formula: presence
/// intersection times the per-chain `Co/Cp` ratios (the Figure 1 example:
/// `2.9 × (6/3) × (3/3) ≈ 5.8`).
///
/// When the chains share a longer prefix (e.g. all rooted at the document
/// root, where every chain has presence 1), the mapping multiplicity
/// lives below the *divergence point*, not at the root: the presence
/// intersection collapses to the handful of prefix roots and the
/// full-chain ratios multiply unrelated whole-corpus multiplicities. In
/// that case the estimate recurses on the *substar* of chain suffixes
/// from the divergence unit (which share exactly one unit, the base
/// case) and scales by the fraction of branch-label instances that sit
/// under the prefix path — a uniformity assumption in the same spirit as
/// the paper's.
fn star_occurrence<S: Summary>(cst: &S, chains: &[&Piece]) -> f64 {
    let mut lcp = chains[0].units.len();
    for chain in &chains[1..] {
        let common = chain.units.iter().zip(&chains[0].units).take_while(|(a, b)| a == b).count();
        lcp = lcp.min(common);
    }
    debug_assert!(lcp >= 1, "star chains share their start unit");
    if lcp <= 1 {
        // Base case: the paper's formula.
        let presence = star_presence(cst, chains);
        let mut scale = 1.0;
        for chain in chains {
            let cp = cst.presence(chain.trie) as f64;
            let co = cst.occurrence(chain.trie) as f64;
            if cp > 0.0 {
                scale *= co / cp;
            }
        }
        return presence * scale;
    }
    // Recurse on the substar at the divergence unit.
    let divergence = lcp - 1;
    let full_tokens = cst.trie().tokens_of(chains[0].trie);
    let mut suffixes: Vec<Piece> = Vec::with_capacity(chains.len());
    for chain in chains {
        let tokens = cst.trie().tokens_of(chain.trie);
        // Present by the monotonicity property.
        let Some(trie) = cst.lookup(&tokens[divergence..]) else {
            // Defensive: fall back to the base-case formula on the full
            // chains rather than returning a wrong scale.
            return star_presence(cst, chains);
        };
        suffixes.push(Piece {
            path: chain.path,
            start: chain.start + divergence,
            end: chain.end,
            trie,
            units: chain.units[divergence..].to_vec(),
        });
    }
    let suffix_refs: Vec<&Piece> = suffixes.iter().collect();
    let sub_occurrence = star_occurrence(cst, &suffix_refs);
    // Context: what fraction of branch-label instances lie under the
    // shared prefix chain?
    let prefix_node = cst.lookup(&full_tokens[..lcp]);
    let branch_node = cst.lookup(&full_tokens[divergence..lcp]);
    let context = match (prefix_node, branch_node) {
        (Some(p), Some(b)) if cst.occurrence(b) > 0 => {
            (cst.occurrence(p) as f64 / cst.occurrence(b) as f64).min(1.0)
        }
        _ => 1.0,
    };
    sub_occurrence * context
}

/// Presence estimate for a star of ≥ 2 chains: set-hash intersection of
/// the chains' rooting sets.
///
/// Min-hash with `L` components cannot resolve resemblances below `~1/L`:
/// a zero-match signature comparison only tells us the intersection is
/// smaller than about `|∪|/L`, not that it is empty. In that regime the
/// estimate falls back to the independence product (the pure-MO
/// assumption), capped by the resolution bound — so set hashing improves
/// on MO where it can see, and never zeroes out a query it cannot.
fn star_presence<S: Summary>(cst: &S, chains: &[&Piece]) -> f64 {
    let independence = conditional_independence(cst, chains);
    let mut sets = Vec::with_capacity(chains.len());
    for chain in chains {
        match cst.signature(chain.trie) {
            Some(sig) => sets.push((sig, cst.presence(chain.trie))),
            // No signature (signature-free summary, or a pure string
            // fragment): conditional independence is all we have.
            None => return independence,
        }
    }
    if sets.iter().any(|&(_, size)| size == 0) {
        return 0.0; // genuinely empty set: the intersection is empty
    }
    let signatures: Vec<_> = sets.iter().map(|&(sig, _)| sig).collect();
    let len = cst.signature_len().max(1) as f64;
    let matches = (view_resemblance(&signatures) * len).round();
    if matches == 0.0 {
        return match cst.fallback() {
            // The paper's literal formula: ρ̂ = 0 ⇒ |∩| = 0.
            crate::cst::SignatureFallback::Zero => 0.0,
            // Below the signature's resolution all we learn is an upper
            // bound of roughly |∪|/L on the intersection; fall back to
            // the MO-style no-correlation estimate under that bound.
            crate::cst::SignatureFallback::ConditionalIndependence => {
                let resolution = view_estimate_union_size(&sets) / len;
                independence.min(resolution)
            }
        };
    }
    let estimate = view_estimate_intersection(&sets);
    // Shrink toward the no-correlation baseline in proportion to the
    // evidence: with m matching components the resemblance estimate has
    // relative error ~1/√m, so a single match (which overstates weak
    // correlations by up to L×) moves the estimate only one third of the
    // way from independence. Strong signals (m ≫ 1) dominate quickly.
    let weight = matches / (matches + 2.0);
    let min_size = sets.iter().map(|&(_, size)| size).min().expect("non-empty") as f64;
    (weight * estimate + (1.0 - weight) * independence).min(min_size)
}

/// The no-correlation baseline for a star: independence of the chains
/// *conditioned on their longest common prefix* —
/// `Cp(C) · Π (Cp(chain_i) / Cp(C))` — which is exactly what pure MO's
/// overlap conditioning computes for the same subpaths. Falling back to
/// anything weaker would make set hashing worse than MO whenever the
/// signatures under-resolve.
fn conditional_independence<S: Summary>(cst: &S, chains: &[&Piece]) -> f64 {
    // Longest common prefix length over the unit chains.
    let mut lcp = chains[0].units.len();
    for chain in &chains[1..] {
        let common = chain.units.iter().zip(&chains[0].units).take_while(|(a, b)| a == b).count();
        lcp = lcp.min(common);
    }
    // Trie node of the common prefix: walk up from any chain's node. A
    // healthy summary always has the parents (the chain is `units.len()`
    // deep); a degraded one (flat reader with a poisoned parent section)
    // may not — treat that as an empty region rather than panicking.
    let mut prefix_node = chains[0].trie;
    for _ in 0..(chains[0].units.len() - lcp) {
        match cst.trie().parent(prefix_node) {
            Some(parent) => prefix_node = parent,
            None => return 0.0,
        }
    }
    let base = if lcp == 0 { cst.n() as f64 } else { cst.presence(prefix_node) as f64 };
    if base <= 0.0 {
        return 0.0;
    }
    base * chains.iter().map(|c| cst.presence(c.trie) as f64 / base).product::<f64>()
}

/// The covered-prefix chains of an element's region: for each chain, the
/// longest prefix whose units are all in `covered`.
fn overlap_chains<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    chains: &[Piece],
    covered: &FxHashSet<Unit>,
) -> Vec<Piece> {
    let mut out: Vec<Piece> = Vec::new();
    for chain in chains {
        let mut len = 0;
        for unit in &chain.units {
            if covered.contains(unit) {
                len += 1;
            } else {
                break;
            }
        }
        if len == 0 {
            continue;
        }
        let tokens: Vec<PathToken> = query.paths[chain.path].tokens[chain.start..chain.start + len]
            .iter()
            .map(|t| match t {
                Token::Ok(pt) => *pt,
                _ => unreachable!("pieces contain only Ok tokens"),
            })
            .collect();
        // Present by monotonicity.
        let Some(trie) = cst.lookup(&tokens) else {
            continue;
        };
        let prefix = Piece {
            path: chain.path,
            start: chain.start,
            end: chain.start + len,
            trie,
            units: chain.units[..len].to_vec(),
        };
        if !out.iter().any(|p| p.units == prefix.units) {
            out.push(prefix);
        }
    }
    out
}

/// One multiplicative factor of a combination, for explanation output.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Whether the element was a twiglet (set-hash group).
    pub is_group: bool,
    /// The element's chains (for rendering).
    pub chains: Vec<Piece>,
    /// The conditioning overlap chains (empty = independent join by `n`).
    pub overlaps: Vec<Piece>,
    /// Estimated count of the element's region.
    pub numerator: f64,
    /// Estimated count of the overlap (or `n` when independent).
    pub denominator: f64,
    /// True when the element was skipped as fully covered.
    pub skipped: bool,
}

/// Runs MO conditioning over ordered elements and returns the final count
/// estimate (Sec. 3.7). Elements are borrowed so a cached plan can be
/// combined repeatedly without cloning.
pub fn combine<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    elements: &[Element],
    kind: CountKind,
) -> f64 {
    combine_traced(cst, query, elements, kind, None)
}

/// [`combine`] with an optional trace sink recording every factor (used
/// by [`crate::explain`]).
pub fn combine_traced<S: Summary>(
    cst: &S,
    query: &CompiledQuery,
    elements: &[Element],
    kind: CountKind,
    mut trace: Option<&mut Vec<Factor>>,
) -> f64 {
    let n = cst.n() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut ordered: Vec<&Element> = elements.iter().collect();
    ordered.sort_by_key(|e| e.position());
    let mut covered: FxHashSet<Unit> = FxHashSet::default();
    let mut result = n;
    for element in ordered {
        let chains = element.chains();
        let is_group = matches!(element, Element::Group(_));
        // Fully covered elements contribute Pr(X|X) = 1.
        let fully_covered = chains.iter().all(|c| c.units.iter().all(|u| covered.contains(u)));
        if fully_covered {
            if let Some(sink) = trace.as_deref_mut() {
                sink.push(Factor {
                    is_group,
                    chains,
                    overlaps: Vec::new(),
                    numerator: 1.0,
                    denominator: 1.0,
                    skipped: true,
                });
            }
            continue;
        }
        let numerator = estimate_region(cst, &chains, kind);
        let overlaps = overlap_chains(cst, query, &chains, &covered);
        let denominator = if overlaps.is_empty() {
            n
        } else if numerator <= 0.0 {
            // Denominator irrelevant; keep the trace informative.
            estimate_region(cst, &overlaps, kind)
        } else {
            // count(overlap) ≥ count(region) must hold; repair signature
            // noise that says otherwise.
            estimate_region(cst, &overlaps, kind).max(numerator)
        };
        if let Some(sink) = trace.as_deref_mut() {
            sink.push(Factor {
                is_group,
                chains: chains.clone(),
                overlaps: overlaps.clone(),
                numerator,
                denominator,
                skipped: false,
            });
        }
        if numerator <= 0.0 {
            return 0.0;
        }
        result *= numerator / denominator;
        for chain in &chains {
            covered.extend(chain.units.iter().copied());
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{Cst, CstConfig, SpaceBudget};
    use crate::parse::maximal_pieces;
    use twig_pst::PathToken as PT;
    use twig_tree::{DataTree, Twig};

    fn fixture() -> Cst {
        // 40 records: author Anna ⇔ year 1999 (20), Bo ⇔ 2000 (20).
        let mut xml = String::from("<dblp>");
        for _ in 0..20 {
            xml.push_str("<book><author>Anna</author><year>1999</year></book>");
        }
        for _ in 0..20 {
            xml.push_str("<book><author>Bo</author><year>2000</year></book>");
        }
        xml.push_str("</dblp>");
        let tree = DataTree::from_xml(&xml).unwrap();
        Cst::build(
            &tree,
            &CstConfig {
                budget: SpaceBudget::Threshold(1),
                signature_len: 128,
                ..CstConfig::default()
            },
        )
        .expect("CST config is valid")
    }

    fn pieces_for(cst: &Cst, expr: &str) -> (CompiledQuery, Vec<Piece>) {
        let twig = Twig::parse(expr).unwrap();
        let query = CompiledQuery::compile(cst, &twig);
        let pieces = maximal_pieces(cst, &query);
        (query, pieces)
    }

    #[test]
    fn estimate_region_single_chain_is_exact() {
        let cst = fixture();
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"))"#);
        assert_eq!(pieces.len(), 1);
        assert_eq!(estimate_region(&cst, &pieces, CountKind::Presence), 20.0);
        assert_eq!(estimate_region(&cst, &pieces, CountKind::Occurrence), 20.0);
    }

    #[test]
    fn estimate_region_dedups_identical_chains() {
        let cst = fixture();
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"))"#);
        let doubled = vec![pieces[0].clone(), pieces[0].clone()];
        assert_eq!(estimate_region(&cst, &doubled, CountKind::Presence), 20.0);
    }

    #[test]
    fn estimate_region_drops_prefix_chains() {
        let cst = fixture();
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"))"#);
        let full = pieces[0].clone();
        let prefix = Piece {
            path: full.path,
            start: full.start,
            end: full.end - 1,
            trie: cst.trie().parent(full.trie).unwrap(),
            units: full.units[..full.units.len() - 1].to_vec(),
        };
        let est = estimate_region(&cst, &[prefix, full], CountKind::Presence);
        assert_eq!(est, 20.0, "prefix must not dilute the star");
    }

    #[test]
    fn estimate_region_star_sees_correlation() {
        let cst = fixture();
        // Two chains from `book`: author Anna ∧ year 1999 — perfectly
        // correlated, true intersection 20.
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"),year("1999"))"#);
        assert_eq!(pieces.len(), 2);
        let est = estimate_region(&cst, &pieces, CountKind::Presence);
        assert!((est - 20.0).abs() < 4.0, "est = {est}");
    }

    #[test]
    fn estimate_region_star_sees_anticorrelation() {
        let cst = fixture();
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"),year("2000"))"#);
        let est = estimate_region(&cst, &pieces, CountKind::Presence);
        assert!(est < 3.0, "est = {est}");
    }

    #[test]
    fn conditional_independence_matches_mo_formula() {
        let cst = fixture();
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"),year("1999"))"#);
        let refs: Vec<&Piece> = pieces.iter().collect();
        let ind = conditional_independence(&cst, &refs);
        // Cp(book)·(20/40)·(20/40) = 40/4 = 10.
        assert!((ind - 10.0).abs() < 1e-9, "ind = {ind}");
    }

    #[test]
    fn order_elements_sorts_singles_before_groups() {
        let cst = fixture();
        let (_, pieces) = pieces_for(&cst, r#"book(author("Anna"),year("1999"))"#);
        let twiglet = crate::twiglets::Twiglet { chains: pieces.clone(), position: (0, 0) };
        let ordered =
            order_elements(vec![Element::Group(twiglet), Element::Single(pieces[0].clone())]);
        assert!(matches!(ordered[0], Element::Single(_)));
        assert!(matches!(ordered[1], Element::Group(_)));
    }

    #[test]
    fn combine_single_full_piece_returns_count() {
        let cst = fixture();
        let (query, pieces) = pieces_for(&cst, r#"book(author("Bo"))"#);
        let elements: Vec<Element> = pieces.into_iter().map(Element::Single).collect();
        let est = combine(&cst, &query, &elements, CountKind::Presence);
        assert!((est - 20.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn combine_conditions_on_overlap() {
        // Manufactured parse of book.author.Anna as two overlapping
        // pieces: book.author + author.Anna → MO must condition on the
        // shared `author` unit: Cp(b.a)·Cp(a.Anna)/Cp(a) = 40·20/40 = 20.
        let cst = fixture();
        let (query, pieces) = pieces_for(&cst, r#"book(author("Anna"))"#);
        let full = &pieces[0];
        let make = |lo: usize, hi: usize| {
            let tokens: Vec<PT> = query.paths[0].tokens[lo..hi]
                .iter()
                .map(|t| match t {
                    Token::Ok(pt) => *pt,
                    _ => panic!("test tokens are Ok"),
                })
                .collect();
            Piece {
                path: 0,
                start: lo,
                end: hi,
                trie: cst.lookup(&tokens).expect("in unpruned CST"),
                units: query.paths[0].units[lo..hi].to_vec(),
            }
        };
        let head = make(0, 2); // book.author
        let tail = make(1, full.end); // author."Anna"
        let est = combine(
            &cst,
            &query,
            &[Element::Single(head), Element::Single(tail)],
            CountKind::Presence,
        );
        assert!((est - 20.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn combine_skips_fully_covered_elements() {
        let cst = fixture();
        let (query, pieces) = pieces_for(&cst, r#"book(author("Anna"))"#);
        let piece = pieces[0].clone();
        let est = combine(
            &cst,
            &query,
            &[Element::Single(piece.clone()), Element::Single(piece)],
            CountKind::Presence,
        );
        assert!((est - 20.0).abs() < 1e-9, "duplicate must contribute 1: {est}");
    }

    #[test]
    fn combine_zero_when_chain_absent() {
        let cst = fixture();
        let (query, mut pieces) = pieces_for(&cst, r#"book(author("Anna"))"#);
        // Zero out the count by pointing the piece at a chain whose
        // presence is 0 — simulate with an empty-element query instead:
        // an absent value prefix parses into pieces that never cover the
        // value units, so combine is not even reached; instead check the
        // numerator==0 path via a manufactured zero-presence chain.
        // The root node has presence 0 in the pruned trie.
        pieces[0].trie = twig_pst::TrieNodeId::ROOT;
        let elements: Vec<Element> = pieces.into_iter().map(Element::Single).collect();
        let est = combine(&cst, &query, &elements, CountKind::Presence);
        assert_eq!(est, 0.0);
    }
}
