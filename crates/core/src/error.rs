//! Construction-time error reporting for the CST.

use std::fmt;

/// Why a [`Cst`](crate::Cst) could not be constructed.
///
/// These were once `assert!`s in the constructor; misconfiguration (a CLI
/// flag, a corrupt file) must surface as a value the caller can report,
/// not a library panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CstError {
    /// `CstConfig::signature_len` was 0; min-hash signatures need at
    /// least one component.
    ZeroSignatureLength,
    /// `SpaceBudget::Fraction` was not a positive finite number.
    InvalidSpaceFraction(f64),
    /// The signature table does not pair up with the trie (deserialized
    /// parts disagree about the node count).
    SignatureTableMismatch {
        /// Entries in the signature table.
        signatures: usize,
        /// Nodes in the pruned trie.
        nodes: usize,
    },
}

impl fmt::Display for CstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroSignatureLength => {
                write!(f, "signature length must be positive")
            }
            Self::InvalidSpaceFraction(fraction) => {
                write!(f, "space fraction must be positive and finite, got {fraction}")
            }
            Self::SignatureTableMismatch { signatures, nodes } => {
                write!(f, "signature table has {signatures} entries for {nodes} trie nodes")
            }
        }
    }
}

// `CstError` is a chain *root*: every variant describes a terminal
// misconfiguration with no underlying cause, so `source()` is `None`.
// Errors that wrap it (`serialize::ReadError::Invalid`, the serve
// registry's load errors) chain back to it via their own `source()`.
impl std::error::Error for CstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CstError::ZeroSignatureLength.to_string().contains("positive"));
        assert!(CstError::InvalidSpaceFraction(-0.5).to_string().contains("-0.5"));
        let mismatch = CstError::SignatureTableMismatch { signatures: 3, nodes: 7 };
        assert!(mismatch.to_string().contains('3'));
        assert!(mismatch.to_string().contains('7'));
    }
}
