//! Runtime invariant auditor for the CST (the `audit` feature).
//!
//! [`Cst::audit`] validates the structural invariant catalogue the
//! estimators assume (DESIGN.md § "Invariant catalogue"); a healthy
//! summary returns no violations, a corrupted or miscomputed one returns
//! a description of every broken invariant instead of panicking deep in
//! an estimator. [`Cst::audit_estimates`] additionally checks the
//! numeric contract of the estimator outputs on caller-supplied queries.
//!
//! The module is compiled for tests unconditionally and for dependents
//! only under `feature = "audit"` (the CLI turns it on for `twig audit`).

use std::fmt;

use twig_pst::TrieNodeId;
use twig_tree::Twig;

use crate::cst::Cst;
use crate::estimate::{Algorithm, CountKind};

/// A broken CST invariant, identified by the numbering of DESIGN.md's
/// invariant catalogue.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditViolation {
    /// I1 — the signature table must have exactly one slot per trie node.
    SignatureTableSize {
        /// Entries in the signature table.
        signatures: usize,
        /// Nodes in the pruned trie.
        nodes: usize,
    },
    /// I2a — presence counts distinct rooting nodes, occurrence counts
    /// all 1-1 mappings; `Cp(α) ≤ Co(α)` always.
    PresenceExceedsOccurrence {
        /// Violating trie node.
        node: u32,
        /// Its presence count.
        presence: u32,
        /// Its occurrence count.
        occurrence: u32,
    },
    /// I2b — a kept subpath was seen in the data, so both of its counts
    /// are at least 1.
    ZeroCount {
        /// Violating trie node.
        node: u32,
    },
    /// I3a — `pc` is monotone along trie edges: a path containing `α.x`
    /// contains `α` (non-root parents only).
    PathCountExceedsParent {
        /// Violating trie node.
        node: u32,
        /// Its `pc`.
        child: u32,
        /// Its parent's `pc`.
        parent: u32,
    },
    /// I3b — presence is monotone along trie edges: every rooting node
    /// of `α.x` roots `α` (non-root parents only).
    PresenceExceedsParent {
        /// Violating trie node.
        node: u32,
        /// Its presence.
        child: u32,
        /// Its parent's presence.
        parent: u32,
    },
    /// I4 — pruning keeps exactly the subpaths with `pc(α) ≥ threshold`.
    BelowThreshold {
        /// Violating trie node.
        node: u32,
        /// Its `pc`.
        path_count: u32,
        /// The trie's prune threshold.
        threshold: u32,
    },
    /// I5 — all signatures come from one hash family of length `L`.
    WrongSignatureLength {
        /// Violating trie node.
        node: u32,
        /// Components stored at the node.
        len: usize,
        /// The summary's `L`.
        expected: usize,
    },
    /// I6a — string subpaths carry no signature (paper footnote 3: leaf
    /// paths are estimated by counts alone).
    SignatureOnStringPath {
        /// Violating trie node.
        node: u32,
    },
    /// I6b — when the summary was built with signatures, every
    /// label-rooted non-root subpath has one.
    MissingSignature {
        /// Violating trie node.
        node: u32,
    },
    /// I7 — the child table and the parent/edge links describe the same
    /// tree.
    ParentChildMismatch {
        /// Node whose parent's child table does not point back at it.
        node: u32,
    },
    /// I8 — estimates are finite and non-negative for every algorithm
    /// and count kind.
    NonFiniteEstimate {
        /// The algorithm that produced the value.
        algorithm: Algorithm,
        /// The count kind requested.
        kind: CountKind,
        /// The offending query, printed.
        query: String,
        /// The value produced.
        value: f64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SignatureTableSize { signatures, nodes } => {
                write!(f, "I1: signature table has {signatures} entries for {nodes} trie nodes")
            }
            Self::PresenceExceedsOccurrence { node, presence, occurrence } => {
                write!(f, "I2a: node {node} has presence {presence} > occurrence {occurrence}")
            }
            Self::ZeroCount { node } => {
                write!(f, "I2b: kept node {node} has a zero presence or occurrence count")
            }
            Self::PathCountExceedsParent { node, child, parent } => {
                write!(f, "I3a: node {node} has pc {child} > parent pc {parent}")
            }
            Self::PresenceExceedsParent { node, child, parent } => {
                write!(f, "I3b: node {node} has presence {child} > parent presence {parent}")
            }
            Self::BelowThreshold { node, path_count, threshold } => {
                write!(f, "I4: node {node} kept with pc {path_count} below threshold {threshold}")
            }
            Self::WrongSignatureLength { node, len, expected } => {
                write!(f, "I5: node {node} has a {len}-component signature, expected {expected}")
            }
            Self::SignatureOnStringPath { node } => {
                write!(f, "I6a: string-path node {node} carries a signature")
            }
            Self::MissingSignature { node } => {
                write!(f, "I6b: label-rooted node {node} is missing its signature")
            }
            Self::ParentChildMismatch { node } => {
                write!(f, "I7: child table does not point back at node {node}")
            }
            Self::NonFiniteEstimate { algorithm, kind, query, value } => {
                write!(f, "I8: {algorithm} {kind:?} on {query} produced {value}")
            }
        }
    }
}

impl Cst {
    /// Validates the structural invariant catalogue (I1–I7) and returns
    /// every violation found; an empty vector means the summary is
    /// internally consistent.
    ///
    /// Deliberately *not* checked: occurrence monotonicity along trie
    /// edges. `Co` is not monotone — a node with several same-labeled
    /// children yields more child-subpath mappings than parent-subpath
    /// mappings — so any such check would reject valid summaries.
    #[must_use]
    pub fn audit(&self) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        let trie = self.trie();

        // I1: one signature slot per trie node.
        if self.signature_table_len() != trie.node_count() {
            violations.push(AuditViolation::SignatureTableSize {
                signatures: self.signature_table_len(),
                nodes: trie.node_count(),
            });
        }

        // Signature use is all-or-nothing per summary: if any node has a
        // signature the summary was built `with_signatures` and I6b
        // applies to every label-rooted node.
        let any_signature = trie.node_ids().any(|node| self.signature(node).is_some());

        for node in trie.node_ids().skip(1) {
            let presence = trie.presence(node);
            let occurrence = trie.occurrence(node);

            // I2a/I2b: count sanity.
            if presence > occurrence {
                violations.push(AuditViolation::PresenceExceedsOccurrence {
                    node: node.0,
                    presence,
                    occurrence,
                });
            }
            if presence == 0 || occurrence == 0 {
                violations.push(AuditViolation::ZeroCount { node: node.0 });
            }

            // I3: pc and presence monotone below non-root parents.
            if let Some(parent) = trie.parent(node) {
                if parent != TrieNodeId::ROOT {
                    if trie.path_count(node) > trie.path_count(parent) {
                        violations.push(AuditViolation::PathCountExceedsParent {
                            node: node.0,
                            child: trie.path_count(node),
                            parent: trie.path_count(parent),
                        });
                    }
                    if presence > trie.presence(parent) {
                        violations.push(AuditViolation::PresenceExceedsParent {
                            node: node.0,
                            child: presence,
                            parent: trie.presence(parent),
                        });
                    }
                }

                // I7: the parent's child table points back at this node
                // through this node's incoming edge.
                let linked = trie.edge(node).and_then(|edge| trie.child(parent, edge));
                if linked != Some(node) {
                    violations.push(AuditViolation::ParentChildMismatch { node: node.0 });
                }
            }

            // I4: pruning respected the threshold.
            if trie.path_count(node) < trie.threshold() {
                violations.push(AuditViolation::BelowThreshold {
                    node: node.0,
                    path_count: trie.path_count(node),
                    threshold: trie.threshold(),
                });
            }

            // I5/I6: signature placement and shape.
            match self.signature(node) {
                Some(signature) => {
                    if !trie.label_rooted(node) {
                        violations.push(AuditViolation::SignatureOnStringPath { node: node.0 });
                    }
                    if signature.len() != self.signature_len() {
                        violations.push(AuditViolation::WrongSignatureLength {
                            node: node.0,
                            len: signature.len(),
                            expected: self.signature_len(),
                        });
                    }
                }
                None => {
                    if any_signature && trie.label_rooted(node) {
                        violations.push(AuditViolation::MissingSignature { node: node.0 });
                    }
                }
            }
        }
        violations
    }

    /// Validates the numeric estimator contract (I8) on `queries`: every
    /// algorithm × count kind must produce a finite, non-negative value.
    #[must_use]
    pub fn audit_estimates(&self, queries: &[Twig]) -> Vec<AuditViolation> {
        let mut violations = Vec::new();
        for query in queries {
            for algorithm in Algorithm::ALL {
                for kind in [CountKind::Presence, CountKind::Occurrence] {
                    let value = self.estimate(query, algorithm, kind);
                    if !(value.is_finite() && value >= 0.0) {
                        violations.push(AuditViolation::NonFiniteEstimate {
                            algorithm,
                            kind,
                            query: query.to_string(),
                            value,
                        });
                    }
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::{CstConfig, SpaceBudget};
    use crate::error::CstError;
    use twig_pst::{ExportedNode, PrunedTrie};
    use twig_sethash::CompactSignature;
    use twig_tree::DataTree;

    fn sample_tree() -> DataTree {
        DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><year>Y1</year></book>",
            "<book><author>A1</author><year>Y1</year></book>",
            "<book><author>A2</author><year>Y2</year></book>",
            "<article><author>A3</author><title>T1</title></article>",
            "</dblp>"
        ))
        .expect("well-formed")
    }

    fn sample_cst() -> (DataTree, Cst) {
        let tree = sample_tree();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(1), ..CstConfig::default() },
        )
        .expect("valid config");
        (tree, cst)
    }

    /// Rebuilds `cst` with its exported trie nodes passed through
    /// `corrupt` — the injection point for the corruption tests.
    fn rebuilt_with(
        tree: &DataTree,
        cst: &Cst,
        corrupt: impl FnOnce(&mut Vec<ExportedNode>),
    ) -> Cst {
        let mut nodes = cst.trie().export_nodes();
        corrupt(&mut nodes);
        let trie =
            PrunedTrie::from_exported(nodes, cst.trie().total_paths(), cst.trie().threshold());
        let signatures: Vec<Option<CompactSignature>> =
            trie.node_ids().map(|id| cst.signature(id).cloned()).collect();
        Cst::from_parts(
            trie,
            signatures,
            tree.interner().clone(),
            cst.n(),
            cst.signature_len(),
            cst.seed(),
            cst.size_bytes(),
            cst.source_bytes(),
        )
        .expect("tables still aligned")
    }

    /// Replaces node `target`'s signature through `from_parts`.
    fn with_signature(
        tree: &DataTree,
        cst: &Cst,
        target: u32,
        signature: Option<CompactSignature>,
    ) -> Cst {
        let trie = PrunedTrie::from_exported(
            cst.trie().export_nodes(),
            cst.trie().total_paths(),
            cst.trie().threshold(),
        );
        let signatures: Vec<Option<CompactSignature>> = trie
            .node_ids()
            .map(|id| if id.0 == target { signature.clone() } else { cst.signature(id).cloned() })
            .collect();
        Cst::from_parts(
            trie,
            signatures,
            tree.interner().clone(),
            cst.n(),
            cst.signature_len(),
            cst.seed(),
            cst.size_bytes(),
            cst.source_bytes(),
        )
        .expect("tables still aligned")
    }

    /// A node id with a signature (label-rooted) and one without (a
    /// string path), for targeted corruption.
    fn signed_and_unsigned(cst: &Cst) -> (u32, u32) {
        let signed = cst
            .trie()
            .node_ids()
            .find(|&id| cst.signature(id).is_some())
            .expect("summary has signatures");
        let unsigned = cst
            .trie()
            .node_ids()
            .skip(1)
            .find(|&id| !cst.trie().label_rooted(id))
            .expect("summary has string paths");
        (signed.0, unsigned.0)
    }

    #[test]
    fn healthy_summary_passes() {
        let (_, cst) = sample_cst();
        assert_eq!(cst.audit(), vec![]);
    }

    #[test]
    fn healthy_signatureless_summary_passes() {
        let tree = sample_tree();
        let cst = Cst::build(
            &tree,
            &CstConfig {
                budget: SpaceBudget::Threshold(1),
                with_signatures: false,
                ..CstConfig::default()
            },
        )
        .expect("valid config");
        assert_eq!(cst.audit(), vec![]);
    }

    // Corruption class 1: truncated signature table. Rejected at
    // reassembly time (I1 is enforced structurally by `from_parts`), so
    // an audit can assume the table is aligned.
    #[test]
    fn corruption_truncated_signature_table_rejected() {
        let (tree, cst) = sample_cst();
        let trie = PrunedTrie::from_exported(
            cst.trie().export_nodes(),
            cst.trie().total_paths(),
            cst.trie().threshold(),
        );
        let nodes = trie.node_count();
        let mut signatures: Vec<Option<CompactSignature>> =
            trie.node_ids().map(|id| cst.signature(id).cloned()).collect();
        signatures.pop();
        let err = Cst::from_parts(
            trie,
            signatures,
            tree.interner().clone(),
            cst.n(),
            cst.signature_len(),
            cst.seed(),
            cst.size_bytes(),
            cst.source_bytes(),
        )
        .expect_err("truncated table must be rejected");
        assert_eq!(err, CstError::SignatureTableMismatch { signatures: nodes - 1, nodes });
    }

    // Corruption class 2: presence exceeding occurrence.
    #[test]
    fn corruption_presence_above_occurrence_detected() {
        let (tree, cst) = sample_cst();
        let bad = rebuilt_with(&tree, &cst, |nodes| {
            let node = &mut nodes[1];
            node.presence = node.occurrence + 5;
        });
        let violations = bad.audit();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, AuditViolation::PresenceExceedsOccurrence { node: 1, .. })),
            "got {violations:?}"
        );
    }

    // Corruption class 3: child pc exceeding its parent's.
    #[test]
    fn corruption_child_pc_above_parent_detected() {
        let (tree, cst) = sample_cst();
        // Find a node whose parent is not the root.
        let deep = cst
            .trie()
            .node_ids()
            .skip(1)
            .find(|&id| cst.trie().parent(id) != Some(twig_pst::TrieNodeId::ROOT))
            .expect("trie has depth >= 2");
        let parent_pc = cst.trie().path_count(cst.trie().parent(deep).expect("non-root"));
        let bad = rebuilt_with(&tree, &cst, |nodes| {
            nodes[deep.index()].path_count = parent_pc + 10;
            // Keep occurrence >= presence untouched; only pc is corrupted.
        });
        let violations = bad.audit();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, AuditViolation::PathCountExceedsParent { node, .. } if *node == deep.0)),
            "got {violations:?}"
        );
    }

    // Corruption class 4: a kept node below the prune threshold.
    #[test]
    fn corruption_below_threshold_detected() {
        let tree = sample_tree();
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(2), ..CstConfig::default() },
        )
        .expect("valid config");
        assert!(cst.trie().threshold() >= 2, "fixture needs a real threshold");
        let bad = rebuilt_with(&tree, &cst, |nodes| {
            // pc 1 is below threshold 2 and never exceeds the parent.
            nodes[1].path_count = 1;
        });
        let violations = bad.audit();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                AuditViolation::BelowThreshold { node: 1, path_count: 1, .. }
            )),
            "got {violations:?}"
        );
    }

    // Corruption class 5: a signature of the wrong length.
    #[test]
    fn corruption_wrong_signature_length_detected() {
        let (tree, cst) = sample_cst();
        let (signed, _) = signed_and_unsigned(&cst);
        let short = CompactSignature::from_components(vec![7; cst.signature_len() / 2]);
        let bad = with_signature(&tree, &cst, signed, Some(short));
        let violations = bad.audit();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, AuditViolation::WrongSignatureLength { node, .. } if *node == signed)),
            "got {violations:?}"
        );
    }

    // Corruption class 6: a signature where none belongs (string path).
    #[test]
    fn corruption_signature_on_string_path_detected() {
        let (tree, cst) = sample_cst();
        let (_, unsigned) = signed_and_unsigned(&cst);
        let stray = CompactSignature::from_components(vec![7; cst.signature_len()]);
        let bad = with_signature(&tree, &cst, unsigned, Some(stray));
        let violations = bad.audit();
        assert!(
            violations.iter().any(
                |v| matches!(v, AuditViolation::SignatureOnStringPath { node } if *node == unsigned)
            ),
            "got {violations:?}"
        );
    }

    // Corruption class 7: a missing signature on a label-rooted subpath.
    #[test]
    fn corruption_missing_signature_detected() {
        let (tree, cst) = sample_cst();
        let (signed, _) = signed_and_unsigned(&cst);
        let bad = with_signature(&tree, &cst, signed, None);
        let violations = bad.audit();
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, AuditViolation::MissingSignature { node } if *node == signed)),
            "got {violations:?}"
        );
    }

    // Corruption class 8: zeroed counts.
    #[test]
    fn corruption_zero_count_detected() {
        let (tree, cst) = sample_cst();
        let bad = rebuilt_with(&tree, &cst, |nodes| {
            nodes[1].presence = 0;
            nodes[1].occurrence = 0;
        });
        let violations = bad.audit();
        assert!(
            violations.iter().any(|v| matches!(v, AuditViolation::ZeroCount { node: 1 })),
            "got {violations:?}"
        );
    }

    #[test]
    fn estimate_audit_passes_on_ordinary_queries() {
        let (_, cst) = sample_cst();
        let queries = [
            Twig::parse(r#"book(author("A1"),year("Y1"))"#).expect("valid"),
            Twig::parse(r#"no_such(label("x"))"#).expect("valid"),
        ];
        assert_eq!(cst.audit_estimates(&queries), vec![]);
    }

    #[test]
    fn violations_display_with_invariant_numbers() {
        let (tree, cst) = sample_cst();
        let bad = rebuilt_with(&tree, &cst, |nodes| {
            let node = &mut nodes[1];
            node.presence = node.occurrence + 5;
        });
        let printed: Vec<String> = bad.audit().iter().map(ToString::to_string).collect();
        assert!(printed.iter().any(|line| line.starts_with("I2a:")), "got {printed:?}");
    }
}
