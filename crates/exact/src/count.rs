//! Unordered exact counting (with wildcard support).

use twig_tree::{DataTree, NodeId, Twig, TwigLabel, TwigNodeId};
use twig_util::FxHashMap;

use crate::perm::permanent;

/// Memoizing counter for one `(tree, twig)` pair.
///
/// `count(q, v)` — the number of sibling-injective mappings of the query
/// subtree at `q` into the data subtree at `v` with `q ↦ v` — is memoized
/// on `(q, v)`, so repeated data subtrees (ubiquitous in records-shaped
/// XML) are evaluated once.
pub struct ExactCounter<'a> {
    tree: &'a DataTree,
    twig: &'a Twig,
    memo: FxHashMap<(u32, u32), u64>,
}

impl<'a> ExactCounter<'a> {
    /// Creates a counter for `twig` over `tree`.
    pub fn new(tree: &'a DataTree, twig: &'a Twig) -> Self {
        Self { tree, twig, memo: FxHashMap::default() }
    }

    /// Candidate data nodes for the query root.
    fn root_candidates(&self) -> Vec<NodeId> {
        match self.twig.label(self.twig.root()) {
            TwigLabel::Element(name) => match self.tree.symbol(name) {
                Some(sym) => self.tree.nodes_with_label(sym).to_vec(),
                None => Vec::new(),
            },
            // Value or wildcard roots are unusual; scan everything.
            _ => self.tree.dfs().collect(),
        }
    }

    /// Presence count (Definition 2): distinct rooting nodes.
    pub fn presence(&mut self) -> u64 {
        self.root_candidates().iter().filter(|&&v| self.count(self.twig.root(), v) > 0).count()
            as u64
    }

    /// Occurrence count (Definition 3): total mappings.
    pub fn occurrence(&mut self) -> u64 {
        let root = self.twig.root();
        self.root_candidates().iter().fold(0u64, |acc, &v| acc.saturating_add(self.count(root, v)))
    }

    /// Number of mappings of subtree(q) into subtree(v) with q ↦ v.
    fn count(&mut self, q: TwigNodeId, v: NodeId) -> u64 {
        if let Some(&cached) = self.memo.get(&(q.0, v.0)) {
            return cached;
        }
        let result = self.count_uncached(q, v);
        self.memo.insert((q.0, v.0), result);
        result
    }

    fn count_uncached(&mut self, q: TwigNodeId, v: NodeId) -> u64 {
        match self.twig.label(q) {
            TwigLabel::Value(prefix) => match self.tree.text(v) {
                // Prefix semantics: see DESIGN.md §3.
                Some(text) if text.starts_with(prefix.as_str()) => 1,
                _ => 0,
            },
            TwigLabel::Element(name) => {
                let matches =
                    self.tree.element_symbol(v).is_some_and(|sym| self.tree.label_str(sym) == name);
                if !matches {
                    return 0;
                }
                self.children_mappings(q, v)
            }
            TwigLabel::Star => {
                // `*` matches a chain of ≥ 1 elements ending at some
                // element descendant-or-self of v; the chain above the end
                // node is forced, so summing over end nodes counts each
                // mapping once.
                if self.tree.element_symbol(v).is_none() {
                    return 0;
                }
                let mut total = self.children_mappings(q, v);
                let children: Vec<NodeId> = self.tree.children(v).collect();
                for child in children {
                    if self.tree.element_symbol(child).is_some() {
                        total = total.saturating_add(self.count(q, child));
                    }
                }
                total
            }
        }
    }

    /// Mappings of q's children onto distinct children of v (the permanent
    /// of the pairwise count matrix).
    fn children_mappings(&mut self, q: TwigNodeId, v: NodeId) -> u64 {
        let q_children = self.twig.children(q).to_vec();
        if q_children.is_empty() {
            return 1;
        }
        let v_children: Vec<NodeId> = self.tree.children(v).collect();
        if q_children.len() > v_children.len() {
            return 0;
        }
        let rows: Vec<Vec<u64>> = q_children
            .iter()
            .map(|&qc| v_children.iter().map(|&vc| self.count(qc, vc)).collect())
            .collect();
        permanent(&rows)
    }
}

/// Presence count of `twig` in `tree` (unordered; Definition 2).
pub fn count_presence(tree: &DataTree, twig: &Twig) -> u64 {
    ExactCounter::new(tree, twig).presence()
}

/// Occurrence count of `twig` in `tree` (unordered; Definition 3).
pub fn count_occurrence(tree: &DataTree, twig: &Twig) -> u64 {
    ExactCounter::new(tree, twig).occurrence()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_tree::DataTree;

    /// The Figure 1 data tree from the paper.
    fn figure1_tree() -> DataTree {
        DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><title>T2</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><author>A3</author><title>T3</title><year>Y2</year></book>",
            "</dblp>"
        ))
        .unwrap()
    }

    fn twig(expr: &str) -> Twig {
        Twig::parse(expr).unwrap()
    }

    #[test]
    fn figure1_query1_has_three_matches() {
        // QUERY 1: book(author(A1), year(Y1)) — the paper says 3 matches.
        // NB: the paper's figure labels the third book's year Y1 as well;
        // our condensed tree gives it Y2, so QUERY 1 here matches books
        // 1 and 2 with A1 — count 2 — plus nothing else. Use the exact
        // figure labels instead to reproduce the "3 matches" claim.
        let tree = DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><title>T2</title><year>Y1</year></book>",
            "<book><author>A1</author><author>A2</author><author>A3</author><title>T3</title><year>Y1</year></book>",
            "</dblp>"
        ))
        .unwrap();
        let q1 = twig(r#"book(author("A1"),year("Y1"))"#);
        assert_eq!(count_presence(&tree, &q1), 3);
        assert_eq!(count_occurrence(&tree, &q1), 3);
    }

    #[test]
    fn figure1_query2_unordered_presence() {
        // QUERY 2: book(author(A1), author(A2), year(Y1)); unordered →
        // 2 matches per the paper (books 2 and 3 in their figure; in our
        // condensed tree book 3 has year Y2, so presence = 1).
        let tree = figure1_tree();
        let q2 = twig(r#"book(author("A1"),author("A2"),year("Y1"))"#);
        assert_eq!(count_presence(&tree, &q2), 1);
    }

    #[test]
    fn presence_vs_occurrence_on_multisets() {
        let tree = figure1_tree();
        // book(author): every book roots it once, but mappings = #authors.
        let q = twig("book(author)");
        assert_eq!(count_presence(&tree, &q), 3);
        assert_eq!(count_occurrence(&tree, &q), 6);
    }

    #[test]
    fn injectivity_enforced_between_siblings() {
        let tree = figure1_tree();
        // Two query authors must map to two distinct data authors.
        let q = twig("book(author,author)");
        // book1 has 1 author → 0 mappings; book2 has 2 → 2 ordered-pairs;
        // book3 has 3 → P(3,2) = 6.
        assert_eq!(count_presence(&tree, &q), 2);
        assert_eq!(count_occurrence(&tree, &q), 8);
    }

    #[test]
    fn value_prefix_semantics() {
        let tree = DataTree::from_xml("<r><a>Suciu</a><a>Sudarshan</a><a>Korn</a></r>").unwrap();
        assert_eq!(count_occurrence(&tree, &twig(r#"a("Su")"#)), 2);
        assert_eq!(count_occurrence(&tree, &twig(r#"a("Suciu")"#)), 1);
        assert_eq!(count_occurrence(&tree, &twig(r#"a("uciu")"#)), 0, "not a prefix");
        assert_eq!(count_occurrence(&tree, &twig(r#"a("")"#)), 3, "empty prefix matches all");
    }

    #[test]
    fn structural_leaf_matches_any_content() {
        let tree = figure1_tree();
        assert_eq!(count_occurrence(&tree, &twig("author")), 6);
        assert_eq!(count_occurrence(&tree, &twig("dblp(book)")), 3);
    }

    #[test]
    fn no_match_for_unknown_labels() {
        let tree = figure1_tree();
        assert_eq!(count_presence(&tree, &twig("publisher")), 0);
        assert_eq!(count_presence(&tree, &twig(r#"book(publisher("X"))"#)), 0);
    }

    #[test]
    fn deep_path_query() {
        let tree = figure1_tree();
        let q = twig(r#"dblp(book(author("A3")))"#);
        assert_eq!(count_presence(&tree, &q), 1);
        assert_eq!(count_occurrence(&tree, &q), 1);
    }

    #[test]
    fn occurrence_multiplies_along_branches() {
        // Two branch legs each with multiplicity 2 → 4 mappings.
        let tree = DataTree::from_xml("<r><x><a>1</a><a>2</a><b>1</b><b>2</b></x></r>").unwrap();
        let q = twig("x(a,b)");
        assert_eq!(count_presence(&tree, &q), 1);
        assert_eq!(count_occurrence(&tree, &q), 4);
    }

    #[test]
    fn wildcard_matches_chains() {
        let tree = DataTree::from_xml("<r><a><b><c>x</c></b></a><a><c>x</c></a></r>").unwrap();
        // r(*(c)): * can be a, a.b, or b... rooted at r: chains a(1st), a.b, a(2nd).
        let q = twig(r#"r(*(c("x")))"#);
        // chains ending at: first a (c? no c child — a's child is b) → 0;
        // a.b → c ✓; second a → c ✓. So occurrence = 2.
        assert_eq!(count_occurrence(&tree, &q), 2);
        assert_eq!(count_presence(&tree, &q), 1);
    }

    #[test]
    fn wildcard_single_level() {
        let tree = DataTree::from_xml("<r><a>x</a></r>").unwrap();
        assert_eq!(count_occurrence(&tree, &twig(r#"r(*("x"))"#)), 1);
        assert_eq!(count_occurrence(&tree, &twig(r#"r(*)"#)), 1);
    }

    #[test]
    fn presence_equals_occurrence_on_set_data() {
        // Below every `book` node sibling labels are distinct, so for
        // queries rooted at `book` the set semantics applies and the two
        // counts coincide. (Rooted at `dblp` they would not: `book`
        // itself is a duplicated sibling.)
        let tree = DataTree::from_xml(concat!(
            "<dblp>",
            "<book><author>A1</author><title>T1</title><year>Y1</year></book>",
            "<book><author>A2</author><title>T2</title><year>Y1</year></book>",
            "</dblp>"
        ))
        .unwrap();
        for expr in [r#"book(author("A1"),year("Y1"))"#, "book(author,year)", "book(title)"] {
            let q = twig(expr);
            assert_eq!(count_presence(&tree, &q), count_occurrence(&tree, &q), "query {expr}");
        }
    }

    #[test]
    fn root_label_not_in_tree() {
        let tree = figure1_tree();
        assert_eq!(count_presence(&tree, &twig("nothing(book)")), 0);
    }
}
