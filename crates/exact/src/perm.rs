//! Permanents of small match-count matrices.
//!
//! The number of sibling-injective mappings of `k` query children onto `m`
//! data children, where pair `(i, j)` contributes `M[i][j]` sub-mappings,
//! is the permanent of the `k × m` matrix (summed over all injective
//! column choices). Query fan-out `k` is small, so a subset DP over query
//! children — `O(m · 2^k · k)` — is exact and fast.

/// Computes the injective-assignment permanent of a `k × m` matrix given
/// as `rows[i][j]`, saturating at `u64::MAX`.
///
/// Rows are query children, columns data children; every row must be
/// assigned a distinct column. Returns 1 for zero rows (the empty
/// mapping) and 0 when `k > m`.
#[allow(clippy::needless_range_loop)] // column-major access over `rows[i][j]`
pub fn permanent(rows: &[Vec<u64>]) -> u64 {
    let k = rows.len();
    if k == 0 {
        return 1;
    }
    let m = rows[0].len();
    if k > m {
        return 0;
    }
    assert!(k <= 20, "query fan-out too large for subset DP");
    let full: u32 = (1u32 << k) - 1;
    // f[mask] = number of ways to assign the rows in `mask` to the data
    // children processed so far.
    let mut f = vec![0u64; 1 << k];
    f[0] = 1;
    for j in 0..m {
        // Iterate masks descending so each column is used at most once.
        for mask in (0..=full).rev() {
            if f[mask as usize] == 0 {
                continue;
            }
            for i in 0..k {
                if mask & (1 << i) == 0 {
                    let contribution = rows[i][j];
                    if contribution == 0 {
                        continue;
                    }
                    let target = (mask | (1 << i)) as usize;
                    let add = f[mask as usize].saturating_mul(contribution);
                    f[target] = f[target].saturating_add(add);
                }
            }
        }
    }
    f[full as usize]
}

/// Ordered variant: rows must map to strictly increasing column indices
/// (document order). Standard sequence-alignment DP, `O(k · m)`.
#[allow(clippy::needless_range_loop)] // column-major access over `rows[i][j]`
pub fn ordered_permanent(rows: &[Vec<u64>]) -> u64 {
    let k = rows.len();
    if k == 0 {
        return 1;
    }
    let m = rows[0].len();
    if k > m {
        return 0;
    }
    // g[i] = ways to map the first i rows into the columns seen so far,
    // in order. Iterate columns, updating i descending.
    let mut g = vec![0u64; k + 1];
    g[0] = 1;
    for j in 0..m {
        for i in (0..k).rev() {
            let contribution = rows[i][j];
            if contribution != 0 && g[i] != 0 {
                let add = g[i].saturating_mul(contribution);
                g[i + 1] = g[i + 1].saturating_add(add);
            }
        }
    }
    g[k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rows_is_one() {
        assert_eq!(permanent(&[]), 1);
        assert_eq!(ordered_permanent(&[]), 1);
    }

    #[test]
    fn more_rows_than_columns_is_zero() {
        let rows = vec![vec![1, 1], vec![1, 1], vec![1, 1]];
        assert_eq!(permanent(&rows), 0);
        assert_eq!(ordered_permanent(&rows), 0);
    }

    #[test]
    fn single_row_sums_entries() {
        assert_eq!(permanent(&[vec![2, 3, 5]]), 10);
        assert_eq!(ordered_permanent(&[vec![2, 3, 5]]), 10);
    }

    #[test]
    fn two_by_two_permanent() {
        // perm [[a,b],[c,d]] = ad + bc = 1*4 + 2*3 = 10
        assert_eq!(permanent(&[vec![1, 2], vec![3, 4]]), 10);
    }

    #[test]
    fn ordered_two_by_two() {
        // Ordered: row0 → col0, row1 → col1 only = 1*4 = 4
        assert_eq!(ordered_permanent(&[vec![1, 2], vec![3, 4]]), 4);
    }

    #[test]
    fn all_ones_counts_injections() {
        // k=3 rows into m=5 columns, all weights 1: P(5,3) = 60 unordered,
        // C(5,3) = 10 ordered.
        let rows = vec![vec![1; 5]; 3];
        assert_eq!(permanent(&rows), 60);
        assert_eq!(ordered_permanent(&rows), 10);
    }

    #[test]
    fn zero_entries_block_assignments() {
        // Row 0 can only take column 0; row 1 only column 0 → impossible.
        let rows = vec![vec![1, 0], vec![1, 0]];
        assert_eq!(permanent(&rows), 0);
    }

    #[test]
    fn brute_force_cross_check() {
        // Compare against explicit enumeration for a 3x4 matrix.
        let rows = vec![vec![1, 2, 0, 1], vec![0, 1, 3, 1], vec![2, 0, 1, 2]];
        let mut expected: u64 = 0;
        for c0 in 0..4 {
            for c1 in 0..4 {
                for c2 in 0..4 {
                    if c0 != c1 && c0 != c2 && c1 != c2 {
                        expected += rows[0][c0] * rows[1][c1] * rows[2][c2];
                    }
                }
            }
        }
        assert_eq!(permanent(&rows), expected);

        let mut expected_ordered: u64 = 0;
        for c0 in 0..4 {
            for c1 in (c0 + 1)..4 {
                for c2 in (c1 + 1)..4 {
                    expected_ordered += rows[0][c0] * rows[1][c1] * rows[2][c2];
                }
            }
        }
        assert_eq!(ordered_permanent(&rows), expected_ordered);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let rows = vec![vec![u64::MAX, u64::MAX], vec![u64::MAX, u64::MAX]];
        assert_eq!(permanent(&rows), u64::MAX);
        assert_eq!(ordered_permanent(&rows), u64::MAX);
    }
}
